//! The gateway's wire protocol: versioned, length-prefixed, CRC-protected
//! frames.
//!
//! Every message travels as one frame:
//!
//! ```text
//! [len: u32 LE] [kind: u8] [body …] [crc8(kind‖body): u8]
//! ```
//!
//! where `len` counts everything after itself and the trailer is the
//! CRC-8 from `stigmergy-coding::checksum` — the same integrity check the
//! robots' wireless backup channel uses, so the serving layer eats its
//! own dogfood: a flipped bit anywhere in a frame is detected and the
//! frame rejected, never silently misparsed. Inside the body, spec
//! payloads reuse the canonical `scheduler::wire` encoding; a
//! [`BatchSpec`] submitted over the wire decodes to a value `==` to the
//! one the client held, which is what makes the gateway's determinism
//! guarantee meaningful end to end.
//!
//! The first frame on a connection must be [`Message::Hello`] carrying
//! [`WIRE_VERSION`]; the server answers [`Message::HelloOk`] or closes.
//! Frames larger than [`MAX_FRAME`] are rejected before allocation.

use stigmergy_coding::checksum;
use stigmergy_fleet::{BatchSpec, ProtocolKind};
use stigmergy_scheduler::wire::{put_bytes, put_u32, put_u64, put_u8, Reader, WireError};
use stigmergy_scheduler::{AlgorithmSpec, CodingSpec, FaultSpec, ScheduleSpec};

use crate::GatewayError;

/// Protocol version carried in the handshake.
///
/// Version 2 added the `algorithms` sequence to the [`BatchSpec`]
/// encoding; version 3 appended the `coding` spec (multi-symbol
/// signalling and FEC knobs). An older peer cannot parse the newer spec
/// frame, so the handshake rejects the mismatch up front.
pub const WIRE_VERSION: u16 = 3;

/// Hard ceiling on one frame's length field (16 MiB): a corrupt or
/// hostile length must fail fast, not allocate.
pub const MAX_FRAME: usize = 1 << 24;

/// One job submission: the sweep to run plus serving knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// The sweep to run.
    pub spec: BatchSpec,
    /// Fleet worker threads for this job.
    pub workers: u64,
    /// Wall-clock deadline in milliseconds from acceptance; `0` = none.
    pub deadline_ms: u64,
}

/// Why a submission was not accepted. Typed, so clients can distinguish
/// back-pressure from misuse without string matching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded queue is at capacity; retry later.
    QueueFull {
        /// The configured bound on accepted-but-unfinished jobs.
        capacity: u64,
    },
    /// The gateway is draining for shutdown; no new work is admitted.
    ShuttingDown,
    /// The request failed validation.
    InvalidSpec {
        /// What was wrong.
        detail: String,
    },
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::QueueFull { capacity } => {
                write!(f, "queue full (capacity {capacity})")
            }
            RejectReason::ShuttingDown => write!(f, "gateway is shutting down"),
            RejectReason::InvalidSpec { detail } => write!(f, "invalid spec: {detail}"),
        }
    }
}

/// Why an accepted job did not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailReason {
    /// A client cancelled it.
    Cancelled,
    /// Its deadline expired before it finished.
    DeadlineExceeded,
    /// The gateway failed internally.
    Internal {
        /// What went wrong.
        detail: String,
    },
}

impl std::fmt::Display for FailReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailReason::Cancelled => write!(f, "cancelled"),
            FailReason::DeadlineExceeded => write!(f, "deadline exceeded"),
            FailReason::Internal { detail } => write!(f, "internal error: {detail}"),
        }
    }
}

/// What a cancellation request found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelState {
    /// The job was still queued and has been removed.
    Dequeued,
    /// The job was running; its cancel token is set and it will stop at
    /// the next session boundary.
    Signalled,
    /// The job already finished (delivered, failed, or was cancelled).
    Finished,
    /// No job with that id was ever accepted.
    Unknown,
}

/// Every frame the protocol speaks, both directions.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Client → server: handshake.
    Hello {
        /// The client's [`WIRE_VERSION`].
        version: u16,
    },
    /// Server → client: handshake accepted.
    HelloOk {
        /// The server's [`WIRE_VERSION`].
        version: u16,
    },
    /// Client → server: submit a job.
    Submit {
        /// The job.
        request: JobRequest,
    },
    /// Server → client: the job was admitted.
    Accepted {
        /// Server-assigned job id (process-unique, monotone).
        job: u64,
        /// Accepted-but-unfinished jobs ahead of this one.
        queued_ahead: u64,
    },
    /// Server → client: the job was not admitted.
    Rejected {
        /// Why.
        reason: RejectReason,
    },
    /// Server → client: streamed after each finished session.
    Progress {
        /// The job.
        job: u64,
        /// Sessions finished so far.
        completed: u64,
        /// Sessions in the job.
        total: u64,
    },
    /// Server → client: the job finished; results attached.
    Done {
        /// The job.
        job: u64,
        /// Per-session FNV-1a 64 trace fingerprints, in spec order —
        /// byte-equal to a direct `run_batch` of the same spec.
        fingerprints: Vec<u64>,
        /// `MetricsSnapshot::to_json` of the merged metrics.
        metrics_json: String,
    },
    /// Server → client: the job was accepted but did not complete.
    Failed {
        /// The job.
        job: u64,
        /// Why.
        reason: FailReason,
    },
    /// Client → server: cancel a job by id (any connection may send it).
    Cancel {
        /// The job.
        job: u64,
    },
    /// Server → client: cancellation outcome.
    CancelOk {
        /// The job.
        job: u64,
        /// What the request found.
        state: CancelState,
    },
    /// Client → server: request the serving-metrics snapshot.
    Stats,
    /// Server → client: the metrics snapshot as JSON.
    StatsOk {
        /// `GatewayMetricsSnapshot::to_json` output.
        json: String,
    },
    /// Client → server: begin graceful shutdown (drain, then exit).
    Shutdown,
    /// Server → client: shutdown initiated.
    ShutdownOk,
}

impl Message {
    fn kind(&self) -> u8 {
        match self {
            Message::Hello { .. } => 0x01,
            Message::HelloOk { .. } => 0x02,
            Message::Submit { .. } => 0x10,
            Message::Accepted { .. } => 0x11,
            Message::Rejected { .. } => 0x12,
            Message::Progress { .. } => 0x13,
            Message::Done { .. } => 0x14,
            Message::Failed { .. } => 0x15,
            Message::Cancel { .. } => 0x20,
            Message::CancelOk { .. } => 0x21,
            Message::Stats => 0x30,
            Message::StatsOk { .. } => 0x31,
            Message::Shutdown => 0x40,
            Message::ShutdownOk => 0x41,
        }
    }

    /// Encodes the message body (kind byte included, CRC excluded).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![self.kind()];
        match self {
            Message::Hello { version } | Message::HelloOk { version } => {
                put_u32(&mut out, u32::from(*version));
            }
            Message::Submit { request } => {
                put_u64(&mut out, request.workers);
                put_u64(&mut out, request.deadline_ms);
                put_batch_spec(&mut out, &request.spec);
            }
            Message::Accepted { job, queued_ahead } => {
                put_u64(&mut out, *job);
                put_u64(&mut out, *queued_ahead);
            }
            Message::Rejected { reason } => match reason {
                RejectReason::QueueFull { capacity } => {
                    put_u8(&mut out, 0);
                    put_u64(&mut out, *capacity);
                }
                RejectReason::ShuttingDown => put_u8(&mut out, 1),
                RejectReason::InvalidSpec { detail } => {
                    put_u8(&mut out, 2);
                    put_bytes(&mut out, detail.as_bytes());
                }
            },
            Message::Progress {
                job,
                completed,
                total,
            } => {
                put_u64(&mut out, *job);
                put_u64(&mut out, *completed);
                put_u64(&mut out, *total);
            }
            Message::Done {
                job,
                fingerprints,
                metrics_json,
            } => {
                put_u64(&mut out, *job);
                put_u32(
                    &mut out,
                    u32::try_from(fingerprints.len()).expect("fingerprints fit u32"),
                );
                for fp in fingerprints {
                    put_u64(&mut out, *fp);
                }
                put_bytes(&mut out, metrics_json.as_bytes());
            }
            Message::Failed { job, reason } => {
                put_u64(&mut out, *job);
                match reason {
                    FailReason::Cancelled => put_u8(&mut out, 0),
                    FailReason::DeadlineExceeded => put_u8(&mut out, 1),
                    FailReason::Internal { detail } => {
                        put_u8(&mut out, 2);
                        put_bytes(&mut out, detail.as_bytes());
                    }
                }
            }
            Message::Cancel { job } => put_u64(&mut out, *job),
            Message::CancelOk { job, state } => {
                put_u64(&mut out, *job);
                put_u8(
                    &mut out,
                    match state {
                        CancelState::Dequeued => 0,
                        CancelState::Signalled => 1,
                        CancelState::Finished => 2,
                        CancelState::Unknown => 3,
                    },
                );
            }
            Message::StatsOk { json } => put_bytes(&mut out, json.as_bytes()),
            Message::Stats | Message::Shutdown | Message::ShutdownOk => {}
        }
        out
    }

    /// Decodes a message body (as produced by [`Message::encode`]).
    ///
    /// # Errors
    ///
    /// [`WireError`] on any structural problem, including trailing bytes.
    pub fn decode(body: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(body);
        let kind = r.u8()?;
        let msg = match kind {
            0x01 => Message::Hello {
                version: decode_version(&mut r)?,
            },
            0x02 => Message::HelloOk {
                version: decode_version(&mut r)?,
            },
            0x10 => {
                let workers = r.u64()?;
                let deadline_ms = r.u64()?;
                let spec = get_batch_spec(&mut r)?;
                Message::Submit {
                    request: JobRequest {
                        spec,
                        workers,
                        deadline_ms,
                    },
                }
            }
            0x11 => Message::Accepted {
                job: r.u64()?,
                queued_ahead: r.u64()?,
            },
            0x12 => Message::Rejected {
                reason: match r.u8()? {
                    0 => RejectReason::QueueFull { capacity: r.u64()? },
                    1 => RejectReason::ShuttingDown,
                    2 => RejectReason::InvalidSpec {
                        detail: decode_string(&mut r, "reject detail")?,
                    },
                    tag => {
                        return Err(WireError::BadTag {
                            what: "reject reason",
                            tag,
                        })
                    }
                },
            },
            0x13 => Message::Progress {
                job: r.u64()?,
                completed: r.u64()?,
                total: r.u64()?,
            },
            0x14 => {
                let job = r.u64()?;
                let n = r.seq_len("fingerprints")?;
                let mut fingerprints = Vec::with_capacity(n);
                for _ in 0..n {
                    fingerprints.push(r.u64()?);
                }
                let metrics_json = decode_string(&mut r, "metrics json")?;
                Message::Done {
                    job,
                    fingerprints,
                    metrics_json,
                }
            }
            0x15 => Message::Failed {
                job: r.u64()?,
                reason: match r.u8()? {
                    0 => FailReason::Cancelled,
                    1 => FailReason::DeadlineExceeded,
                    2 => FailReason::Internal {
                        detail: decode_string(&mut r, "fail detail")?,
                    },
                    tag => {
                        return Err(WireError::BadTag {
                            what: "fail reason",
                            tag,
                        })
                    }
                },
            },
            0x20 => Message::Cancel { job: r.u64()? },
            0x21 => Message::CancelOk {
                job: r.u64()?,
                state: match r.u8()? {
                    0 => CancelState::Dequeued,
                    1 => CancelState::Signalled,
                    2 => CancelState::Finished,
                    3 => CancelState::Unknown,
                    tag => {
                        return Err(WireError::BadTag {
                            what: "cancel state",
                            tag,
                        })
                    }
                },
            },
            0x30 => Message::Stats,
            0x31 => Message::StatsOk {
                json: decode_string(&mut r, "stats json")?,
            },
            0x40 => Message::Shutdown,
            0x41 => Message::ShutdownOk,
            tag => {
                return Err(WireError::BadTag {
                    what: "message kind",
                    tag,
                })
            }
        };
        r.finish()?;
        Ok(msg)
    }
}

fn decode_version(r: &mut Reader<'_>) -> Result<u16, WireError> {
    u16::try_from(r.u32()?).map_err(|_| WireError::BadValue {
        what: "protocol version",
    })
}

fn decode_string(r: &mut Reader<'_>, what: &'static str) -> Result<String, WireError> {
    String::from_utf8(r.bytes(what)?).map_err(|_| WireError::BadValue { what })
}

/// Appends the canonical encoding of a [`BatchSpec`].
pub fn put_batch_spec(out: &mut Vec<u8>, spec: &BatchSpec) {
    let len32 = |n: usize| u32::try_from(n).expect("sequence fits u32");
    put_u32(out, len32(spec.protocols.len()));
    for p in &spec.protocols {
        put_u8(out, p.wire_code());
    }
    put_u32(out, len32(spec.algorithms.len()));
    for a in &spec.algorithms {
        a.encode_wire(out);
    }
    put_u32(out, len32(spec.schedules.len()));
    for s in &spec.schedules {
        s.encode_wire(out);
    }
    put_u32(out, len32(spec.plans.len()));
    for p in &spec.plans {
        p.encode_wire(out);
    }
    put_u32(out, len32(spec.seeds.len()));
    for &seed in &spec.seeds {
        put_u64(out, seed);
    }
    put_u64(out, spec.cohort as u64);
    put_bytes(out, &spec.payload);
    match spec.budget_cap {
        Some(cap) => {
            put_u8(out, 1);
            put_u64(out, cap);
        }
        None => put_u8(out, 0),
    }
    put_u8(out, u8::from(spec.keep_traces));
    spec.coding.encode_wire(out);
}

/// Decodes a [`BatchSpec`] (inverse of [`put_batch_spec`]).
///
/// # Errors
///
/// [`WireError`] on any structural problem.
pub fn get_batch_spec(r: &mut Reader<'_>) -> Result<BatchSpec, WireError> {
    let n = r.seq_len("protocols")?;
    let mut protocols = Vec::with_capacity(n);
    for _ in 0..n {
        let code = r.u8()?;
        protocols.push(ProtocolKind::from_wire_code(code).ok_or(WireError::BadTag {
            what: "protocol kind",
            tag: code,
        })?);
    }
    let n = r.seq_len("algorithms")?;
    let mut algorithms = Vec::with_capacity(n);
    for _ in 0..n {
        algorithms.push(AlgorithmSpec::decode_wire(r)?);
    }
    let n = r.seq_len("schedules")?;
    let mut schedules = Vec::with_capacity(n);
    for _ in 0..n {
        schedules.push(ScheduleSpec::decode_wire(r)?);
    }
    let n = r.seq_len("plans")?;
    let mut plans = Vec::with_capacity(n);
    for _ in 0..n {
        plans.push(FaultSpec::decode_wire(r)?);
    }
    let n = r.seq_len("seeds")?;
    let mut seeds = Vec::with_capacity(n);
    for _ in 0..n {
        seeds.push(r.u64()?);
    }
    let cohort = usize::try_from(r.u64()?).map_err(|_| WireError::BadValue {
        what: "cohort exceeds usize",
    })?;
    let payload = r.bytes("payload")?;
    let budget_cap = match r.u8()? {
        0 => None,
        1 => Some(r.u64()?),
        tag => {
            return Err(WireError::BadTag {
                what: "budget cap flag",
                tag,
            })
        }
    };
    let keep_traces = match r.u8()? {
        0 => false,
        1 => true,
        tag => {
            return Err(WireError::BadTag {
                what: "keep-traces flag",
                tag,
            })
        }
    };
    let coding = CodingSpec::decode_wire(r)?;
    Ok(BatchSpec {
        protocols,
        algorithms,
        schedules,
        plans,
        seeds,
        cohort,
        payload,
        budget_cap,
        keep_traces,
        coding,
    })
}

/// Writes one CRC-protected frame.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_frame(w: &mut impl std::io::Write, msg: &Message) -> std::io::Result<()> {
    let protected = checksum::protect(&msg.encode());
    debug_assert!(protected.len() <= MAX_FRAME, "outgoing frame too large");
    let len = u32::try_from(protected.len()).expect("frame fits u32");
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&protected)?;
    w.flush()
}

/// Reads one frame from a blocking stream, verifying length and CRC.
///
/// # Errors
///
/// [`GatewayError::Io`] on transport errors (including EOF),
/// [`GatewayError::FrameTooLarge`] on an oversized length prefix,
/// [`GatewayError::Corrupt`] on CRC mismatch, and
/// [`GatewayError::Wire`] on a malformed body.
pub fn read_frame(r: &mut impl std::io::Read) -> Result<Message, GatewayError> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(GatewayError::FrameTooLarge(len));
    }
    let mut protected = vec![0u8; len];
    r.read_exact(&mut protected)?;
    decode_protected(&protected)
}

fn decode_protected(protected: &[u8]) -> Result<Message, GatewayError> {
    let body = checksum::verify(protected).map_err(|_| GatewayError::Corrupt)?;
    Ok(Message::decode(&body)?)
}

/// Incremental frame parser for non-blocking reads.
///
/// The server polls sockets with a short read timeout so it can observe
/// shutdown; a timeout can land mid-frame, so raw `read_exact` would
/// desynchronize the stream. The buffer accumulates whatever bytes
/// arrive and yields a frame only once it is complete.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
}

impl FrameBuffer {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends newly received bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame, if one has fully arrived.
    ///
    /// # Errors
    ///
    /// [`GatewayError::FrameTooLarge`], [`GatewayError::Corrupt`], or
    /// [`GatewayError::Wire`] exactly as [`read_frame`]; the stream is
    /// unrecoverable after an error.
    pub fn next_frame(&mut self) -> Result<Option<Message>, GatewayError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let mut len_bytes = [0u8; 4];
        len_bytes.copy_from_slice(&self.buf[..4]);
        let len = u32::from_le_bytes(len_bytes) as usize;
        if len > MAX_FRAME {
            return Err(GatewayError::FrameTooLarge(len));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let protected: Vec<u8> = self.buf.drain(..4 + len).skip(4).collect();
        decode_protected(&protected).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> BatchSpec {
        BatchSpec {
            budget_cap: Some(2_000),
            ..BatchSpec::conformance_matrix(vec![0, 1, 2])
        }
    }

    fn corpus() -> Vec<Message> {
        vec![
            Message::Hello {
                version: WIRE_VERSION,
            },
            Message::HelloOk {
                version: WIRE_VERSION,
            },
            Message::Submit {
                request: JobRequest {
                    spec: sample_spec(),
                    workers: 4,
                    deadline_ms: 30_000,
                },
            },
            Message::Accepted {
                job: 7,
                queued_ahead: 2,
            },
            Message::Rejected {
                reason: RejectReason::QueueFull { capacity: 8 },
            },
            Message::Rejected {
                reason: RejectReason::ShuttingDown,
            },
            Message::Rejected {
                reason: RejectReason::InvalidSpec {
                    detail: "cohort too small".into(),
                },
            },
            Message::Progress {
                job: 7,
                completed: 12,
                total: 162,
            },
            Message::Done {
                job: 7,
                fingerprints: vec![0xDEAD_BEEF, 1, u64::MAX],
                metrics_json: "{\"sessions\":3}".into(),
            },
            Message::Failed {
                job: 7,
                reason: FailReason::DeadlineExceeded,
            },
            Message::Failed {
                job: 9,
                reason: FailReason::Internal {
                    detail: "worker panicked".into(),
                },
            },
            Message::Cancel { job: 7 },
            Message::CancelOk {
                job: 7,
                state: CancelState::Signalled,
            },
            Message::Stats,
            Message::StatsOk {
                json: "{\"accepted\":1}".into(),
            },
            Message::Shutdown,
            Message::ShutdownOk,
        ]
    }

    #[test]
    fn every_message_round_trips() {
        for msg in corpus() {
            let decoded = Message::decode(&msg.encode()).unwrap();
            assert_eq!(decoded, msg);
        }
    }

    #[test]
    fn frames_round_trip_through_a_byte_pipe() {
        let mut pipe = Vec::new();
        for msg in corpus() {
            write_frame(&mut pipe, &msg).unwrap();
        }
        let mut cursor = std::io::Cursor::new(pipe);
        for want in corpus() {
            assert_eq!(read_frame(&mut cursor).unwrap(), want);
        }
    }

    #[test]
    fn frame_buffer_handles_arbitrary_splits() {
        let mut bytes = Vec::new();
        for msg in corpus() {
            write_frame(&mut bytes, &msg).unwrap();
        }
        // Feed the stream one byte at a time — worst-case fragmentation.
        let mut fb = FrameBuffer::new();
        let mut got = Vec::new();
        for b in bytes {
            fb.extend(&[b]);
            while let Some(msg) = fb.next_frame().unwrap() {
                got.push(msg);
            }
        }
        assert_eq!(got, corpus());
    }

    #[test]
    fn corrupted_frames_are_detected_not_misparsed() {
        let mut bytes = Vec::new();
        write_frame(
            &mut bytes,
            &Message::Accepted {
                job: 3,
                queued_ahead: 0,
            },
        )
        .unwrap();
        // Flip one bit in every position after the length prefix: CRC-8
        // detects all single-bit errors.
        for i in 4..bytes.len() {
            let mut corrupted = bytes.clone();
            corrupted[i] ^= 0x04;
            let mut cursor = std::io::Cursor::new(corrupted);
            let err = read_frame(&mut cursor).expect_err("corruption must fail");
            assert!(
                matches!(err, GatewayError::Corrupt | GatewayError::Wire(_)),
                "byte {i}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn oversized_length_prefix_rejected_before_allocation() {
        let huge = (MAX_FRAME as u32 + 1).to_le_bytes();
        let mut cursor = std::io::Cursor::new(huge.to_vec());
        assert!(matches!(
            read_frame(&mut cursor),
            Err(GatewayError::FrameTooLarge(_))
        ));
        let mut fb = FrameBuffer::new();
        fb.extend(&huge);
        assert!(matches!(
            fb.next_frame(),
            Err(GatewayError::FrameTooLarge(_))
        ));
    }

    #[test]
    fn batch_spec_round_trips_exactly() {
        // Cover every coding arm: the conformance default (FEC), the
        // uncoded legacy channel, and bare multi-level signalling.
        let codings = [
            CodingSpec::Fec {
                levels: 8,
                dwell: 10,
            },
            CodingSpec::Binary,
            CodingSpec::MultiLevel {
                levels: 4,
                dwell: 7,
            },
        ];
        for coding in codings {
            let spec = BatchSpec {
                keep_traces: true,
                budget_cap: None,
                coding,
                ..sample_spec()
            };
            let mut buf = Vec::new();
            put_batch_spec(&mut buf, &spec);
            let mut r = Reader::new(&buf);
            let back = get_batch_spec(&mut r).unwrap();
            r.finish().unwrap();
            assert_eq!(back, spec);
        }
    }

    #[test]
    fn unknown_message_kind_rejected() {
        assert!(matches!(
            Message::decode(&[0xFF]),
            Err(WireError::BadTag {
                what: "message kind",
                ..
            })
        ));
    }
}
