//! The `stigmergyd` daemon: a TCP gateway serving fleet sweeps.
//!
//! # Architecture
//!
//! Four kinds of thread, all hand-rolled on `std` (the offline-vendored
//! constraint rules out tokio, and the fleet's own pool pattern —
//! `Mutex` + `Condvar` + scoped threads — extends naturally to serving):
//!
//! * **listener** — non-blocking accept loop; spawns one handler per
//!   client, stops accepting the moment shutdown begins;
//! * **connection handlers** — one per client, polling reads through a
//!   [`FrameBuffer`] so a read timeout can never desynchronize a frame;
//!   responses and streamed events share a per-connection writer mutex,
//!   so frames from the runner and the handler never interleave;
//! * **runner** — pops accepted jobs from the bounded queue in FIFO
//!   order and executes each on the fleet pool via `run_batch_with`,
//!   streaming one `Progress` frame per finished session;
//! * **watchdog** — expires deadlines: queued jobs are failed in place,
//!   the running job gets its cancel token set.
//!
//! # Admission control
//!
//! The queue is bounded by [`GatewayConfig::capacity`], counting
//! accepted-but-unfinished jobs (queued + running). A submission over
//! the bound is rejected immediately with a typed
//! [`RejectReason::QueueFull`] — the gateway never buffers unboundedly
//! and never blocks a client on someone else's backlog. Validation
//! failures and draining are equally explicit ([`RejectReason::InvalidSpec`],
//! [`RejectReason::ShuttingDown`]).
//!
//! # Determinism
//!
//! A job is executed by the same `run_batch_with` a local caller would
//! use, with the decoded spec `==` to the submitted one, so the returned
//! fingerprints and metrics JSON are byte-identical to a direct
//! `run_batch` at any worker count. Cancellation only stops *pending*
//! sessions; everything that ran is untouched.
//!
//! # Graceful shutdown
//!
//! [`Gateway::begin_shutdown`] (or a client `Shutdown` frame, or
//! SIGTERM via [`termination_flag`]) stops the listener, flips
//! admission to reject-with-`ShuttingDown`, and lets the runner drain
//! every already-accepted job — each still streams progress and gets
//! its `Done` frame — before the process exits.

// The daemon is the workspace's wall-clock/threading boundary: deadlines
// and queue-wait metrics need real time, and each connection gets a real
// thread. Everything deterministic happens below run_batch_with.
#![allow(clippy::disallowed_methods)]

use std::collections::VecDeque;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use stigmergy_fleet::{run_batch_with, CancelToken};

use crate::metrics::{GatewayMetrics, GatewayMetricsSnapshot};
use crate::wire::{
    write_frame, CancelState, FailReason, FrameBuffer, JobRequest, Message, RejectReason,
    WIRE_VERSION,
};

/// Serving knobs.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Bound on accepted-but-unfinished jobs (queued + running).
    pub capacity: usize,
    /// Ceiling on the per-job fleet worker count a client may request.
    pub max_workers: u64,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        Self {
            capacity: 8,
            max_workers: 32,
        }
    }
}

/// Ceiling on a job's expanded session count.
pub const MAX_SESSIONS: usize = 250_000;
/// Ceiling on a job's payload length in bytes.
pub const MAX_PAYLOAD: usize = 1_024;
/// Ceiling on a job's swarm cohort.
pub const MAX_COHORT: usize = 64;

/// Validates a job request against the serving limits, so a hostile or
/// buggy spec is rejected at admission instead of panicking the runner.
///
/// # Errors
///
/// A human-readable description of the first violated limit.
pub fn validate_request(req: &JobRequest, config: &GatewayConfig) -> Result<(), String> {
    if req.workers == 0 {
        return Err("workers must be at least 1".into());
    }
    if req.workers > config.max_workers {
        return Err(format!(
            "workers {} exceeds the gateway cap {}",
            req.workers, config.max_workers
        ));
    }
    let spec = &req.spec;
    if spec.protocols.is_empty() && spec.algorithms.is_empty() {
        return Err("spec has no protocols or algorithms".into());
    }
    if spec.schedules.is_empty() {
        return Err("spec has no schedules".into());
    }
    if spec.plans.is_empty() {
        return Err("spec has no fault plans".into());
    }
    if spec.seeds.is_empty() {
        return Err("spec has no seeds".into());
    }
    if !(2..=MAX_COHORT).contains(&spec.cohort) {
        return Err(format!("cohort {} outside 2..={MAX_COHORT}", spec.cohort));
    }
    if spec.payload.is_empty() || spec.payload.len() > MAX_PAYLOAD {
        return Err(format!(
            "payload length {} outside 1..={MAX_PAYLOAD}",
            spec.payload.len()
        ));
    }
    if spec.budget_cap == Some(0) {
        return Err("budget cap must be at least 1".into());
    }
    if spec.keep_traces {
        return Err("keep_traces is not servable; traces are returned as fingerprints".into());
    }
    let sessions = spec
        .protocols
        .len()
        .checked_add(spec.algorithms.len())
        .and_then(|n| n.checked_mul(spec.schedules.len()))
        .and_then(|n| n.checked_mul(spec.plans.len()))
        .and_then(|n| n.checked_mul(spec.seeds.len()))
        .ok_or("session count overflows")?;
    if sessions > MAX_SESSIONS {
        return Err(format!("{sessions} sessions exceed the {MAX_SESSIONS} cap"));
    }
    for algorithm in &spec.algorithms {
        validate_algorithm(algorithm, spec.cohort)?;
    }
    for schedule in &spec.schedules {
        validate_schedule(schedule, spec.cohort)?;
    }
    for plan in &spec.plans {
        validate_plan(plan)?;
    }
    Ok(())
}

fn validate_algorithm(
    spec: &stigmergy_scheduler::AlgorithmSpec,
    cohort: usize,
) -> Result<(), String> {
    use stigmergy_scheduler::AlgorithmSpec as A;
    match spec {
        A::Flood { initiator } => {
            if *initiator >= cohort {
                return Err(format!(
                    "flood initiator {initiator} outside cohort {cohort}"
                ));
            }
        }
        A::Election => {}
        A::Agreement { inputs } => {
            if cohort < 64 && inputs >> cohort != 0 {
                return Err(format!(
                    "agreement inputs {inputs:#x} has bits beyond cohort {cohort}"
                ));
            }
        }
    }
    Ok(())
}

fn validate_schedule(
    spec: &stigmergy_scheduler::ScheduleSpec,
    cohort: usize,
) -> Result<(), String> {
    use stigmergy_scheduler::ScheduleSpec as S;
    match spec {
        S::Synchronous | S::RoundRobin | S::LaggingReceiver { .. } => {}
        S::FairAsync { p, max_gap, .. } => {
            if !(*p > 0.0 && *p <= 1.0) {
                return Err(format!("fair-async p {p} outside (0, 1]"));
            }
            if *max_gap == 0 {
                return Err("fair-async max_gap must be positive".into());
            }
        }
        S::SingleActive { max_gap, .. } => {
            if *max_gap == 0 {
                return Err("single-active max_gap must be positive".into());
            }
        }
        S::Lagging { victim, .. } => {
            if *victim >= cohort {
                return Err(format!("lagging victim {victim} outside cohort {cohort}"));
            }
        }
        S::Bursty { burst_len, .. } => {
            if *burst_len == 0 {
                return Err("bursty burst_len must be positive".into());
            }
        }
        S::WorstCaseFair { max_gap } => {
            if *max_gap == 0 {
                return Err("worst-case-fair max_gap must be positive".into());
            }
        }
        S::CrashFiltered { inner } => validate_schedule(inner, cohort)?,
        S::Scripted { script } => {
            if script.is_empty() {
                return Err("scripted schedule has no steps".into());
            }
            for (t, step) in script.iter().enumerate() {
                if step.is_empty() {
                    return Err(format!("scripted step {t} activates no robot"));
                }
                if let Some(&robot) = step.iter().find(|&&r| r >= cohort) {
                    return Err(format!(
                        "scripted step {t} activates robot {robot} outside cohort {cohort}"
                    ));
                }
            }
        }
    }
    Ok(())
}

fn validate_plan(spec: &stigmergy_scheduler::FaultSpec) -> Result<(), String> {
    use stigmergy_scheduler::FaultSpec as F;
    let unit = |what: &str, x: f64| -> Result<(), String> {
        if (0.0..=1.0).contains(&x) {
            Ok(())
        } else {
            Err(format!("{what} {x} outside [0, 1]"))
        }
    };
    match spec {
        F::Benign => Ok(()),
        F::NonRigid { delta, prob } => {
            unit("non-rigid delta", *delta)?;
            unit("non-rigid prob", *prob)
        }
        F::Dropout { prob } => unit("dropout prob", *prob),
        F::Crash { delta, prob, .. } => {
            unit("crash delta", *delta)?;
            unit("crash prob", *prob)
        }
    }
}

/// One accepted job, parked in the bounded queue.
struct Job {
    id: u64,
    request: JobRequest,
    accepted_at: Instant,
    deadline: Option<Instant>,
    cancel: Arc<CancelToken>,
    fail_reason: Arc<Mutex<Option<FailReason>>>,
    conn: Arc<ConnWriter>,
}

/// The running job's control surface, visible to cancel/watchdog while
/// the runner owns the `Job` itself.
struct RunningJob {
    id: u64,
    deadline: Option<Instant>,
    cancel: Arc<CancelToken>,
    fail_reason: Arc<Mutex<Option<FailReason>>>,
}

struct State {
    queue: VecDeque<Job>,
    running: Option<RunningJob>,
    next_id: u64,
    shutting_down: bool,
    paused: bool,
}

/// Per-connection writer: every frame (response or streamed event) is
/// written whole under the mutex.
struct ConnWriter {
    stream: Mutex<TcpStream>,
    outstanding: AtomicUsize,
}

impl ConnWriter {
    /// Best-effort send; a client that hung up just stops receiving.
    fn send(&self, msg: &Message) {
        let mut stream = self.stream.lock().expect("writer poisoned");
        // stiglint: allow(lock-discipline) -- by design: the mutex exists to serialize whole-frame writes on this stream; only this connection's threads contend, and the frame is already encoded
        let _ = write_frame(&mut *stream, msg);
    }

    fn job_finished(&self, msg: &Message) {
        self.send(msg);
        self.outstanding.fetch_sub(1, Ordering::AcqRel);
    }
}

struct Shared {
    config: GatewayConfig,
    metrics: GatewayMetrics,
    state: Mutex<State>,
    work: Condvar,
    shutdown: AtomicBool,
    drained: AtomicBool,
    conns: Mutex<Vec<JoinHandle<()>>>,
}

fn duration_ms(d: Duration) -> u64 {
    u64::try_from(d.as_millis()).unwrap_or(u64::MAX)
}

impl Shared {
    /// Admission control: validate, then accept under the capacity bound
    /// or reject with a typed reason.
    fn submit(&self, request: JobRequest, conn: &Arc<ConnWriter>) -> Message {
        if let Err(detail) = validate_request(&request, &self.config) {
            self.metrics.record_rejected_invalid();
            return Message::Rejected {
                reason: RejectReason::InvalidSpec { detail },
            };
        }
        let mut st = self.state.lock().expect("state poisoned");
        if st.shutting_down {
            self.metrics.record_rejected_shutdown();
            return Message::Rejected {
                reason: RejectReason::ShuttingDown,
            };
        }
        let in_flight = st.queue.len() + usize::from(st.running.is_some());
        if in_flight >= self.config.capacity {
            self.metrics.record_rejected_full();
            return Message::Rejected {
                reason: RejectReason::QueueFull {
                    capacity: self.config.capacity as u64,
                },
            };
        }
        let id = st.next_id;
        st.next_id += 1;
        let deadline = (request.deadline_ms > 0)
            .then(|| Instant::now() + Duration::from_millis(request.deadline_ms));
        conn.outstanding.fetch_add(1, Ordering::AcqRel);
        st.queue.push_back(Job {
            id,
            request,
            accepted_at: Instant::now(),
            deadline,
            cancel: Arc::new(CancelToken::new()),
            fail_reason: conn_reason_none(),
            conn: Arc::clone(conn),
        });
        drop(st);
        self.metrics.record_accepted();
        self.work.notify_all();
        Message::Accepted {
            job: id,
            queued_ahead: in_flight as u64,
        }
    }

    /// Cancels a job wherever it currently is.
    fn cancel(&self, id: u64) -> CancelState {
        let mut st = self.state.lock().expect("state poisoned");
        if let Some(pos) = st.queue.iter().position(|j| j.id == id) {
            let job = st.queue.remove(pos).expect("position just found");
            drop(st);
            self.metrics.record_cancelled();
            job.conn.job_finished(&Message::Failed {
                job: id,
                reason: FailReason::Cancelled,
            });
            return CancelState::Dequeued;
        }
        if let Some(running) = st.running.as_ref().filter(|r| r.id == id) {
            let mut reason = running.fail_reason.lock().expect("reason poisoned");
            reason.get_or_insert(FailReason::Cancelled);
            running.cancel.cancel();
            return CancelState::Signalled;
        }
        if id < st.next_id {
            CancelState::Finished
        } else {
            CancelState::Unknown
        }
    }

    /// Flips the gateway into draining mode. Idempotent.
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        let mut st = self.state.lock().expect("state poisoned");
        st.shutting_down = true;
        // Drain overrides pause: shutdown must terminate.
        st.paused = false;
        drop(st);
        self.work.notify_all();
    }

    /// The runner: FIFO over accepted jobs, drain-then-exit on shutdown.
    fn runner(self: &Arc<Self>) {
        loop {
            let job = {
                let mut st = self.state.lock().expect("state poisoned");
                loop {
                    if !st.paused {
                        if let Some(job) = st.queue.pop_front() {
                            st.running = Some(RunningJob {
                                id: job.id,
                                deadline: job.deadline,
                                cancel: Arc::clone(&job.cancel),
                                fail_reason: Arc::clone(&job.fail_reason),
                            });
                            break job;
                        }
                        if st.shutting_down {
                            drop(st);
                            self.drained.store(true, Ordering::Release);
                            return;
                        }
                    }
                    st = self.work.wait(st).expect("state poisoned");
                }
            };
            let (conn, outcome) = self.run_job(job);
            // Clear `running` before the final frame goes out: once a
            // client has seen Done/Failed, a cancel must find Finished,
            // never a stale running entry.
            self.state.lock().expect("state poisoned").running = None;
            conn.job_finished(&outcome);
        }
    }

    /// Executes one job, streaming progress; returns the final frame
    /// (Done or Failed) for the runner to deliver after it clears the
    /// running slot.
    fn run_job(&self, job: Job) -> (Arc<ConnWriter>, Message) {
        self.metrics
            .record_started(duration_ms(job.accepted_at.elapsed()));
        let expired_in_queue = job.deadline.is_some_and(|d| Instant::now() >= d);
        if !expired_in_queue {
            let workers = usize::try_from(job.request.workers).unwrap_or(usize::MAX);
            // The spec passed validation, but the engine's invariants are
            // deeper than admission checks: a panic inside one job must
            // become a Failed frame, never take down the daemon.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_batch_with(
                    &job.request.spec,
                    workers,
                    |p| {
                        job.conn.send(&Message::Progress {
                            job: job.id,
                            completed: p.completed as u64,
                            total: p.total as u64,
                        });
                    },
                    &job.cancel,
                )
            }));
            match outcome {
                Ok(Ok(report)) => {
                    self.metrics
                        .record_completed(duration_ms(job.accepted_at.elapsed()));
                    return (
                        Arc::clone(&job.conn),
                        Message::Done {
                            job: job.id,
                            fingerprints: report.runs.iter().map(|r| r.trace_hash).collect(),
                            metrics_json: report.metrics.to_json(),
                        },
                    );
                }
                Ok(Err(_interrupted)) => {} // fall through to the recorded reason
                Err(panic) => {
                    let detail = panic
                        .downcast_ref::<&str>()
                        .map(ToString::to_string)
                        .or_else(|| panic.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "job panicked".into());
                    let mut reason = job.fail_reason.lock().expect("reason poisoned");
                    reason.get_or_insert(FailReason::Internal { detail });
                }
            }
        }
        let reason = job
            .fail_reason
            .lock()
            .expect("reason poisoned")
            .clone()
            .unwrap_or(if expired_in_queue {
                FailReason::DeadlineExceeded
            } else {
                FailReason::Cancelled
            });
        match reason {
            FailReason::Cancelled | FailReason::Internal { .. } => self.metrics.record_cancelled(),
            FailReason::DeadlineExceeded => self.metrics.record_deadline_expired(),
        }
        (
            Arc::clone(&job.conn),
            Message::Failed {
                job: job.id,
                reason,
            },
        )
    }

    /// The watchdog: expires deadlines every few milliseconds.
    fn watchdog(&self) {
        while !self.drained.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(5));
            let now = Instant::now();
            let mut expired = Vec::new();
            {
                let mut st = self.state.lock().expect("state poisoned");
                if let Some(running) = st.running.as_ref() {
                    if running.deadline.is_some_and(|d| now >= d) {
                        let mut reason = running.fail_reason.lock().expect("reason poisoned");
                        reason.get_or_insert(FailReason::DeadlineExceeded);
                        drop(reason);
                        running.cancel.cancel();
                    }
                }
                let mut i = 0;
                while i < st.queue.len() {
                    if st.queue[i].deadline.is_some_and(|d| now >= d) {
                        expired.push(st.queue.remove(i).expect("index in range"));
                    } else {
                        i += 1;
                    }
                }
            }
            for job in expired {
                self.metrics.record_deadline_expired();
                job.conn.job_finished(&Message::Failed {
                    job: job.id,
                    reason: FailReason::DeadlineExceeded,
                });
            }
        }
    }

    /// The accept loop: non-blocking so it can observe shutdown.
    fn listener(self: &Arc<Self>, listener: &TcpListener) {
        listener
            .set_nonblocking(true)
            .expect("listener supports non-blocking");
        while !self.shutdown.load(Ordering::Acquire) {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let shared = Arc::clone(self);
                    let handle = std::thread::spawn(move || shared.connection(stream));
                    self.conns.lock().expect("conns poisoned").push(handle);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => return,
            }
        }
    }

    /// One client connection: poll reads, dispatch frames.
    fn connection(self: Arc<Self>, stream: TcpStream) {
        // The accepted socket inherits non-blocking from the listener on
        // some platforms; force known state: blocking with a short read
        // timeout, so the handler can observe shutdown between reads.
        if stream.set_nonblocking(false).is_err()
            || stream
                .set_read_timeout(Some(Duration::from_millis(25)))
                .is_err()
        {
            return;
        }
        let Ok(write_half) = stream.try_clone() else {
            return;
        };
        let writer = Arc::new(ConnWriter {
            stream: Mutex::new(write_half),
            outstanding: AtomicUsize::new(0),
        });
        let mut reader = stream;
        let mut frames = FrameBuffer::new();
        let mut buf = [0u8; 4096];
        let mut greeted = false;
        loop {
            // After the drain completes there is nothing left to serve.
            if self.drained.load(Ordering::Acquire)
                && writer.outstanding.load(Ordering::Acquire) == 0
            {
                return;
            }
            match reader.read(&mut buf) {
                Ok(0) => return, // EOF; any running job finishes unobserved
                Ok(n) => {
                    frames.extend(&buf[..n]);
                    loop {
                        match frames.next_frame() {
                            Ok(Some(msg)) => {
                                if !self.handle(&writer, &mut greeted, msg) {
                                    return;
                                }
                            }
                            Ok(None) => break,
                            // Corrupt or malformed stream: unrecoverable.
                            Err(_) => return,
                        }
                    }
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) => {}
                Err(_) => return,
            }
        }
    }

    /// Dispatches one client frame; `false` closes the connection.
    fn handle(&self, writer: &Arc<ConnWriter>, greeted: &mut bool, msg: Message) -> bool {
        match msg {
            Message::Hello { version } => {
                writer.send(&Message::HelloOk {
                    version: WIRE_VERSION,
                });
                *greeted = version == WIRE_VERSION;
                *greeted
            }
            _ if !*greeted => false, // protocol violation: speak Hello first
            Message::Submit { request } => {
                let response = self.submit(request, writer);
                writer.send(&response);
                true
            }
            Message::Cancel { job } => {
                let state = self.cancel(job);
                writer.send(&Message::CancelOk { job, state });
                true
            }
            Message::Stats => {
                writer.send(&Message::StatsOk {
                    json: self.metrics.snapshot().to_json(),
                });
                true
            }
            Message::Shutdown => {
                writer.send(&Message::ShutdownOk);
                self.begin_shutdown();
                true
            }
            // Server-to-client frames arriving at the server are a
            // protocol violation.
            _ => false,
        }
    }
}

/// A `None` fail reason, freshly allocated per job.
fn conn_reason_none() -> Arc<Mutex<Option<FailReason>>> {
    Arc::new(Mutex::new(None))
}

/// A running gateway daemon. Dropping without
/// [`Gateway::shutdown_and_join`] leaves threads detached; prefer the
/// explicit drain.
#[derive(Debug)]
pub struct Gateway {
    addr: SocketAddr,
    shared: Arc<Shared>,
    listener: Option<JoinHandle<()>>,
    runner: Option<JoinHandle<()>>,
    watchdog: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl Gateway {
    /// Binds and starts serving.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding.
    pub fn bind(addr: impl ToSocketAddrs, config: GatewayConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            config,
            metrics: GatewayMetrics::new(),
            state: Mutex::new(State {
                queue: VecDeque::new(),
                running: None,
                next_id: 0,
                shutting_down: false,
                paused: false,
            }),
            work: Condvar::new(),
            shutdown: AtomicBool::new(false),
            drained: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || shared.listener(&listener))
        };
        let runner = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || shared.runner())
        };
        let watchdog = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || shared.watchdog())
        };
        Ok(Self {
            addr,
            shared,
            listener: Some(accept),
            runner: Some(runner),
            watchdog: Some(watchdog),
        })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of the serving metrics.
    #[must_use]
    pub fn metrics(&self) -> GatewayMetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Stops admission and accepting, lets accepted jobs drain.
    pub fn begin_shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Whether the drain has completed (every accepted job finished).
    #[must_use]
    pub fn finished(&self) -> bool {
        self.shared.drained.load(Ordering::Acquire)
    }

    /// Holds the runner before its next job — admission stays open, so
    /// tests and benchmarks can fill the queue deterministically.
    pub fn pause(&self) {
        self.shared.state.lock().expect("state poisoned").paused = true;
    }

    /// Releases [`Gateway::pause`].
    pub fn resume(&self) {
        self.shared.state.lock().expect("state poisoned").paused = false;
        self.shared.work.notify_all();
    }

    /// Initiates shutdown (idempotent), drains every accepted job, and
    /// joins all serving threads.
    ///
    /// # Panics
    ///
    /// Propagates a panic from a serving thread.
    pub fn shutdown_and_join(mut self) {
        self.shared.begin_shutdown();
        for handle in [
            self.listener.take(),
            self.runner.take(),
            self.watchdog.take(),
        ]
        .into_iter()
        .flatten()
        {
            handle.join().expect("serving thread panicked");
        }
        let conns = std::mem::take(&mut *self.shared.conns.lock().expect("conns poisoned"));
        for handle in conns {
            handle.join().expect("connection thread panicked");
        }
    }
}

/// A process-wide flag set by SIGTERM/SIGINT, for daemon main loops:
/// poll it and call [`Gateway::shutdown_and_join`] when it flips. The
/// first call installs the handlers.
#[cfg(unix)]
#[must_use]
pub fn termination_flag() -> &'static AtomicBool {
    static FLAG: AtomicBool = AtomicBool::new(false);
    static INSTALL: std::sync::Once = std::sync::Once::new();
    extern "C" fn on_signal(_sig: i32) {
        // A store to a static atomic is async-signal-safe.
        FLAG.store(true, Ordering::SeqCst);
    }
    INSTALL.call_once(|| {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        // SAFETY: `signal` is the C library's handler registration; the
        // handler only stores to an atomic, which is async-signal-safe.
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    });
    &FLAG
}

/// Non-unix stub: a flag nothing ever sets.
#[cfg(not(unix))]
#[must_use]
pub fn termination_flag() -> &'static AtomicBool {
    static FLAG: AtomicBool = AtomicBool::new(false);
    &FLAG
}

#[cfg(test)]
mod tests {
    use super::*;
    use stigmergy_fleet::BatchSpec;

    fn small_request() -> JobRequest {
        JobRequest {
            spec: BatchSpec {
                budget_cap: Some(300),
                ..BatchSpec::conformance_matrix(vec![0])
            },
            workers: 2,
            deadline_ms: 0,
        }
    }

    #[test]
    fn validation_accepts_the_conformance_request() {
        assert_eq!(
            validate_request(&small_request(), &GatewayConfig::default()),
            Ok(())
        );
    }

    #[test]
    fn validation_rejects_degenerate_requests() {
        let config = GatewayConfig::default();
        let cases: Vec<(JobRequest, &str)> = vec![
            (
                JobRequest {
                    workers: 0,
                    ..small_request()
                },
                "workers",
            ),
            (
                JobRequest {
                    workers: config.max_workers + 1,
                    ..small_request()
                },
                "cap",
            ),
            (
                JobRequest {
                    spec: BatchSpec {
                        seeds: vec![],
                        ..small_request().spec
                    },
                    ..small_request()
                },
                "seeds",
            ),
            (
                JobRequest {
                    spec: BatchSpec {
                        cohort: 1,
                        ..small_request().spec
                    },
                    ..small_request()
                },
                "cohort",
            ),
            (
                JobRequest {
                    spec: BatchSpec {
                        payload: vec![],
                        ..small_request().spec
                    },
                    ..small_request()
                },
                "payload",
            ),
            (
                JobRequest {
                    spec: BatchSpec {
                        budget_cap: Some(0),
                        ..small_request().spec
                    },
                    ..small_request()
                },
                "budget",
            ),
            (
                JobRequest {
                    spec: BatchSpec {
                        keep_traces: true,
                        ..small_request().spec
                    },
                    ..small_request()
                },
                "keep_traces",
            ),
            (
                JobRequest {
                    spec: BatchSpec {
                        seeds: (0..100_000).collect(),
                        ..small_request().spec
                    },
                    ..small_request()
                },
                "cap",
            ),
        ];
        for (request, needle) in cases {
            let err = validate_request(&request, &config).expect_err(needle);
            assert!(err.contains(needle), "{err:?} should mention {needle:?}");
        }
    }

    #[test]
    fn validation_rejects_malformed_schedules_and_plans() {
        use stigmergy_scheduler::{FaultSpec, ScheduleSpec};
        let mut bad_script = small_request();
        bad_script.spec.schedules = vec![ScheduleSpec::Scripted {
            script: vec![vec![0], vec![]],
        }];
        assert!(validate_request(&bad_script, &GatewayConfig::default())
            .expect_err("empty step")
            .contains("activates no robot"));

        let mut out_of_range = small_request();
        out_of_range.spec.schedules = vec![ScheduleSpec::Scripted {
            script: vec![vec![99]],
        }];
        assert!(validate_request(&out_of_range, &GatewayConfig::default())
            .expect_err("robot outside cohort")
            .contains("outside cohort"));

        let mut bad_p = small_request();
        bad_p.spec.schedules = vec![ScheduleSpec::FairAsync {
            seed: 1,
            p: 1.5,
            max_gap: 4,
        }];
        assert!(validate_request(&bad_p, &GatewayConfig::default())
            .expect_err("p out of range")
            .contains("outside (0, 1]"));

        let mut bad_prob = small_request();
        bad_prob.spec.plans = vec![FaultSpec::Dropout { prob: 2.0 }];
        assert!(validate_request(&bad_prob, &GatewayConfig::default())
            .expect_err("prob out of range")
            .contains("outside [0, 1]"));
    }

    #[test]
    fn termination_flag_is_installable_and_unset() {
        assert!(!termination_flag().load(Ordering::SeqCst));
    }
}
