//! A blocking client for the gateway.
//!
//! One [`Client`] owns one connection. The server may interleave
//! streamed frames (progress for an earlier job) with responses to
//! later requests on the same connection, so every receive path drains
//! through a pending buffer: frames that answer someone else's question
//! are parked, not dropped, and [`Client::wait`] finds them later. This
//! keeps the client a strictly blocking, thread-free loop while still
//! supporting several in-flight jobs per connection.

use std::collections::VecDeque;
use std::net::{TcpStream, ToSocketAddrs};

use crate::wire::{read_frame, write_frame, CancelState, JobRequest, Message, WIRE_VERSION};
use crate::GatewayError;

/// Admission receipt for a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ticket {
    /// Server-assigned job id.
    pub job: u64,
    /// Accepted-but-unfinished jobs ahead at admission time.
    pub queued_ahead: u64,
}

/// A finished job's results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobResult {
    /// The job id.
    pub job: u64,
    /// Per-session trace fingerprints, in spec order — byte-equal to a
    /// direct `run_batch` of the same spec.
    pub fingerprints: Vec<u64>,
    /// Stable-order merged metrics JSON (`MetricsSnapshot::to_json`).
    pub metrics_json: String,
}

/// A blocking gateway connection.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    pending: VecDeque<Message>,
}

impl Client {
    /// Connects and performs the version handshake.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`GatewayError::Protocol`] on a version
    /// mismatch.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, GatewayError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        write_frame(
            &mut stream,
            &Message::Hello {
                version: WIRE_VERSION,
            },
        )?;
        match read_frame(&mut stream)? {
            Message::HelloOk { version } if version == WIRE_VERSION => Ok(Self {
                stream,
                pending: VecDeque::new(),
            }),
            Message::HelloOk { version } => Err(GatewayError::Protocol(format!(
                "server speaks wire version {version}, client speaks {WIRE_VERSION}"
            ))),
            other => Err(unexpected(&other)),
        }
    }

    /// Receives the next frame, preferring parked ones that `accept`
    /// claims; frames nobody has claimed yet stay parked in order.
    fn recv(&mut self, accept: impl Fn(&Message) -> bool) -> Result<Message, GatewayError> {
        if let Some(pos) = self.pending.iter().position(&accept) {
            if let Some(msg) = self.pending.remove(pos) {
                return Ok(msg);
            }
        }
        loop {
            let msg = read_frame(&mut self.stream)?;
            if accept(&msg) {
                return Ok(msg);
            }
            self.pending.push_back(msg);
        }
    }

    /// Submits a job.
    ///
    /// # Errors
    ///
    /// [`GatewayError::Rejected`] with the server's typed reason if the
    /// job was not admitted, otherwise transport or protocol errors.
    pub fn submit(&mut self, request: &JobRequest) -> Result<Ticket, GatewayError> {
        write_frame(
            &mut self.stream,
            &Message::Submit {
                request: request.clone(),
            },
        )?;
        match self.recv(|m| matches!(m, Message::Accepted { .. } | Message::Rejected { .. }))? {
            Message::Accepted { job, queued_ahead } => Ok(Ticket { job, queued_ahead }),
            Message::Rejected { reason } => Err(GatewayError::Rejected(reason)),
            other => Err(unexpected(&other)),
        }
    }

    /// Blocks until `job` finishes, reporting each progress frame as
    /// `(completed, total)` to `on_progress`.
    ///
    /// # Errors
    ///
    /// [`GatewayError::JobFailed`] if the server reports the job
    /// cancelled, expired, or internally failed; otherwise transport or
    /// protocol errors.
    pub fn wait(
        &mut self,
        job: u64,
        mut on_progress: impl FnMut(u64, u64),
    ) -> Result<JobResult, GatewayError> {
        loop {
            let claimed = self.recv(|m| {
                matches!(
                    m,
                    Message::Progress { job: j, .. }
                    | Message::Done { job: j, .. }
                    | Message::Failed { job: j, .. } if *j == job
                )
            })?;
            match claimed {
                Message::Progress {
                    completed, total, ..
                } => on_progress(completed, total),
                Message::Done {
                    job,
                    fingerprints,
                    metrics_json,
                } => {
                    return Ok(JobResult {
                        job,
                        fingerprints,
                        metrics_json,
                    })
                }
                Message::Failed { reason, .. } => return Err(GatewayError::JobFailed(reason)),
                other => return Err(unexpected(&other)),
            }
        }
    }

    /// [`Client::submit`] then [`Client::wait`].
    ///
    /// # Errors
    ///
    /// As the two steps.
    pub fn submit_and_wait(
        &mut self,
        request: &JobRequest,
        on_progress: impl FnMut(u64, u64),
    ) -> Result<JobResult, GatewayError> {
        let ticket = self.submit(request)?;
        self.wait(ticket.job, on_progress)
    }

    /// Cancels a job by id. Any connection may cancel any job.
    ///
    /// # Errors
    ///
    /// Transport or protocol errors; the outcome itself is the typed
    /// [`CancelState`].
    pub fn cancel(&mut self, job: u64) -> Result<CancelState, GatewayError> {
        write_frame(&mut self.stream, &Message::Cancel { job })?;
        match self.recv(|m| matches!(m, Message::CancelOk { job: j, .. } if *j == job))? {
            Message::CancelOk { state, .. } => Ok(state),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the gateway's serving-metrics snapshot as JSON.
    ///
    /// # Errors
    ///
    /// Transport or protocol errors.
    pub fn stats(&mut self) -> Result<String, GatewayError> {
        write_frame(&mut self.stream, &Message::Stats)?;
        match self.recv(|m| matches!(m, Message::StatsOk { .. }))? {
            Message::StatsOk { json } => Ok(json),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the gateway to begin its graceful drain-and-exit.
    ///
    /// # Errors
    ///
    /// Transport or protocol errors.
    pub fn shutdown(&mut self) -> Result<(), GatewayError> {
        write_frame(&mut self.stream, &Message::Shutdown)?;
        match self.recv(|m| matches!(m, Message::ShutdownOk))? {
            Message::ShutdownOk => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(msg: &Message) -> GatewayError {
    GatewayError::Protocol(format!("unexpected frame {msg:?}"))
}
