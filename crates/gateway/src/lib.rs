//! `stigmergy-gateway` — fleet sweeps as a network service.
//!
//! The fleet runtime (PR 2) runs deterministic batch sweeps in-process;
//! this crate puts them behind a TCP daemon, `stigmergyd`, so sweeps can
//! be submitted, observed, and cancelled from other processes. It is
//! built entirely on `std::net` and the workspace's own hand-rolled
//! pool pattern — no async runtime, no external dependencies — and its
//! wire protocol is protected by the same CRC-8 the robots' wireless
//! backup channel uses (`stigmergy-coding::checksum`).
//!
//! The crate ships both halves:
//!
//! * [`Gateway`] ([`server`]) — the daemon: bounded job queue with
//!   typed admission control, per-job deadlines, client-initiated
//!   cancellation, streamed progress, serving metrics, and a graceful
//!   shutdown that drains every accepted job;
//! * [`Client`] ([`client`]) — a blocking client library used by the
//!   `experiments` CLI, the loopback tests, and the CI smoke job.
//!
//! The contract that matters: a job submitted through the gateway
//! returns the *same bytes* a direct `run_batch` of the same spec
//! returns — identical per-seed trace fingerprints, identical
//! stable-order metrics JSON — at any worker count. Serving adds
//! transport and scheduling, never nondeterminism.

pub mod client;
pub mod metrics;
pub mod server;
pub mod wire;

pub use client::{Client, JobResult, Ticket};
pub use metrics::{GatewayMetrics, GatewayMetricsSnapshot, LATENCY_MS_BOUNDS};
pub use server::{termination_flag, validate_request, Gateway, GatewayConfig};
pub use wire::{
    CancelState, FailReason, FrameBuffer, JobRequest, Message, RejectReason, MAX_FRAME,
    WIRE_VERSION,
};

use stigmergy_scheduler::wire::WireError;

/// Everything that can go wrong speaking to (or serving) the gateway.
#[derive(Debug)]
pub enum GatewayError {
    /// A transport error (including EOF mid-frame).
    Io(std::io::Error),
    /// A structurally malformed frame body.
    Wire(WireError),
    /// A frame whose CRC-8 trailer did not verify.
    Corrupt,
    /// A well-formed frame that violates the protocol state machine.
    Protocol(String),
    /// The server refused to admit a submission.
    Rejected(RejectReason),
    /// The server accepted the job but it did not complete.
    JobFailed(FailReason),
    /// A length prefix exceeding [`MAX_FRAME`].
    FrameTooLarge(usize),
}

impl std::fmt::Display for GatewayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GatewayError::Io(e) => write!(f, "gateway I/O error: {e}"),
            GatewayError::Wire(e) => write!(f, "malformed frame: {e}"),
            GatewayError::Corrupt => write!(f, "frame failed CRC verification"),
            GatewayError::Protocol(detail) => write!(f, "protocol violation: {detail}"),
            GatewayError::Rejected(reason) => write!(f, "submission rejected: {reason}"),
            GatewayError::JobFailed(reason) => write!(f, "job failed: {reason}"),
            GatewayError::FrameTooLarge(len) => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME}-byte cap")
            }
        }
    }
}

impl std::error::Error for GatewayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GatewayError::Io(e) => Some(e),
            GatewayError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GatewayError {
    fn from(e: std::io::Error) -> Self {
        GatewayError::Io(e)
    }
}

impl From<WireError> for GatewayError {
    fn from(e: WireError) -> Self {
        GatewayError::Wire(e)
    }
}
