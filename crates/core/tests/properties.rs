//! Property-based tests for the protocol crate: payload roundtrips
//! through each codec/protocol family and invariants of the
//! acknowledgement bookkeeping.

use proptest::prelude::*;
use stigmergy::ack::ChangeTracker;
use stigmergy::kslice::KSliceSync;
use stigmergy::sync2::Sync2;
use stigmergy::sync2_coded::Sync2Coded;
use stigmergy_coding::alphabet::LevelAlphabet;
use stigmergy_geometry::Point;
use stigmergy_robots::{Capabilities, Engine};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn sync2_roundtrips_any_payload(
        payload in prop::collection::vec(any::<u8>(), 0..24),
        seed in any::<u64>(),
        separation in 4.0f64..200.0,
    ) {
        let mut e = Engine::builder()
            .positions([Point::new(0.0, 0.0), Point::new(separation, 0.0)])
            .protocols([Sync2::new(), Sync2::new()])
            .frame_seed(seed)
            .build()
            .unwrap();
        e.protocol_mut(0).send(&payload);
        let out = e
            .run_until(2_000, |e| !e.protocol(1).inbox().is_empty())
            .unwrap();
        prop_assert!(out.satisfied);
        prop_assert_eq!(&e.protocol(1).inbox()[0], &payload);
    }

    #[test]
    fn sync2_coded_roundtrips_any_payload_any_alphabet(
        payload in prop::collection::vec(any::<u8>(), 1..24),
        levels in 1usize..64,
        seed in any::<u64>(),
    ) {
        let alphabet = LevelAlphabet::new(levels).unwrap();
        let mut e = Engine::builder()
            .positions([Point::new(0.0, 0.0), Point::new(10.0, 0.0)])
            .protocols([Sync2Coded::new(alphabet), Sync2Coded::new(alphabet)])
            .frame_seed(seed)
            .build()
            .unwrap();
        e.protocol_mut(0).send(&payload);
        let out = e
            .run_until(2_000, |e| !e.protocol(1).inbox().is_empty())
            .unwrap();
        prop_assert!(out.satisfied, "levels={levels}");
        prop_assert_eq!(&e.protocol(1).inbox()[0], &payload);
    }

    #[test]
    fn kslice_roundtrips_across_radices(
        payload in prop::collection::vec(any::<u8>(), 1..8),
        k in 2usize..12,
        target_sel in any::<usize>(),
        seed in any::<u64>(),
    ) {
        let n = 7usize;
        let target = 1 + target_sel % (n - 1);
        let positions: Vec<Point> = (0..n)
            .map(|i| {
                let theta = std::f64::consts::TAU * (i as f64) / (n as f64);
                Point::new(30.0 * theta.cos() + i as f64 * 0.05, 30.0 * theta.sin())
            })
            .collect();
        let mut e = Engine::builder()
            .positions(positions)
            .protocols((0..n).map(|_| KSliceSync::new(k)))
            .capabilities(Capabilities::anonymous_with_direction())
            .frame_seed(seed)
            .build()
            .unwrap();
        e.step().unwrap();
        let label = stigmergy::label_by_lex(e.trace().initial())
            .unwrap()
            .label_of(target)
            .unwrap();
        e.protocol_mut(0).send_label(label, &payload);
        let payload_check = payload.clone();
        let out = e
            .run_until(3_000, |e| {
                e.protocol(target)
                    .inbox()
                    .iter()
                    .any(|m| m.payload == payload_check)
            })
            .unwrap();
        prop_assert!(out.satisfied, "k={k} target={target}");
    }

    #[test]
    fn change_tracker_counts_are_exact(
        moves in prop::collection::vec(any::<bool>(), 0..60),
    ) {
        // Feed a synthetic observation stream: `true` = the peer moved
        // before this observation.
        let mut t = ChangeTracker::new(1);
        let mut pos = Point::new(0.0, 0.0);
        t.observe(0, pos);
        let mut expected = 0u32;
        for moved in &moves {
            if *moved {
                pos = Point::new(pos.x + 1.0, pos.y);
                expected += 1;
            }
            t.observe(0, pos);
        }
        prop_assert_eq!(t.count(0), expected);
        // Reset zeroes counts but keeps continuity.
        t.reset();
        prop_assert_eq!(t.count(0), 0);
        prop_assert!(!t.observe(0, pos));
        pos = Point::new(pos.x + 1.0, pos.y);
        prop_assert!(t.observe(0, pos));
    }
}
