//! Allocation-per-activation regression gate.
//!
//! The engine hot path was rewritten to reuse its activation sets,
//! observation snapshots, and views across steps; this test pins that
//! property with a counting global allocator so a future "harmless"
//! `clone()` or `collect()` in the per-activation path fails CI instead
//! of silently costing 30% throughput.
//!
//! Everything runs inside ONE `#[test]` function: the counter is global
//! to the process, and the libtest harness runs separate tests on
//! separate threads, which would bleed allocations into each other's
//! windows.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use stigmergy::async2::{Async2, DriftPolicy};
use stigmergy::sync2::Sync2;
use stigmergy_geometry::Point;
use stigmergy_robots::{Engine, MovementProtocol};
use stigmergy_scheduler::Synchronous;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation verbatim to `System`; the counter is
// a relaxed atomic side effect with no influence on the returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded unchanged to `System.alloc`; the caller
        // upholds `GlobalAlloc`'s layout contract for us.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` came from a matching `alloc` on the
        // same `System` allocator, per the `GlobalAlloc` contract.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded unchanged to `System.realloc`; `ptr` was
        // allocated by this allocator with `layout`.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let result = f();
    (ALLOCATIONS.load(Ordering::SeqCst) - before, result)
}

fn pair<P: MovementProtocol>(make: impl Fn() -> P, seed: u64) -> Engine<P> {
    Engine::builder()
        .positions([Point::new(0.0, 0.0), Point::new(14.0, 0.0)])
        .protocols([make(), make()])
        .schedule(Synchronous)
        .frame_seed(seed)
        // The production fleet path records nothing in the engine; the
        // streaming trace observer is a separate, measured-elsewhere cost.
        .record_trace(false)
        .build()
        .expect("pair configuration is valid")
}

#[test]
fn allocation_budgets_hold_on_the_hot_paths() {
    // 1. Steady-state silent Sync2: nothing queued, nobody moves. This is
    //    the pure engine loop — schedule, snapshot, views, geometry — and
    //    it must not touch the allocator at all.
    let mut engine = pair(Sync2::new, 0xA110C);
    engine.run(16).expect("collision-free"); // warm every scratch buffer
    let (allocs, _) = allocations_during(|| engine.run(1_000).expect("collision-free"));
    assert_eq!(
        allocs, 0,
        "silent Sync2 steady state must be allocation-free (got {allocs} over 2000 activations)"
    );

    // 2. Transmitting Sync2: framing, bit decode, and inbox assembly are
    //    allowed to allocate, but only amortized-O(1) per delivered bit —
    //    the incremental frame decoder must not re-scan (the old decoder
    //    cost ~3 allocations per observed bit; the budget below would
    //    catch any return to that).
    let mut engine = pair(Sync2::new, 0xA110C);
    engine.run(4).expect("collision-free");
    engine.protocol_mut(0).send(&[0x5A; 32]);
    let (allocs, _) = allocations_during(|| {
        engine
            .run_until(4_000, |e| !e.protocol(1).inbox().is_empty())
            .expect("collision-free")
    });
    let activations = 2 * 2 * (16 + 32 * 8); // 2 robots × (signal+return) × framed bits
    assert!(
        allocs * 8 <= activations,
        "transmitting Sync2 allocated {allocs} times over ~{activations} activations \
         (budget: 1 per 8 activations)"
    );

    // 3. Async2 delivery: the asynchronous protocol carries more state
    //    per activation (pending observations, drift bookkeeping), so it
    //    gets a pinned budget instead of zero — measured at well under
    //    0.5 allocations per activation after the rewrite.
    let mut engine = pair(|| Async2::new(DriftPolicy::Diverge), 0xA110C);
    engine.run(4).expect("collision-free");
    engine.protocol_mut(0).send(b"adv");
    let (allocs, outcome) = allocations_during(|| {
        engine
            .run_until(600_000, |e| !e.protocol(1).inbox().is_empty())
            .expect("collision-free")
    });
    assert!(outcome.satisfied, "async2 must deliver within budget");
    let stats = engine.stats();
    assert!(
        allocs * 2 <= stats.activations,
        "Async2 allocated {allocs} times over {} activations (budget: 1 per 2 activations)",
        stats.activations
    );
}
