//! `k`-segment addressing (§5): routing with coarse angular sensing.
//!
//! The full keyboard of §3.2 needs `2n` distinguishable directions, which
//! round-off-limited robots may not have. The paper's remedy: use only
//! `k + 1` *segments* — one segment (here: one full diameter, two
//! segments) for message bits, and `k` segments to transmit the
//! **index** of the addressee as `⌈log_k n⌉` base-`k` digits preceding the
//! payload. The price is `⌈log_k n⌉` extra moves per message; with
//! `k = O(log n)` that is the paper's `O(log n / log log n)` slowdown —
//! experiment E4 measures exactly this trade-off.
//!
//! [`KSliceSync`] implements the scheme on the synchronous skeleton with
//! lexicographic naming (sense of direction): diameter 0 carries payload
//! bits (side = bit value); the half-slices of the remaining
//! `⌈k/2⌉` diameters carry the `k` addressing digits.

use crate::decode::{InboxEntry, OverheardEntry};
use crate::naming::{label_by_lex, Labeling};
use crate::CoreError;
use std::collections::{BTreeMap, VecDeque};
use stigmergy_coding::addressing::{decode_digits, digits_for, encode_digits};
use stigmergy_coding::framing::{encode_frame, FrameDecoder};
use stigmergy_coding::Bit;
use stigmergy_geometry::granular::{SliceSide, SliceZone, SlicedGranular};
use stigmergy_geometry::voronoi::granular_radius;
use stigmergy_geometry::{Point, Tolerance, Vec2};
use stigmergy_robots::{MovementProtocol, View};

/// One keyboard press: an addressing digit or a payload bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Symbol {
    Digit(usize),
    Payload(Bit),
}

/// The per-sender decoding state: collect the address digits, then feed
/// payload bits to the frame decoder until a message completes.
#[derive(Debug, Clone, Default)]
struct KDecoder {
    digits: Vec<usize>,
    frame: FrameDecoder,
}

/// Keyboard geometry for the `k`-slice protocol.
#[derive(Debug, Clone)]
struct KGeometry {
    homes: Vec<Point>,
    keyboards: Vec<SlicedGranular>,
    labeling: Labeling,
}

/// The synchronous `k`-segment addressing protocol.
#[derive(Debug, Clone)]
pub struct KSliceSync {
    k: usize,
    counter: u64,
    geometry: Option<KGeometry>,
    init_error: Option<CoreError>,
    pending: VecDeque<(usize, Vec<u8>)>,
    current: VecDeque<Symbol>,
    decoders: BTreeMap<usize, KDecoder>,
    inbox: Vec<InboxEntry>,
    overheard: Vec<OverheardEntry>,
    signals_sent: u64,
}

impl KSliceSync {
    /// Creates an instance with `k` addressing segments.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` (a radix below 2 cannot encode indices).
    #[must_use]
    pub fn new(k: usize) -> Self {
        assert!(k >= 2, "need at least 2 addressing segments");
        Self {
            k,
            counter: 0,
            geometry: None,
            init_error: None,
            pending: VecDeque::new(),
            current: VecDeque::new(),
            decoders: BTreeMap::new(),
            inbox: Vec::new(),
            overheard: Vec::new(),
            signals_sent: 0,
        }
    }

    /// Queues a message for the robot with lexicographic label
    /// `dest_label`.
    pub fn send_label(&mut self, dest_label: usize, payload: &[u8]) {
        self.pending.push_back((dest_label, payload.to_vec()));
    }

    /// Messages addressed to this robot.
    #[must_use]
    pub fn inbox(&self) -> &[InboxEntry] {
        &self.inbox
    }

    /// Every decoded message.
    #[must_use]
    pub fn overheard(&self) -> &[OverheardEntry] {
        &self.overheard
    }

    /// Keyboard presses made so far (address digits + payload bits).
    #[must_use]
    pub fn signals_sent(&self) -> u64 {
        self.signals_sent
    }

    /// Whether all queued traffic is on the wire.
    #[must_use]
    pub fn is_drained(&self) -> bool {
        self.pending.is_empty() && self.current.is_empty()
    }

    /// Number of diameters: one for payload plus `⌈k/2⌉` for digits.
    fn diameters(&self) -> usize {
        1 + self.k.div_ceil(2)
    }

    fn digits_per_address(&self, n: usize) -> usize {
        digits_for(n, self.k)
    }

    fn build_geometry(&self, view: &View) -> Result<KGeometry, CoreError> {
        let homes: Vec<Point> = view.positions();
        if homes.len() < 2 {
            return Err(CoreError::WrongCohortSize {
                needed: "at least 2",
                got: homes.len(),
            });
        }
        let labeling = label_by_lex(&homes)?;
        let keyboards = (0..homes.len())
            .map(|i| {
                let r = granular_radius(&homes, i)?;
                SlicedGranular::with_reference(homes[i], r, self.diameters(), Vec2::NORTH)
            })
            .collect::<Result<_, _>>()?;
        Ok(KGeometry {
            homes,
            keyboards,
            labeling,
        })
    }

    fn press_of(&self, symbol: Symbol) -> (usize, SliceSide) {
        match symbol {
            Symbol::Payload(bit) => (0, SliceSide::from_bit(bit.as_bool())),
            Symbol::Digit(d) => {
                let slice = 1 + d / 2;
                let side = if d % 2 == 0 {
                    SliceSide::Zero
                } else {
                    SliceSide::One
                };
                (slice, side)
            }
        }
    }

    fn symbol_of(&self, slice: usize, side: SliceSide) -> Symbol {
        if slice == 0 {
            Symbol::Payload(Bit::from_bool(side.bit()))
        } else {
            Symbol::Digit(2 * (slice - 1) + usize::from(side == SliceSide::One))
        }
    }

    fn decode_snapshot(&mut self, view: &View) {
        let Some(g) = self.geometry.as_ref() else {
            return;
        };
        let tol = Tolerance::default();
        let mut events = Vec::new();
        for o in view.others() {
            let Some(home) = g
                .keyboards
                .iter()
                .position(|kb| kb.contains(o.position, tol))
            else {
                continue;
            };
            if let SliceZone::OnSlice {
                slice,
                side,
                distance,
                deviation,
            } = g.keyboards[home].classify(o.position, tol)
            {
                if distance > g.keyboards[home].radius() * 1e-6
                    && deviation <= g.keyboards[home].decode_tolerance()
                {
                    events.push((home, self.symbol_of(slice, side)));
                }
            }
        }
        let n = g.homes.len();
        let need = self.digits_per_address(n);
        for (sender, symbol) in events {
            let dec = self.decoders.entry(sender).or_default();
            match symbol {
                Symbol::Digit(d) => {
                    if dec.digits.len() < need {
                        dec.digits.push(d);
                    }
                    // A digit after the address is complete means the
                    // sender started over (protocol violation by a buggy
                    // sender); start a fresh address.
                    else {
                        dec.digits.clear();
                        dec.digits.push(d);
                        dec.frame = FrameDecoder::new();
                    }
                }
                Symbol::Payload(bit) => {
                    if dec.digits.len() < need {
                        // Payload before a full address: drop (cannot
                        // happen with well-formed senders).
                        continue;
                    }
                    if let Some(payload) = dec.frame.push_bit(bit) {
                        let dest_label = decode_digits(&dec.digits, self.k).unwrap_or(usize::MAX);
                        dec.digits.clear();
                        let g = self.geometry.as_ref().expect("checked above");
                        let Some(dest) = g.labeling.index_of(dest_label) else {
                            continue;
                        };
                        self.overheard.push(OverheardEntry {
                            sender,
                            dest,
                            payload: payload.clone(),
                        });
                        if dest == 0 {
                            self.inbox.push(InboxEntry { sender, payload });
                        }
                    }
                }
            }
        }
    }
}

impl MovementProtocol for KSliceSync {
    fn on_activate(&mut self, view: &View) -> Point {
        let c = self.counter;
        self.counter += 1;

        if self.geometry.is_none() && self.init_error.is_none() {
            match self.build_geometry(view) {
                Ok(g) => self.geometry = Some(g),
                Err(e) => self.init_error = Some(e),
            }
        }
        let Some(home) = self.geometry.as_ref().map(|g| g.homes[0]) else {
            return view.own_position();
        };

        if c.is_multiple_of(2) {
            if self.current.is_empty() {
                if let Some((label, payload)) = self.pending.pop_front() {
                    let g = self.geometry.as_ref().expect("initialized");
                    let n = g.homes.len();
                    let need = self.digits_per_address(n);
                    if let Ok(digits) = encode_digits(label, self.k, need) {
                        self.current.extend(digits.into_iter().map(Symbol::Digit));
                        self.current
                            .extend(encode_frame(&payload).iter().map(Symbol::Payload));
                    }
                }
            }
            let Some(symbol) = self.current.pop_front() else {
                return home; // silent
            };
            self.signals_sent += 1;
            let (slice, side) = self.press_of(symbol);
            let g = self.geometry.as_ref().expect("initialized");
            g.keyboards[0].target(slice, side, 0.5).unwrap_or(home)
        } else {
            self.decode_snapshot(view);
            home
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stigmergy_robots::{Capabilities, Engine};
    use stigmergy_scheduler::Synchronous;

    fn ring(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let theta = std::f64::consts::TAU * (i as f64) / (n as f64);
                Point::new(20.0 * theta.cos() + (i as f64) * 0.07, 20.0 * theta.sin())
            })
            .collect()
    }

    fn engine(n: usize, k: usize, seed: u64) -> Engine<KSliceSync> {
        Engine::builder()
            .positions(ring(n))
            .protocols((0..n).map(|_| KSliceSync::new(k)))
            .capabilities(Capabilities::anonymous_with_direction())
            .schedule(Synchronous)
            .frame_seed(seed)
            .build()
            .unwrap()
    }

    fn label_of(e: &Engine<KSliceSync>, sender: usize, target: usize) -> usize {
        let g = e.protocol(sender).geometry.as_ref().unwrap();
        let world = e.trace().initial()[target];
        let local = e.frames()[sender].to_local(world);
        let home = g.homes.iter().position(|h| h.approx_eq(local)).unwrap();
        g.labeling.label_of(home).unwrap()
    }

    #[test]
    fn delivery_with_binary_addressing() {
        let mut e = engine(6, 2, 1);
        e.step().unwrap();
        let label = label_of(&e, 0, 4);
        e.protocol_mut(0).send_label(label, b"k=2");
        let out = e
            .run_until(2_000, |e| {
                e.protocol(4).inbox().iter().any(|m| m.payload == b"k=2")
            })
            .unwrap();
        assert!(out.satisfied);
    }

    #[test]
    fn delivery_with_larger_radices() {
        for k in [3usize, 4, 8] {
            let mut e = engine(9, k, 10 + k as u64);
            e.step().unwrap();
            let label = label_of(&e, 2, 7);
            e.protocol_mut(2).send_label(label, b"radix");
            let out = e
                .run_until(2_000, |e| {
                    e.protocol(7).inbox().iter().any(|m| m.payload == b"radix")
                })
                .unwrap();
            assert!(out.satisfied, "k={k}");
        }
    }

    #[test]
    fn address_cost_matches_log_k_n() {
        // n = 9 robots, 1-byte payload = 24 frame bits.
        // k=2 → 4 digits; k=3 → 2 digits; k=8 → 2... log8(9)=2; k=9 → 1.
        for (k, expected_digits) in [(2usize, 4u64), (3, 2), (9, 1)] {
            let mut e = engine(9, k, 20 + k as u64);
            e.step().unwrap();
            let label = label_of(&e, 0, 5);
            e.protocol_mut(0).send_label(label, b"c");
            e.run_until(2_000, |e| e.protocol(0).is_drained() && e.time() % 2 == 0)
                .unwrap();
            assert_eq!(e.protocol(0).signals_sent(), expected_digits + 24, "k={k}");
        }
    }

    #[test]
    fn multiple_messages_back_to_back() {
        let mut e = engine(5, 2, 3);
        e.step().unwrap();
        let l1 = label_of(&e, 0, 1);
        let l3 = label_of(&e, 0, 3);
        e.protocol_mut(0).send_label(l1, b"one");
        e.protocol_mut(0).send_label(l3, b"two");
        let out = e
            .run_until(3_000, |e| {
                e.protocol(1).inbox().iter().any(|m| m.payload == b"one")
                    && e.protocol(3).inbox().iter().any(|m| m.payload == b"two")
            })
            .unwrap();
        assert!(out.satisfied);
    }

    #[test]
    fn bystanders_overhear() {
        let mut e = engine(4, 2, 4);
        e.step().unwrap();
        let label = label_of(&e, 1, 2);
        e.protocol_mut(1).send_label(label, b"psst");
        e.run_until(2_000, |e| {
            e.protocol(2).inbox().iter().any(|m| m.payload == b"psst")
        })
        .unwrap();
        assert!(e
            .protocol(3)
            .overheard()
            .iter()
            .any(|m| m.payload == b"psst"));
        assert!(e.protocol(3).inbox().is_empty());
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn k_below_two_rejected() {
        let _ = KSliceSync::new(1);
    }

    #[test]
    fn fewer_diameters_than_full_protocol() {
        // The whole point of §5: a 100-robot swarm needs only 1 + ⌈k/2⌉
        // diameters instead of 100.
        let p = KSliceSync::new(4);
        assert_eq!(p.diameters(), 3);
        let p = KSliceSync::new(7);
        assert_eq!(p.diameters(), 5); // 1 + ceil(7/2)
    }
}
