//! Protocol P6 (§4.2, Fig. 6): asynchronous one-to-one communication for
//! any number of robots.
//!
//! The synchronous keyboard of §3 meets the implicit acknowledgements of
//! §4.1. Each granular is sliced into `n + 1` diameters: `n` addressing
//! diameters plus the extra slice **κ** on the SEC radius through the
//! robot, playing the role of the two-robot horizon line:
//!
//! * **κ oscillation** — a robot with nothing to say shuffles along κ,
//!   reversing direction each time it has seen *every* other robot change
//!   position twice. It always moves (Remark 4.3) and never reaches the
//!   granular border or centre: each step is a fraction of the room left
//!   (the paper's "divide the covered distance by `x > 1`").
//! * **Signal** — to send a bit to the robot labelled `j`, walk back to
//!   the granular centre, stride out on diameter `j` (side = bit value),
//!   and keep inching outward until every robot has been seen to change
//!   twice — by Lemma 4.1 applied pairwise, every robot has then observed
//!   the excursion. Return to the centre, then hold a κ stint until every
//!   robot changed twice again, separating this bit from the next.
//!
//! Observers classify every robot's position on that robot's keyboard and
//! register a bit whenever a robot *enters* an addressing half-slice; the
//! interposed κ stint guarantees consecutive identical bits remain
//! distinguishable. Every observer decodes every stream (redundancy), and
//! the keyboards, SEC naming and κ directions are all similarity-invariant
//! — anonymous robots with chirality only suffice, though the protocol
//! also runs with IDs or sense of direction (§4.2's remark).

use crate::ack::ChangeTracker;
use crate::decode::{InboxEntry, MessageStreams, OverheardEntry, ZoneTracker};
use crate::preprocess::{NamingScheme, SwarmGeometry};
use std::collections::VecDeque;
use stigmergy_coding::bits::BitQueue;
use stigmergy_coding::framing::encode_frame;
use stigmergy_geometry::granular::SliceSide;
use stigmergy_geometry::{Point, Vec2};
use stigmergy_robots::{MovementProtocol, View, VisibleId};

/// Inner (centre-side) bound of the κ oscillation, as a fraction of the
/// granular radius.
const KAPPA_LO: f64 = 0.125;
/// Outer (border-side) bound of every excursion, as a fraction of the
/// granular radius.
const WALK_HI: f64 = 0.875;
/// Fraction of the remaining room consumed per constrained move — the
/// paper's `1/x` contraction, applied adaptively so bounds are never hit.
const ROOM_FRACTION: f64 = 0.25;
/// Distance (relative to the radius) below which a robot counts as being
/// at its granular centre.
const CENTER_EPS: f64 = 1e-9;

/// How a queued message names its destination.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Dest {
    Label(usize),
    Id(VisibleId),
    Broadcast,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Shuffling on κ; `outward` is the current direction.
    Kappa { outward: bool },
    /// Walking back to the centre to start an excursion.
    GoCenter { slice: usize, side: SliceSide },
    /// Holding an excursion on `(slice, side)`.
    Out { slice: usize, side: SliceSide },
    /// Returning to the centre after an acknowledged excursion.
    Return { slice: usize, side: SliceSide },
}

/// The asynchronous swarm protocol.
#[derive(Debug, Clone)]
pub struct AsyncSwarm {
    scheme: NamingScheme,
    geometry: Option<SwarmGeometry>,
    init_error: Option<crate::CoreError>,
    phase: Phase,
    tracker: ChangeTracker,
    /// Home indices excluded from the acknowledgement condition: always
    /// `0` (self) plus every peer reported crashed via
    /// [`AsyncSwarm::suspect`]. Kept sorted for deterministic iteration.
    excluded: Vec<usize>,
    stint_ready: bool,
    pending: VecDeque<(Dest, Vec<u8>)>,
    current: Option<(usize, SliceSide, BitQueue)>,
    bits_sent: u64,
    zones: ZoneTracker,
    streams: MessageStreams,
}

impl AsyncSwarm {
    fn with_scheme(scheme: NamingScheme) -> Self {
        Self {
            scheme,
            geometry: None,
            init_error: None,
            phase: Phase::Kappa { outward: true },
            tracker: ChangeTracker::new(0),
            excluded: vec![0],
            stint_ready: false,
            pending: VecDeque::new(),
            current: None,
            bits_sent: 0,
            zones: ZoneTracker::new(),
            streams: MessageStreams::new(),
        }
    }

    /// The paper's §4.2 protocol: anonymous robots, chirality only (SEC
    /// naming).
    #[must_use]
    pub fn anonymous() -> Self {
        Self::with_scheme(NamingScheme::BySec)
    }

    /// Variant with sense of direction (lexicographic naming).
    #[must_use]
    pub fn anonymous_with_direction() -> Self {
        Self::with_scheme(NamingScheme::ByLex)
    }

    /// Variant with observable IDs.
    #[must_use]
    pub fn routed() -> Self {
        Self::with_scheme(NamingScheme::ById)
    }

    /// Queues a message for the robot labelled `dest_label` under this
    /// robot's naming.
    pub fn send_label(&mut self, dest_label: usize, payload: &[u8]) {
        self.pending
            .push_back((Dest::Label(dest_label), payload.to_vec()));
    }

    /// Queues a message for the robot with visible ID `dest`.
    pub fn send_id(&mut self, dest: VisibleId, payload: &[u8]) {
        self.pending.push_back((Dest::Id(dest), payload.to_vec()));
    }

    /// Queues a broadcast (§5 one-to-all).
    pub fn send_broadcast(&mut self, payload: &[u8]) {
        self.pending.push_back((Dest::Broadcast, payload.to_vec()));
    }

    /// Messages addressed to this robot.
    #[must_use]
    pub fn inbox(&self) -> &[InboxEntry] {
        self.streams.inbox()
    }

    /// Every decoded message (redundancy log).
    #[must_use]
    pub fn overheard(&self) -> &[OverheardEntry] {
        self.streams.overheard()
    }

    /// The preprocessed geometry, once built.
    #[must_use]
    pub fn geometry(&self) -> Option<&SwarmGeometry> {
        self.geometry.as_ref()
    }

    /// A degenerate-configuration failure, if preprocessing failed.
    #[must_use]
    pub fn init_error(&self) -> Option<&crate::CoreError> {
        self.init_error.as_ref()
    }

    /// Whether all queued traffic has been sent and acknowledged.
    #[must_use]
    pub fn is_drained(&self) -> bool {
        self.pending.is_empty()
            && self.current.is_none()
            && matches!(self.phase, Phase::Kappa { .. })
    }

    /// Acknowledged excursions so far.
    #[must_use]
    pub fn bits_sent(&self) -> u64 {
        self.bits_sent
    }

    /// Excludes the peer at local home index `home` from the implicit
    /// acknowledgement condition.
    ///
    /// The §4.2 sending rule waits until *every* other robot changed
    /// position twice — so one crash-stopped peer wedges every sender
    /// forever. The repo's algorithm driver acts as a perfect failure
    /// detector: it sees the engine's crash-stop fault events and calls
    /// `suspect` on every surviving robot, after which excursions are
    /// acknowledged by the live peers alone (Lemma 4.1 still applies
    /// pairwise to each of them). Suspecting is deliberately one-way —
    /// crash-stop faults are permanent in this model.
    ///
    /// Suspecting `0` (self) or an out-of-range index is a no-op: self is
    /// always excluded already, and unknown homes never gate an ack.
    pub fn suspect(&mut self, home: usize) {
        if home != 0 && !self.excluded.contains(&home) {
            self.excluded.push(home);
            self.excluded.sort_unstable();
        }
    }

    /// The home indices currently excluded from acknowledgements
    /// (always contains `0`, the robot itself).
    #[must_use]
    pub fn suspected(&self) -> &[usize] {
        &self.excluded
    }

    fn resolve_slice(&self, dest: &Dest) -> Option<(usize, usize)> {
        let g = self.geometry.as_ref()?;
        let label = match dest {
            Dest::Label(l) => *l,
            Dest::Id(id) => {
                let home = (0..g.cohort()).find(|&h| g.id_of(h) == Some(*id))?;
                g.label_for(0, home)
            }
            Dest::Broadcast => g.label_for(0, 0),
        };
        if label >= g.cohort() {
            return None;
        }
        Some((label, g.slice_for_label(label)))
    }

    /// Pops the next queued bit, starting a new message if needed.
    fn next_bit(&mut self) -> Option<(usize, SliceSide)> {
        loop {
            if let Some((slice, _side, q)) = self.current.as_mut() {
                let slice = *slice;
                if let Some(bit) = q.dequeue() {
                    let side = SliceSide::from_bit(bit.as_bool());
                    if q.is_empty() {
                        self.current = None;
                    } else if let Some((_, s, _)) = self.current.as_mut() {
                        *s = side;
                    }
                    return Some((slice, side));
                }
                self.current = None;
            }
            let (dest, payload) = self.pending.pop_front()?;
            if let Some((_label, slice)) = self.resolve_slice(&dest) {
                let mut q = BitQueue::new();
                q.enqueue(&encode_frame(&payload));
                self.current = Some((slice, SliceSide::Zero, q));
            }
            // Unresolvable destinations are dropped (sessions validate).
        }
    }

    /// Everyone (but me and the suspected crashed peers) has changed at
    /// least twice this stint.
    fn acked(&self) -> bool {
        self.tracker.all_changed_at_least_except(2, &self.excluded)
    }

    fn observe_and_decode(&mut self, view: &View) {
        let Some(g) = self.geometry.as_ref() else {
            return;
        };
        for o in view.others() {
            let Some(home) = g.identify(o.position) else {
                continue;
            };
            self.tracker.observe(home, o.position);
            if let Some((slice, side)) = self.zones.observe(g, home, o.position) {
                self.streams.on_signal(g, home, slice, side);
            }
        }
    }

    /// κ direction: outward is the zero side of slice κ (the SEC radius
    /// through this robot, pointing away from the SEC centre).
    fn kappa_dir(&self, outward: bool) -> Vec2 {
        let g = self.geometry.as_ref().expect("initialized");
        let kappa = g.kappa_slice().expect("async keyboards have kappa");
        let d = g
            .keyboard(0)
            .direction(kappa, SliceSide::Zero)
            .expect("kappa is a valid slice");
        if outward {
            d
        } else {
            -d
        }
    }

    /// One constrained κ move from the current radial distance `d`.
    fn kappa_move(&self, own: Point, outward: bool) -> Point {
        let g = self.geometry.as_ref().expect("initialized");
        let radius = g.keyboard(0).radius();
        let d = own.distance(g.home(0));
        let room = if outward {
            WALK_HI * radius - d
        } else {
            d - KAPPA_LO * radius
        };
        // `room` can be ≤ 0 only at t0 (we start at the centre, below the
        // inner bound): bootstrap outward with a quarter radius.
        let step = if room > 0.0 {
            room * ROOM_FRACTION
        } else {
            radius * ROOM_FRACTION
        };
        own + self.kappa_dir(outward || room <= 0.0) * step
    }

    fn at_center(&self, own: Point) -> bool {
        let g = self.geometry.as_ref().expect("initialized");
        own.distance(g.home(0)) < g.keyboard(0).radius() * CENTER_EPS
    }

    /// A full-size move toward the centre along the current offset,
    /// landing exactly there when close enough.
    fn center_move(&self, own: Point) -> Point {
        let g = self.geometry.as_ref().expect("initialized");
        let home = g.home(0);
        let offset = own - home;
        let dist = offset.norm();
        let step = g.keyboard(0).radius() * ROOM_FRACTION;
        if dist <= step {
            home
        } else {
            own + offset * (-(step / dist))
        }
    }

    /// One outward move on an addressing slice: first stride to half the
    /// radius, then contracted steps toward (never to) the outer bound.
    ///
    /// The stride test carries a relative tolerance: the half-radius
    /// launch point round-trips through the robot's local frame between
    /// activations, and for some frame rotations the re-observed distance
    /// lands one ULP *below* `radius / 2`. An exact `d < radius / 2`
    /// would then re-issue the identical jump target forever — a frozen
    /// sender that also wedges every peer waiting on its double-change.
    fn slice_move(&self, own: Point, slice: usize, side: SliceSide) -> Point {
        let g = self.geometry.as_ref().expect("initialized");
        let radius = g.keyboard(0).radius();
        let d = own.distance(g.home(0));
        if d < radius * (0.5 - 1e-9) {
            g.keyboard(0)
                .target(slice, side, 0.5)
                .expect("valid addressing slice")
        } else {
            let dir = g
                .keyboard(0)
                .direction(slice, side)
                .expect("valid addressing slice");
            let room = WALK_HI * radius - d;
            own + dir * (room.max(0.0) * ROOM_FRACTION).max(radius * 1e-12)
        }
    }
}

impl MovementProtocol for AsyncSwarm {
    fn on_activate(&mut self, view: &View) -> Point {
        if self.geometry.is_none() && self.init_error.is_none() {
            match SwarmGeometry::build(view, self.scheme, true) {
                Ok(g) => {
                    self.tracker = ChangeTracker::new(g.cohort());
                    self.geometry = Some(g);
                }
                Err(e) => self.init_error = Some(e),
            }
        }
        if self.geometry.is_none() {
            return view.own_position();
        }

        self.observe_and_decode(view);
        let own = view.own_position();

        match self.phase {
            Phase::Kappa { outward } => {
                if self.acked() {
                    self.stint_ready = true;
                }
                if self.stint_ready {
                    if let Some((slice, side)) = self.next_bit() {
                        // Head for the centre to start the excursion.
                        self.stint_ready = false;
                        self.phase = Phase::GoCenter { slice, side };
                        return self.step_go_center(own, slice, side);
                    }
                    // Nothing to send: reverse the κ direction (fresh
                    // stint), as the paper prescribes.
                    self.stint_ready = false;
                    self.tracker.reset();
                    let flipped = !outward;
                    self.phase = Phase::Kappa { outward: flipped };
                    return self.kappa_move(own, flipped);
                }
                self.kappa_move(own, outward)
            }
            Phase::GoCenter { slice, side } => self.step_go_center(own, slice, side),
            Phase::Out { slice, side } => {
                if self.acked() {
                    self.phase = Phase::Return { slice, side };
                    return self.step_return(own);
                }
                self.slice_move(own, slice, side)
            }
            Phase::Return { .. } => self.step_return(own),
        }
    }
}

impl AsyncSwarm {
    fn step_go_center(&mut self, own: Point, slice: usize, side: SliceSide) -> Point {
        if self.at_center(own) {
            // Launch the excursion: fresh acknowledgement stint.
            self.tracker.reset();
            self.phase = Phase::Out { slice, side };
            self.bits_sent += 1;
            return self.slice_move(own, slice, side);
        }
        self.center_move(own)
    }

    fn step_return(&mut self, own: Point) -> Point {
        if self.at_center(own) {
            // Back home: hold a κ stint before the next bit.
            self.tracker.reset();
            self.stint_ready = false;
            self.phase = Phase::Kappa { outward: true };
            return self.kappa_move(own, true);
        }
        self.center_move(own)
    }
}

impl Default for AsyncSwarm {
    fn default() -> Self {
        Self::anonymous()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stigmergy_robots::{Capabilities, Engine};
    use stigmergy_scheduler::{FairAsync, RoundRobin, SingleActive, WakeAllFirst};

    fn ring(n: usize) -> Vec<Point> {
        (0..n)
            .map(|k| {
                let theta = std::f64::consts::TAU * (k as f64) / (n as f64);
                let r = 20.0 + (k as f64) * 0.2;
                Point::new(r * theta.sin(), r * theta.cos())
            })
            .collect()
    }

    fn engine<S: stigmergy_scheduler::Schedule + 'static>(
        n: usize,
        schedule: S,
        seed: u64,
    ) -> Engine<AsyncSwarm> {
        Engine::builder()
            .positions(ring(n))
            .protocols((0..n).map(|_| AsyncSwarm::anonymous()))
            .capabilities(Capabilities::anonymous())
            .schedule(WakeAllFirst::new(schedule))
            .frame_seed(seed)
            .build()
            .unwrap()
    }

    /// Local home index of engine robot `target` from `observer`'s
    /// perspective, computed via world-home matching.
    fn home_of(e: &Engine<AsyncSwarm>, observer: usize, target: usize) -> usize {
        let g = e.protocol(observer).geometry().expect("preprocessed");
        let world_home = e.trace().initial()[target];
        let local_home = e.frames()[observer].to_local(world_home);
        (0..g.cohort())
            .find(|&h| g.home(h).approx_eq(local_home))
            .expect("home present")
    }

    /// Label of engine robot `target` from `sender`'s perspective.
    fn label_of(e: &Engine<AsyncSwarm>, sender: usize, target: usize) -> usize {
        let g = e.protocol(sender).geometry().expect("preprocessed");
        g.label_for(0, home_of(e, sender, target))
    }

    #[test]
    fn three_robot_delivery_fair() {
        let mut e = engine(3, FairAsync::new(11, 0.5, 8), 1);
        e.step().unwrap();
        let label = label_of(&e, 0, 2);
        e.protocol_mut(0).send_label(label, b"n-ary");
        let out = e
            .run_until(60_000, |e| {
                e.protocol(2).inbox().iter().any(|m| m.payload == b"n-ary")
            })
            .unwrap();
        assert!(out.satisfied, "not delivered");
    }

    #[test]
    fn five_robot_delivery_single_active() {
        let mut e = engine(5, SingleActive::new(13, 16), 2);
        e.step().unwrap();
        let label = label_of(&e, 1, 4);
        e.protocol_mut(1).send_label(label, b"Z");
        let out = e
            .run_until(400_000, |e| {
                e.protocol(4).inbox().iter().any(|m| m.payload == b"Z")
            })
            .unwrap();
        assert!(out.satisfied, "not delivered under the harshest scheduler");
    }

    #[test]
    fn concurrent_senders() {
        let mut e = engine(4, FairAsync::new(17, 0.5, 8), 3);
        e.step().unwrap();
        let l01 = label_of(&e, 0, 1);
        let l23 = label_of(&e, 2, 3);
        e.protocol_mut(0).send_label(l01, b"ab");
        e.protocol_mut(2).send_label(l23, b"cd");
        let out = e
            .run_until(150_000, |e| {
                e.protocol(1).inbox().iter().any(|m| m.payload == b"ab")
                    && e.protocol(3).inbox().iter().any(|m| m.payload == b"cd")
            })
            .unwrap();
        assert!(out.satisfied);
    }

    #[test]
    fn everyone_overhears() {
        let mut e = engine(4, FairAsync::new(19, 0.6, 8), 4);
        e.step().unwrap();
        let label = label_of(&e, 0, 1);
        e.protocol_mut(0).send_label(label, b"loud");
        let out = e
            .run_until(150_000, |e| {
                (2..4).all(|i| {
                    e.protocol(i)
                        .overheard()
                        .iter()
                        .any(|m| m.payload == b"loud")
                })
            })
            .unwrap();
        assert!(out.satisfied, "bystanders missed the traffic");
    }

    #[test]
    fn broadcast() {
        let mut e = engine(4, FairAsync::new(23, 0.5, 8), 5);
        e.step().unwrap();
        e.protocol_mut(1).send_broadcast(b"all");
        let out = e
            .run_until(150_000, |e| {
                [0usize, 2, 3]
                    .iter()
                    .all(|&i| e.protocol(i).inbox().iter().any(|m| m.payload == b"all"))
            })
            .unwrap();
        assert!(out.satisfied);
    }

    /// Regression: under this frame seed, the half-radius launch point of
    /// an excursion round-trips through a robot's local frame to a
    /// distance one ULP below `radius / 2`, and the old exact `d < r/2`
    /// stride test re-issued the identical jump target forever — a
    /// bitwise-frozen sender that wedged every peer's double-change ack.
    /// Three simultaneous broadcasters made the freeze near-certain.
    #[test]
    fn half_radius_roundtrip_cannot_freeze_a_sender() {
        use stigmergy_scheduler::WorstCaseFair;
        let mut e = Engine::builder()
            .positions(ring(3))
            .protocols((0..3).map(|_| AsyncSwarm::anonymous()))
            .capabilities(Capabilities::anonymous())
            .schedule(WakeAllFirst::new(WorstCaseFair::new(6)))
            .frame_seed(0xAA71_E90F_553B_6904)
            .build()
            .unwrap();
        e.step().unwrap();
        for i in 0..3 {
            e.protocol_mut(i).send_broadcast(b"zzzzzz");
        }
        let out = e
            .run_until(400_000, |e| {
                (0..3).all(|i| e.protocol(i).inbox().len() >= 2)
            })
            .unwrap();
        assert!(out.satisfied, "a broadcaster froze mid-excursion");
    }

    #[test]
    fn robots_never_leave_granulars_or_collide() {
        let mut e = engine(4, FairAsync::new(29, 0.5, 8), 6);
        e.step().unwrap();
        let label = label_of(&e, 0, 3);
        e.protocol_mut(0).send_label(label, &[0xF0]);
        let homes = e.trace().initial().to_vec();
        let radii: Vec<f64> = (0..4)
            .map(|i| {
                (0..4)
                    .filter(|&j| j != i)
                    .map(|j| homes[i].distance(homes[j]))
                    .fold(f64::INFINITY, f64::min)
                    / 2.0
            })
            .collect();
        for _ in 0..20_000 {
            e.step().unwrap(); // engine also checks collisions
            for i in 0..4 {
                assert!(
                    homes[i].distance(e.positions()[i]) <= radii[i] + 1e-9,
                    "robot {i} left its granular"
                );
            }
        }
    }

    #[test]
    fn idle_robots_oscillate_on_kappa() {
        let mut e = engine(3, RoundRobin, 7);
        e.run(200).unwrap();
        // Everyone moved (Remark 4.3) …
        for i in 0..3 {
            assert!(e.trace().move_count(i) > 10, "robot {i} too still");
        }
        // …and nobody decoded any bits (κ walks are not signals).
        for i in 0..3 {
            assert!(e.protocol(i).overheard().is_empty());
            assert!(e.protocol(i).inbox().is_empty());
        }
    }

    #[test]
    fn multi_message_sequencing() {
        let mut e = engine(3, FairAsync::new(31, 0.6, 8), 8);
        e.step().unwrap();
        let l1 = label_of(&e, 0, 1);
        let l2 = label_of(&e, 0, 2);
        e.protocol_mut(0).send_label(l1, b"first");
        e.protocol_mut(0).send_label(l2, b"second");
        let out = e
            .run_until(300_000, |e| {
                e.protocol(1).inbox().iter().any(|m| m.payload == b"first")
                    && e.protocol(2).inbox().iter().any(|m| m.payload == b"second")
            })
            .unwrap();
        assert!(out.satisfied);
        // The receiver gets the last bit while the sender is still on its
        // final return leg; give the sender time to finish.
        let settled = e.run_until(10_000, |e| e.protocol(0).is_drained()).unwrap();
        assert!(settled.satisfied);
    }

    #[test]
    fn works_with_ids_and_direction_variants() {
        let positions = ring(3);
        let mut e = Engine::builder()
            .positions(positions)
            .protocols((0..3).map(|_| AsyncSwarm::routed()))
            .capabilities(Capabilities::identified_with_direction())
            .schedule(WakeAllFirst::new(FairAsync::new(37, 0.5, 8)))
            .frame_seed(9)
            .build()
            .unwrap();
        e.step().unwrap();
        let id = e.ids().unwrap()[2];
        e.protocol_mut(0).send_id(id, b"id-routed");
        let out = e
            .run_until(100_000, |e| {
                e.protocol(2)
                    .inbox()
                    .iter()
                    .any(|m| m.payload == b"id-routed")
            })
            .unwrap();
        assert!(out.satisfied);
    }

    #[test]
    fn two_robots_work_too() {
        let mut e = engine(2, FairAsync::new(41, 0.5, 8), 10);
        e.step().unwrap();
        let label = label_of(&e, 0, 1);
        e.protocol_mut(0).send_label(label, b"pair");
        let out = e
            .run_until(60_000, |e| {
                e.protocol(1).inbox().iter().any(|m| m.payload == b"pair")
            })
            .unwrap();
        assert!(out.satisfied);
    }

    #[test]
    fn suspecting_a_crashed_peer_unwedges_the_sender() {
        use stigmergy_scheduler::FaultPlan;
        let mut e = engine(3, FairAsync::new(47, 0.5, 8), 12);
        e.step().unwrap();
        e.set_fault_plan(FaultPlan::new(0xC4A5).crash_stop(2, 5));
        e.protocol_mut(0).send_broadcast(b"x");
        // The crashed robot never moves again, so the plain §4.2 ack
        // condition (everyone changes twice) can never be met: the
        // sender wedges before the first excursion even starts.
        let wedged = e.run_until(40_000, |e| e.protocol(0).is_drained()).unwrap();
        assert!(!wedged.satisfied, "crash must wedge an unsuspecting sender");
        // The failure detector reports the crash: survivors suspect the
        // frozen home and stints complete on live acks alone.
        for i in 0..2 {
            let home = home_of(&e, i, 2);
            e.protocol_mut(i).suspect(home);
        }
        let out = e
            .run_until(120_000, |e| {
                e.protocol(0).is_drained()
                    && e.protocol(1).inbox().iter().any(|m| m.payload == b"x")
            })
            .unwrap();
        assert!(out.satisfied, "suspected crash still wedges the channel");
    }

    #[test]
    fn suspect_dedups_and_ignores_self() {
        let mut p = AsyncSwarm::anonymous();
        assert_eq!(p.suspected(), &[0]);
        p.suspect(0); // self: no-op
        p.suspect(2);
        p.suspect(2); // duplicate: no-op
        p.suspect(1);
        assert_eq!(p.suspected(), &[0, 1, 2]);
    }

    #[test]
    fn bits_sent_counts_excursions() {
        let mut e = engine(3, FairAsync::new(43, 0.7, 8), 11);
        e.step().unwrap();
        let label = label_of(&e, 0, 1);
        e.protocol_mut(0).send_label(label, b"");
        // An empty payload is still a 16-bit frame header.
        let out = e
            .run_until(100_000, |e| e.protocol(0).is_drained())
            .unwrap();
        assert!(out.satisfied);
        assert_eq!(e.protocol(0).bits_sent(), 16);
        assert_eq!(e.protocol(1).inbox()[0].payload, Vec::<u8>::new());
    }
}
