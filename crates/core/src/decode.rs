//! Observer-side decoding: movements back into bits and messages.
//!
//! Every robot observes every other robot's excursions and can reconstruct
//! **all** message streams, not just its own — the paper's redundancy
//! property ("every robot is able to know all the messages sent in the
//! system"). [`MessageStreams`] maintains one incremental frame decoder per
//! `(sender, addressee)` pair and sorts completed messages into the
//! observer's inbox or the overheard log.
//!
//! Two observation disciplines feed it:
//!
//! * synchronous protocols sample configurations at *return-phase* instants
//!   and treat every off-home robot as one signal ([`MessageStreams::on_signal`]);
//! * asynchronous protocols watch **zone transitions** ([`ZoneTracker`]):
//!   a new bit is an entry into an addressing half-slice from any other
//!   zone, which the sender's hold-until-acknowledged discipline makes
//!   unambiguous.

use crate::preprocess::SwarmGeometry;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use stigmergy_coding::framing::FrameDecoder;
use stigmergy_geometry::granular::{SliceSide, SliceZone};
use stigmergy_geometry::Point;

/// A message delivered to this observer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InboxEntry {
    /// Sender, as a home index of the observer's [`SwarmGeometry`].
    pub sender: usize,
    /// The payload.
    pub payload: Vec<u8>,
}

/// A message this observer decoded for someone else (redundancy log).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverheardEntry {
    /// Sender home index.
    pub sender: usize,
    /// Addressee home index.
    pub dest: usize,
    /// The payload.
    pub payload: Vec<u8>,
}

/// Per-(sender, addressee) incremental decoding with inbox/overheard
/// routing. The observer is always home index 0 of its own geometry.
#[derive(Debug, Clone, Default)]
pub struct MessageStreams {
    decoders: BTreeMap<(usize, usize), FrameDecoder>,
    inbox: Vec<InboxEntry>,
    overheard: Vec<OverheardEntry>,
}

impl MessageStreams {
    /// Creates an empty stream set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one decoded signal: `sender` pressed `(slice, side)` on its
    /// keyboard. Returns a completed message, if this bit finished one.
    ///
    /// Signals on κ or outside the addressing range are ignored (they are
    /// pacing movements, not bits). A signal addressed to the sender's own
    /// slice is a **broadcast** (§5 one-to-all): it is delivered to every
    /// observer's inbox.
    pub fn on_signal(
        &mut self,
        geometry: &SwarmGeometry,
        sender: usize,
        slice: usize,
        side: SliceSide,
    ) -> Option<OverheardEntry> {
        let label = geometry.label_for_slice(slice)?;
        let dest = geometry.home_for(sender, label)?;
        let bit = stigmergy_coding::Bit::from_bool(side.bit());
        let payload = self
            .decoders
            .entry((sender, dest))
            .or_default()
            .push_bit(bit)?;
        let entry = OverheardEntry {
            sender,
            dest,
            payload: payload.clone(),
        };
        self.overheard.push(entry.clone());
        // dest == 0: unicast to me. dest == sender: broadcast convention.
        if dest == 0 || dest == sender {
            self.inbox.push(InboxEntry { sender, payload });
        }
        Some(entry)
    }

    /// Messages addressed to this observer, in arrival order.
    #[must_use]
    pub fn inbox(&self) -> &[InboxEntry] {
        &self.inbox
    }

    /// Every message decoded, whoever it was for.
    #[must_use]
    pub fn overheard(&self) -> &[OverheardEntry] {
        &self.overheard
    }

    /// Bits pending (incomplete frames) across all streams.
    #[must_use]
    pub fn pending_bits(&self) -> usize {
        self.decoders.values().map(FrameDecoder::pending_bits).sum()
    }
}

/// A zone on a keyboard, for transition detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ZoneKey {
    /// At the keyboard centre.
    Center,
    /// On half-slice `(slice, side)`.
    Slice(usize, SliceSide),
}

impl ZoneKey {
    fn of(zone: SliceZone) -> Self {
        match zone {
            SliceZone::Center => ZoneKey::Center,
            SliceZone::OnSlice { slice, side, .. } => ZoneKey::Slice(slice, side),
        }
    }
}

/// Watches per-robot keyboard zones and reports *entries into addressing
/// half-slices* — the asynchronous bit events.
#[derive(Debug, Clone, Default)]
pub struct ZoneTracker {
    last: BTreeMap<usize, ZoneKey>,
}

impl ZoneTracker {
    /// Creates an empty tracker.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes robot `home` at `pos`; returns `Some((slice, side))` when
    /// the robot has just *entered* an addressing half-slice.
    pub fn observe(
        &mut self,
        geometry: &SwarmGeometry,
        home: usize,
        pos: Point,
    ) -> Option<(usize, SliceSide)> {
        let zone = geometry
            .keyboard(home)
            .classify(pos, stigmergy_geometry::Tolerance::default());
        let key = ZoneKey::of(zone);
        let prev = self.last.insert(home, key);
        if prev == Some(key) {
            return None; // still in the same zone
        }
        match key {
            ZoneKey::Slice(slice, side) if geometry.label_for_slice(slice).is_some() => {
                Some((slice, side))
            }
            _ => None,
        }
    }

    /// The last zone observed for `home`.
    #[must_use]
    pub fn last_zone(&self, home: usize) -> Option<ZoneKey> {
        self.last.get(&home).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::NamingScheme;
    use stigmergy_coding::framing::encode_frame;
    use stigmergy_robots::{Observed, View};

    fn geometry(kappa: bool) -> SwarmGeometry {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(0.0, 10.0),
        ];
        let view = View::new(
            Observed {
                position: pts[0],
                id: None,
            },
            pts[1..]
                .iter()
                .map(|&p| Observed {
                    position: p,
                    id: None,
                })
                .collect(),
            1.0,
        );
        SwarmGeometry::build(&view, NamingScheme::ByLex, kappa).unwrap()
    }

    #[test]
    fn signals_accumulate_into_messages() {
        let g = geometry(false);
        let mut streams = MessageStreams::new();
        // Sender: home 1; addressee: home 0 (me). Label of home 0:
        let label_me = g.label_for(1, 0);
        let slice = g.slice_for_label(label_me);
        let bits = encode_frame(b"ok");
        let mut completed = None;
        for bit in bits.iter() {
            completed = streams.on_signal(&g, 1, slice, SliceSide::from_bit(bit.as_bool()));
        }
        let msg = completed.expect("last bit completes the frame");
        assert_eq!(msg.sender, 1);
        assert_eq!(msg.dest, 0);
        assert_eq!(msg.payload, b"ok");
        assert_eq!(streams.inbox().len(), 1);
        assert_eq!(streams.inbox()[0].sender, 1);
        assert_eq!(streams.overheard().len(), 1);
        assert_eq!(streams.pending_bits(), 0);
    }

    #[test]
    fn messages_for_others_are_overheard_only() {
        let g = geometry(false);
        let mut streams = MessageStreams::new();
        // Sender home 1 → dest home 2.
        let slice = g.slice_for_label(g.label_for(1, 2));
        for bit in encode_frame(b"x").iter() {
            streams.on_signal(&g, 1, slice, SliceSide::from_bit(bit.as_bool()));
        }
        assert!(streams.inbox().is_empty());
        assert_eq!(streams.overheard().len(), 1);
        assert_eq!(streams.overheard()[0].dest, 2);
    }

    #[test]
    fn interleaved_senders_keep_separate_streams() {
        let g = geometry(false);
        let mut streams = MessageStreams::new();
        let s1 = g.slice_for_label(g.label_for(1, 0));
        let s2 = g.slice_for_label(g.label_for(2, 0));
        let b1 = encode_frame(b"from1");
        let b2 = encode_frame(b"from2");
        // Interleave bit-by-bit.
        for i in 0..b1.len().max(b2.len()) {
            if let Some(bit) = b1.get(i) {
                streams.on_signal(&g, 1, s1, SliceSide::from_bit(bit.as_bool()));
            }
            if let Some(bit) = b2.get(i) {
                streams.on_signal(&g, 2, s2, SliceSide::from_bit(bit.as_bool()));
            }
        }
        let mut senders: Vec<usize> = streams.inbox().iter().map(|e| e.sender).collect();
        senders.sort_unstable();
        assert_eq!(senders, vec![1, 2]);
    }

    #[test]
    fn kappa_signals_are_ignored() {
        let g = geometry(true);
        let mut streams = MessageStreams::new();
        assert!(streams.on_signal(&g, 1, 0, SliceSide::Zero).is_none());
        assert_eq!(streams.pending_bits(), 0);
    }

    #[test]
    fn zone_tracker_reports_entries_only() {
        let g = geometry(true);
        let mut tracker = ZoneTracker::new();
        let kb = g.keyboard(1).clone();
        let home = kb.center();

        // First observation at home: no event, zone Center.
        assert_eq!(tracker.observe(&g, 1, home), None);
        assert_eq!(tracker.last_zone(1), Some(ZoneKey::Center));

        // Move out on addressing slice 2, zero side: event.
        let out = kb.target(2, SliceSide::Zero, 0.5).unwrap();
        assert_eq!(tracker.observe(&g, 1, out), Some((2, SliceSide::Zero)));

        // Further out on the same half-slice: no new event.
        let further = kb.target(2, SliceSide::Zero, 0.7).unwrap();
        assert_eq!(tracker.observe(&g, 1, further), None);

        // Back to centre, then out again: a new event.
        assert_eq!(tracker.observe(&g, 1, home), None);
        assert_eq!(tracker.observe(&g, 1, out), Some((2, SliceSide::Zero)));
    }

    #[test]
    fn zone_tracker_ignores_kappa_walks() {
        let g = geometry(true);
        let mut tracker = ZoneTracker::new();
        let kb = g.keyboard(2).clone();
        assert_eq!(tracker.observe(&g, 2, kb.center()), None);
        // κ is slice 0 when kappa is on.
        let on_kappa = kb.target(0, SliceSide::Zero, 0.3).unwrap();
        assert_eq!(tracker.observe(&g, 2, on_kappa), None);
        let further = kb.target(0, SliceSide::Zero, 0.4).unwrap();
        assert_eq!(tracker.observe(&g, 2, further), None);
        // Entering an addressing slice afterwards still fires.
        let out = kb.target(1, SliceSide::One, 0.5).unwrap();
        assert_eq!(tracker.observe(&g, 2, out), Some((1, SliceSide::One)));
    }

    #[test]
    fn side_changes_on_same_slice_are_events() {
        // zero→one side on the same diameter is a different half-slice: a
        // distinct signal (senders interpose κ/centre anyway, but the
        // tracker must not conflate the two sides).
        let g = geometry(true);
        let mut tracker = ZoneTracker::new();
        let kb = g.keyboard(1).clone();
        tracker.observe(&g, 1, kb.center());
        let zero = kb.target(1, SliceSide::Zero, 0.5).unwrap();
        let one = kb.target(1, SliceSide::One, 0.5).unwrap();
        assert!(tracker.observe(&g, 1, zero).is_some());
        assert_eq!(tracker.observe(&g, 1, one), Some((1, SliceSide::One)));
    }
}
