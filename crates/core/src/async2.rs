//! Protocol P5 (§4.1, Fig. 5): asynchronous one-to-one communication
//! between two robots.
//!
//! In the asynchronous SSM only fairness is guaranteed, so a receiver can
//! miss movements. The paper's remedy is the *implicit acknowledgement* of
//! Lemma 4.1: a robot that keeps moving in one direction and sees its
//! peer's position change **twice** knows the peer observed it. Protocol
//! `Async2` is built entirely from that primitive:
//!
//! * **Horizon walk** — while idle (and between bits), walk along the
//!   horizon line `H` through the two initial positions, away from the
//!   peer (`North_r`). A robot *always* moves when active (Remark 4.3).
//! * **Signal** — to send `0` (`1`), step off `H` to the East (West) side
//!   with respect to `North_r` and keep stepping until the peer has been
//!   seen to change twice — the peer is then guaranteed to have seen the
//!   excursion. Return to `H`, then walk North until the peer changes
//!   twice again, separating this bit from the next.
//!
//! Decoding mirrors it: the receiver classifies every observation of the
//! sender as on-`H` / East / West (relative to the *sender's* North) and
//! registers a bit on each entry into East or West.
//!
//! # Drift policies
//!
//! The base protocol ([`DriftPolicy::Diverge`]) makes the robots drift
//! apart forever — the drawback §4.1 discusses. The remedy
//! ([`DriftPolicy::AlternateContract`]) alternates the walk direction per
//! bit and divides every step by `x > 1`, keeping the drift bounded at the
//! cost of ever-smaller movements. True infinitely-small movements are
//! impossible in `f64`, so the contraction floors at `2⁻³⁰` of the base
//! step — far above the decode threshold and rounding noise; experiment
//! E3 quantifies both policies.

use crate::ack::ChangeTracker;
use serde::{Deserialize, Serialize};
use stigmergy_coding::bits::BitQueue;
use stigmergy_coding::framing::{encode_frame, FrameDecoder};
use stigmergy_coding::Bit;
use stigmergy_geometry::{Point, Vec2};
use stigmergy_robots::{MovementProtocol, View};

/// How the robots manage their drift along the horizon line (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum DriftPolicy {
    /// The base protocol: always walk away from the peer with constant
    /// steps. Robust, but the robots drift apart without bound.
    #[default]
    Diverge,
    /// The §4.1 remedy: alternate the walk direction at each new bit and
    /// divide every step by `x > 1`. Bounded drift, shrinking movements.
    AlternateContract {
        /// The contraction divisor (must be `> 1`; `2.0` is typical).
        x: f64,
    },
}

/// Contraction floor: steps never shrink below `2⁻³⁰` of the base step.
///
/// The floor keeps the smallest genuine lateral offset (`base·2⁻³⁰ ≈
/// d₀·10⁻¹⁰`) two orders of magnitude above the decoder's noise threshold
/// (see [`Async2::classify_peer`]), while the residual drift it admits —
/// `base` per ~10⁹ moves — is negligible for any realizable run.
const MIN_SCALE: f64 = 9.313225746154785e-10; // 2^-30

/// Zone of the peer relative to the horizon line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HZone {
    On,
    East,
    West,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Walking along `H`; may start a bit once the peer changed twice.
    North,
    /// Holding an excursion for the given bit.
    Out(Bit),
    /// Walking back to `H` after an acknowledged excursion.
    Return(Bit),
}

/// The asynchronous two-robot protocol.
#[derive(Debug, Clone)]
pub struct Async2 {
    policy: DriftPolicy,
    // Geometry, fixed at t0.
    home: Option<Point>,
    peer_home: Option<Point>,
    north: Vec2,
    east: Vec2,
    base_step: f64,
    zone_tol: f64,
    // Walk state.
    scale: f64,
    north_sign: f64,
    phase: Phase,
    tracker: ChangeTracker,
    // Sending.
    outgoing: BitQueue,
    bits_sent: u64,
    // Receiving.
    last_zone: Option<HZone>,
    decoder: FrameDecoder,
    inbox: Vec<Vec<u8>>,
    decoded_bits: Vec<Bit>,
}

impl Async2 {
    /// Creates a protocol instance with the given drift policy.
    ///
    /// # Panics
    ///
    /// Panics if the policy is [`DriftPolicy::AlternateContract`] with
    /// `x <= 1`.
    #[must_use]
    pub fn new(policy: DriftPolicy) -> Self {
        if let DriftPolicy::AlternateContract { x } = policy {
            assert!(x > 1.0, "contraction divisor must exceed 1");
        }
        Self {
            policy,
            home: None,
            peer_home: None,
            north: Vec2::NORTH,
            east: Vec2::EAST,
            base_step: 0.0,
            zone_tol: 0.0,
            scale: 1.0,
            north_sign: 1.0,
            phase: Phase::North,
            tracker: ChangeTracker::new(1),
            outgoing: BitQueue::new(),
            bits_sent: 0,
            last_zone: None,
            decoder: FrameDecoder::new(),
            inbox: Vec::new(),
            decoded_bits: Vec::new(),
        }
    }

    /// Queues a message for the peer.
    pub fn send(&mut self, payload: &[u8]) {
        self.outgoing.enqueue(&encode_frame(payload));
    }

    /// Queues raw bits, bypassing framing (diagnostics and the Fig. 5
    /// reproduction).
    pub fn send_raw(&mut self, bits: &stigmergy_coding::BitString) {
        self.outgoing.enqueue(bits);
    }

    /// Messages received, in order.
    #[must_use]
    pub fn inbox(&self) -> &[Vec<u8>] {
        &self.inbox
    }

    /// Raw decoded bit stream (Fig. 5 reproduction / diagnostics).
    #[must_use]
    pub fn decoded_bits(&self) -> &[Bit] {
        &self.decoded_bits
    }

    /// Whether all queued bits are on the wire (sent *and* acknowledged).
    #[must_use]
    pub fn is_drained(&self) -> bool {
        self.outgoing.is_empty() && matches!(self.phase, Phase::North)
    }

    /// Excursions made so far.
    #[must_use]
    pub fn bits_sent(&self) -> u64 {
        self.bits_sent
    }

    /// The current step length (diagnostics for experiment E3).
    #[must_use]
    pub fn current_step(&self) -> f64 {
        self.base_step * self.scale
    }

    fn init(&mut self, view: &View) {
        let own = view.own_position();
        let peer = view
            .others()
            .first()
            .map(|o| o.position)
            .expect("Async2 needs exactly one peer");
        self.home = Some(own);
        self.peer_home = Some(peer);
        // North_r: away from the peer along the horizon line.
        self.north = (own - peer).normalized().expect("distinct robots");
        self.east = self.north.perp_cw();
        let d0 = own.distance(peer);
        self.base_step = (d0 / 8.0).min(view.sigma());
        self.zone_tol = d0 * 1e-12;
    }

    /// Consumes one step length, applying the contraction policy.
    fn take_step(&mut self) -> f64 {
        let s = self.base_step * self.scale;
        if let DriftPolicy::AlternateContract { x } = self.policy {
            self.scale = (self.scale / x).max(MIN_SCALE);
        }
        s
    }

    /// The peer's East direction expressed in *my* frame: the peer's North
    /// is the opposite of mine, so its East is the opposite of mine too
    /// (chirality: both rotate North clockwise to get East).
    fn peer_east(&self) -> Vec2 {
        -self.east
    }

    fn classify_peer(&self, peer_pos: Point) -> HZone {
        let peer_home = self.peer_home.expect("initialized");
        let u = (peer_pos - peer_home).dot(self.peer_east());
        // Frame-transform rounding noise grows with the peer's distance
        // from its home (the Diverge policy walks arbitrarily far), so the
        // on-H band must widen with it; genuine lateral offsets are at
        // least `base·2⁻³⁰`, far above this threshold at any range.
        let tol = self.zone_tol + peer_pos.distance(peer_home) * 1e-13;
        if u > tol {
            HZone::East
        } else if u < -tol {
            HZone::West
        } else {
            HZone::On
        }
    }

    fn decode(&mut self, peer_pos: Point) {
        let zone = self.classify_peer(peer_pos);
        let prev = self.last_zone.replace(zone);
        if prev == Some(zone) {
            return;
        }
        let bit = match zone {
            HZone::East => Bit::Zero,
            HZone::West => Bit::One,
            HZone::On => return,
        };
        self.decoded_bits.push(bit);
        if let Some(msg) = self.decoder.push_bit(bit) {
            self.inbox.push(msg);
        }
    }

    /// Direction of the excursion for `bit` (my East encodes 0).
    fn out_dir(&self, bit: Bit) -> Vec2 {
        if bit.as_bool() {
            -self.east
        } else {
            self.east
        }
    }

    /// One westward (homeward) move of the return phase; lands exactly on
    /// `H` when close enough and re-enters the horizon walk.
    ///
    /// Return steps are **not** contracted: a geometrically shrinking
    /// sequence that already spent `s·(1 + 1/x + …)` going out can never
    /// cover that distance coming back. The contraction exists to bound
    /// the on-`H` drift (where robots can approach each other); the return
    /// leg is perpendicular to `H`, collision-free, and bounded by the
    /// excursion itself, so full-size steps are safe.
    fn return_move(&mut self, own: Point, bit: Bit) -> Point {
        let dir = self.out_dir(bit);
        let offset = (own - self.home.expect("initialized")).dot(dir);
        let step = self.base_step;
        if offset <= step {
            // Land exactly on H; the next activation starts the North
            // walk, whose acknowledgement count starts fresh.
            self.phase = Phase::North;
            self.tracker.reset();
            own + dir * (-offset)
        } else {
            own + dir * (-step)
        }
    }
}

impl Default for Async2 {
    fn default() -> Self {
        Self::new(DriftPolicy::default())
    }
}

impl MovementProtocol for Async2 {
    fn on_activate(&mut self, view: &View) -> Point {
        let own = view.own_position();
        let peer = view.others().first().map(|o| o.position);
        if self.home.is_none() {
            if peer.is_none() {
                // Cannot establish the horizon frame without seeing the
                // peer (transient observation dropout): wait for a clean
                // view before bootstrapping.
                return own;
            }
            self.init(view);
        }

        // Observe: acknowledgement counting + decoding. A transiently
        // hidden peer yields no observation this instant; change counts
        // and zone state simply carry over.
        if let Some(peer_pos) = peer {
            self.tracker.observe(0, peer_pos);
            self.decode(peer_pos);
        }

        match self.phase {
            Phase::North => {
                // A non-rigid (shortened) landing can leave the robot east
                // or west of `H` even though the return phase has ended.
                // Finish the landing first: a lateral offset reads as a
                // signal zone to the peer, so neither walking nor a fresh
                // excursion is safe until back on `H`. Restarting the
                // acknowledgement count at each correction keeps the
                // "peer saw me on H between excursions" argument intact.
                let lateral = (own - self.home.expect("initialized")).dot(self.east);
                if lateral.abs() > self.zone_tol {
                    self.tracker.reset();
                    return own - self.east * lateral;
                }
                if self.tracker.changed_at_least(0, 2) {
                    if let Some(bit) = self.outgoing.dequeue() {
                        // Start an excursion.
                        self.bits_sent += 1;
                        if matches!(self.policy, DriftPolicy::AlternateContract { .. }) {
                            self.north_sign = -self.north_sign;
                        }
                        self.tracker.reset();
                        self.phase = Phase::Out(bit);
                        let step = self.take_step();
                        return own + self.out_dir(bit) * step;
                    }
                }
                // Keep walking the horizon (Remark 4.3: always move).
                let step = self.take_step();
                own + self.north * (self.north_sign * step)
            }
            Phase::Out(bit) => {
                if self.tracker.changed_at_least(0, 2) {
                    // Acknowledged: head back to H.
                    self.phase = Phase::Return(bit);
                    return self.return_move(own, bit);
                }
                let step = self.take_step();
                own + self.out_dir(bit) * step
            }
            Phase::Return(bit) => self.return_move(own, bit),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stigmergy_robots::Engine;
    use stigmergy_scheduler::{FairAsync, RoundRobin, Scripted, SingleActive, WakeAllFirst};

    fn engine<S: stigmergy_scheduler::Schedule + 'static>(
        schedule: S,
        policy: DriftPolicy,
        frame_seed: u64,
    ) -> Engine<Async2> {
        Engine::builder()
            .positions([Point::new(0.0, 0.0), Point::new(16.0, 0.0)])
            .protocols([Async2::new(policy), Async2::new(policy)])
            .schedule(WakeAllFirst::new(schedule))
            .frame_seed(frame_seed)
            .build()
            .unwrap()
    }

    #[test]
    fn delivery_under_fair_async() {
        let mut e = engine(FairAsync::new(7, 0.5, 8), DriftPolicy::Diverge, 1);
        e.protocol_mut(0).send(b"async!");
        let out = e
            .run_until(20_000, |e| !e.protocol(1).inbox().is_empty())
            .unwrap();
        assert!(out.satisfied, "not delivered");
        assert_eq!(e.protocol(1).inbox()[0], b"async!".to_vec());
    }

    #[test]
    fn delivery_under_single_active_adversary() {
        // The harshest fair scheduler: one robot at a time.
        let mut e = engine(SingleActive::new(3, 16), DriftPolicy::Diverge, 2);
        e.protocol_mut(0).send(b"1@z");
        let out = e
            .run_until(60_000, |e| !e.protocol(1).inbox().is_empty())
            .unwrap();
        assert!(out.satisfied);
        assert_eq!(e.protocol(1).inbox()[0], b"1@z".to_vec());
    }

    #[test]
    fn duplex_under_round_robin() {
        let mut e = engine(RoundRobin, DriftPolicy::Diverge, 3);
        e.protocol_mut(0).send(b"fwd");
        e.protocol_mut(1).send(b"rev");
        let out = e
            .run_until(40_000, |e| {
                !e.protocol(0).inbox().is_empty() && !e.protocol(1).inbox().is_empty()
            })
            .unwrap();
        assert!(out.satisfied);
        assert_eq!(e.protocol(1).inbox()[0], b"fwd".to_vec());
        assert_eq!(e.protocol(0).inbox()[0], b"rev".to_vec());
    }

    #[test]
    fn fig5_bit_streams() {
        // Fig. 5: r sends "001…", r′ sends "0…" — drive raw bits and check
        // both decoded streams.
        let mut e = engine(FairAsync::new(21, 0.6, 8), DriftPolicy::Diverge, 4);
        e.protocol_mut(0)
            .send_raw(&stigmergy_coding::BitString::parse("001").unwrap());
        e.protocol_mut(1)
            .send_raw(&stigmergy_coding::BitString::parse("0").unwrap());
        let out = e
            .run_until(20_000, |e| {
                e.protocol(1).decoded_bits().len() >= 3 && !e.protocol(0).decoded_bits().is_empty()
            })
            .unwrap();
        assert!(out.satisfied);
        assert_eq!(
            &e.protocol(1).decoded_bits()[..3],
            &[Bit::Zero, Bit::Zero, Bit::One]
        );
        assert_eq!(&e.protocol(0).decoded_bits()[..1], &[Bit::Zero]);
    }

    #[test]
    fn many_seeds_never_corrupt() {
        for seed in 0..8u64 {
            let mut e = engine(
                FairAsync::new(seed, 0.4, 10),
                DriftPolicy::Diverge,
                50 + seed,
            );
            e.protocol_mut(0).send(&[seed as u8, 0x5A]);
            let out = e
                .run_until(40_000, |e| !e.protocol(1).inbox().is_empty())
                .unwrap();
            assert!(out.satisfied, "seed {seed}");
            assert_eq!(e.protocol(1).inbox()[0], vec![seed as u8, 0x5A]);
        }
    }

    #[test]
    fn diverge_policy_drifts_apart() {
        let mut e = engine(FairAsync::new(5, 0.5, 8), DriftPolicy::Diverge, 5);
        e.protocol_mut(0).send(b"drift");
        e.run_until(20_000, |e| !e.protocol(1).inbox().is_empty())
            .unwrap();
        // The robots walked away from their homes along H.
        assert!(
            e.trace().max_drift() > 4.0,
            "drift {}",
            e.trace().max_drift()
        );
    }

    #[test]
    fn alternate_contract_bounds_drift() {
        let mut e = engine(
            FairAsync::new(5, 0.5, 8),
            DriftPolicy::AlternateContract { x: 2.0 },
            6,
        );
        e.protocol_mut(0).send(b"X");
        let out = e
            .run_until(40_000, |e| !e.protocol(1).inbox().is_empty())
            .unwrap();
        assert!(out.satisfied);
        assert_eq!(e.protocol(1).inbox()[0], b"X".to_vec());
        // Total travel per robot ≤ base·x/(x−1) = 2·(d0/8) = d0/4 = 4.
        assert!(
            e.trace().max_drift() <= 4.0 + 1e-6,
            "drift {}",
            e.trace().max_drift()
        );
        // And they never met.
        assert!(e.trace().min_pairwise_distance() >= 8.0 - 1e-6);
    }

    #[test]
    #[should_panic(expected = "exceed 1")]
    fn bad_contraction_rejected() {
        let _ = Async2::new(DriftPolicy::AlternateContract { x: 1.0 });
    }

    #[test]
    fn idle_robots_still_move() {
        // Remark 4.3: an active robot always moves.
        let mut e = engine(RoundRobin, DriftPolicy::Diverge, 7);
        e.run(50).unwrap();
        assert!(e.trace().move_count(0) > 0);
        assert!(e.trace().move_count(1) > 0);
        assert!(e.protocol(0).is_drained());
    }

    #[test]
    fn adversarial_scripted_schedule() {
        // Long one-sided bursts: robot 1 wakes 1 instant of every 10.
        let script: Vec<Vec<usize>> = (0..10)
            .map(|k| if k == 9 { vec![1] } else { vec![0] })
            .collect();
        let mut e = engine(Scripted::new(script), DriftPolicy::Diverge, 8);
        e.protocol_mut(0).send(b"burst");
        let out = e
            .run_until(80_000, |e| !e.protocol(1).inbox().is_empty())
            .unwrap();
        assert!(out.satisfied);
        assert_eq!(e.protocol(1).inbox()[0], b"burst".to_vec());
    }

    #[test]
    fn current_step_reports_contraction() {
        let mut e = engine(RoundRobin, DriftPolicy::AlternateContract { x: 2.0 }, 9);
        e.step().unwrap();
        let s0 = e.protocol(0).current_step();
        e.run(20).unwrap();
        assert!(e.protocol(0).current_step() < s0);
        assert!(e.protocol(0).current_step() >= e.protocol(0).base_step * MIN_SCALE);
    }
}
