//! Naming mechanisms: total orders over robots derived from observations.
//!
//! One-to-one communication needs to *address* a robot. The paper gives
//! three mechanisms, in decreasing order of assumed capabilities:
//!
//! * **ID order** (§3.2) — identified robots: rank by observable ID.
//! * **Lexicographic order** (§3.3) — anonymous robots *with sense of
//!   direction*: rank positions by the shared axes. Private frames differ
//!   only by translation and positive scale, which preserve the order.
//! * **SEC radial order** (§3.4, Fig. 4) — anonymous robots with chirality
//!   only: compute the (unique) smallest enclosing circle with centre `O`;
//!   an observer `r`'s *horizon* is the ray from `O` through `r`; robots are
//!   ranked by clockwise sweep from that ray, ties broken by distance from
//!   `O`. The labelling is observer-relative, but every robot can compute
//!   every other robot's labelling — which is all the decoders need.
//!
//! The module also provides the Fig. 3 impossibility witness:
//! [`rotational_symmetries`] detects configurations whose symmetry rules
//! out any *common* deterministic naming without sense of direction.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use stigmergy_geometry::{smallest_enclosing_circle, Angle, Point, Tolerance};
use stigmergy_robots::VisibleId;

/// Errors from naming construction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NamingError {
    /// Two robots share a position (or project identically), so no total
    /// order exists.
    AmbiguousPositions {
        /// First tied robot (input index).
        first: usize,
        /// Second tied robot (input index).
        second: usize,
    },
    /// A robot sits exactly at the SEC centre: its horizon ray is
    /// undefined. The paper implicitly excludes this degenerate
    /// configuration.
    RobotAtSecCenter {
        /// The offending robot (input index).
        robot: usize,
    },
    /// The underlying geometry failed (e.g. an empty cohort).
    Geometry(stigmergy_geometry::GeometryError),
}

impl fmt::Display for NamingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NamingError::AmbiguousPositions { first, second } => {
                write!(f, "robots {first} and {second} cannot be ordered")
            }
            NamingError::RobotAtSecCenter { robot } => {
                write!(f, "robot {robot} sits at the SEC centre; horizon undefined")
            }
            NamingError::Geometry(e) => write!(f, "geometry error: {e}"),
        }
    }
}

impl Error for NamingError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NamingError::Geometry(e) => Some(e),
            _ => None,
        }
    }
}

impl From<stigmergy_geometry::GeometryError> for NamingError {
    fn from(e: stigmergy_geometry::GeometryError) -> Self {
        NamingError::Geometry(e)
    }
}

/// A bijection between robot input indices and labels `0..n`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Labeling {
    /// `by_label[l]` = input index of the robot labelled `l`.
    by_label: Vec<usize>,
    /// `label_of[i]` = label of input index `i`.
    label_of: Vec<usize>,
}

impl Labeling {
    fn from_order(order: Vec<usize>) -> Self {
        let mut label_of = vec![0usize; order.len()];
        for (label, &idx) in order.iter().enumerate() {
            label_of[idx] = label;
        }
        Self {
            by_label: order,
            label_of,
        }
    }

    /// The input index carrying `label`.
    #[must_use]
    pub fn index_of(&self, label: usize) -> Option<usize> {
        self.by_label.get(label).copied()
    }

    /// The label of input index `i`.
    #[must_use]
    pub fn label_of(&self, i: usize) -> Option<usize> {
        self.label_of.get(i).copied()
    }

    /// Number of robots labelled.
    #[must_use]
    pub fn len(&self) -> usize {
        self.by_label.len()
    }

    /// Whether the labelling is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.by_label.is_empty()
    }
}

/// Ranks identified robots by their observable IDs (§3.2).
///
/// Label 0 is the smallest ID.
///
/// # Errors
///
/// Returns [`NamingError::AmbiguousPositions`] if two IDs are equal (the
/// model guarantees distinct IDs; duplicated input is a caller bug surfaced
/// as an error rather than UB).
pub fn label_by_id(ids: &[VisibleId]) -> Result<Labeling, NamingError> {
    let mut order: Vec<usize> = (0..ids.len()).collect();
    order.sort_by_key(|&i| ids[i]);
    for w in order.windows(2) {
        if ids[w[0]] == ids[w[1]] {
            return Err(NamingError::AmbiguousPositions {
                first: w[0].min(w[1]),
                second: w[0].max(w[1]),
            });
        }
    }
    Ok(Labeling::from_order(order))
}

/// Ranks anonymous robots by lexicographic position order (§3.3).
///
/// Requires sense of direction: all observers' frames share axes up to
/// translation and positive scale, under which `(x, y)` lexicographic
/// order is invariant — so every robot computes the *same* labelling.
///
/// # Errors
///
/// Returns [`NamingError::AmbiguousPositions`] if two robots coincide.
pub fn label_by_lex(positions: &[Point]) -> Result<Labeling, NamingError> {
    let tol = Tolerance::default();
    let mut order: Vec<usize> = (0..positions.len()).collect();
    order.sort_by(|&a, &b| {
        let (pa, pb) = (positions[a], positions[b]);
        pa.x.partial_cmp(&pb.x)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(pa.y.partial_cmp(&pb.y).unwrap_or(std::cmp::Ordering::Equal))
    });
    for w in order.windows(2) {
        if positions[w[0]].approx_eq(positions[w[1]]) {
            let _ = tol;
            return Err(NamingError::AmbiguousPositions {
                first: w[0].min(w[1]),
                second: w[0].max(w[1]),
            });
        }
    }
    Ok(Labeling::from_order(order))
}

/// Ranks anonymous robots by the SEC radial sweep relative to `observer`
/// (§3.4, Fig. 4).
///
/// Robots are numbered following the radii of the SEC in the clockwise
/// direction, starting from the observer's horizon (the ray from the SEC
/// centre `O` through the observer); robots on the same radius are
/// numbered by increasing distance from `O`. Note the observer is not
/// necessarily labelled 0 — robots between `O` and the observer on its own
/// radius come first, exactly as the paper remarks.
///
/// # Errors
///
/// * [`NamingError::RobotAtSecCenter`] if any robot (in particular the
///   observer) sits at `O`.
/// * [`NamingError::AmbiguousPositions`] if two robots coincide.
/// * [`NamingError::Geometry`] for an empty cohort or bad index.
pub fn label_by_sec(positions: &[Point], observer: usize) -> Result<Labeling, NamingError> {
    if observer >= positions.len() {
        return Err(NamingError::Geometry(
            stigmergy_geometry::GeometryError::IndexOutOfRange {
                index: observer,
                len: positions.len(),
            },
        ));
    }
    let sec = smallest_enclosing_circle(positions)?;
    let center = sec.center;
    let tol = Tolerance::default();

    // Horizon direction: from O outward through the observer.
    let horizon = positions[observer] - center;
    if tol.zero(horizon.norm()) {
        return Err(NamingError::RobotAtSecCenter { robot: observer });
    }

    // (clockwise angle from horizon, distance from O) per robot.
    let mut keys: Vec<(f64, f64, usize)> = Vec::with_capacity(positions.len());
    for (i, &p) in positions.iter().enumerate() {
        let v = p - center;
        if tol.zero(v.norm()) {
            return Err(NamingError::RobotAtSecCenter { robot: i });
        }
        let mut angle = Angle::clockwise_from(horizon, v)?.radians();
        // Robots on the horizon itself must sort first: snap near-2π to 0.
        if (std::f64::consts::TAU - angle) < 1e-9 {
            angle = 0.0;
        }
        keys.push((angle, v.norm(), i));
    }
    keys.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
    });
    for w in keys.windows(2) {
        if positions[w[0].2].approx_eq(positions[w[1].2]) {
            return Err(NamingError::AmbiguousPositions {
                first: w[0].2.min(w[1].2),
                second: w[0].2.max(w[1].2),
            });
        }
    }
    Ok(Labeling::from_order(
        keys.into_iter().map(|k| k.2).collect(),
    ))
}

/// Finds the non-trivial rotational symmetries of a configuration about
/// its SEC centre: angles `θ ∈ (0, 2π)` whose rotation maps the point set
/// onto itself.
///
/// A configuration with such a symmetry admits **no** deterministic common
/// naming for robots with chirality only — the Fig. 3 impossibility. (The
/// per-observer SEC naming sidesteps this by being observer-relative.)
///
/// # Errors
///
/// Propagates geometry failures (empty input).
pub fn rotational_symmetries(positions: &[Point]) -> Result<Vec<f64>, NamingError> {
    let sec = smallest_enclosing_circle(positions)?;
    let center = sec.center;
    let n = positions.len();
    if n < 2 {
        return Ok(Vec::new());
    }
    let tol = 1e-6;
    let mut found = Vec::new();
    // Candidate angles: those mapping point 0 onto some point j.
    let v0 = positions[0] - center;
    if v0.norm() < tol {
        // Point at the centre: rotation candidates come from any other pair;
        // for simplicity test the divisors of the full turn up to n.
        for k in 1..n {
            let theta = std::f64::consts::TAU * (k as f64) / (n as f64);
            if is_symmetry(positions, center, theta, tol) {
                found.push(theta);
            }
        }
        return Ok(found);
    }
    for j in 0..n {
        let vj = positions[j] - center;
        if vj.norm() < tol || (v0.norm() - vj.norm()).abs() > tol {
            continue;
        }
        let theta = Angle::clockwise_from(vj, v0)
            .map(Angle::radians)
            .unwrap_or(0.0);
        if theta < 1e-9 || (std::f64::consts::TAU - theta) < 1e-9 {
            continue;
        }
        if is_symmetry(positions, center, theta, tol) {
            found.push(theta);
        }
    }
    found.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    found.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
    Ok(found)
}

/// Quantization grid for [`election_signature`]: normalized distance
/// ratios are snapped to `1 / SIGNATURE_GRID` buckets so that every
/// observer — whose private frame differs by translation, rotation and
/// positive scale, perturbing ratios only at the 1e-15 level — computes
/// the *same* signature for the same robot.
const SIGNATURE_GRID: f64 = (1u64 << 30) as f64;

/// A similarity-invariant signature of `robot`'s place in the
/// configuration, for symmetry-aware leader election.
///
/// The signature is an FNV-1a hash of the sorted, diameter-normalized,
/// quantized distances from `robot` to every other robot. Distance
/// ratios are invariant under translation, rotation, reflection and
/// uniform scaling, so every observer computes the same value from its
/// own private frame — no shared coordinate system needed.
///
/// Two robots get the *same* signature exactly when the configuration
/// cannot distinguish them by distances — in particular whenever a
/// non-trivial [`rotational_symmetries`] orbit maps one onto the other
/// (the degenerate all-robots-on-a-regular-ring SEC configuration is the
/// canonical case). A leader election over signatures must treat a
/// duplicated minimum as a deterministic *rejection*: electing either
/// twin would require breaking a symmetry that, per Fig. 3, no
/// deterministic chirality-only algorithm can break.
///
/// # Errors
///
/// * [`NamingError::Geometry`] for an empty cohort or out-of-range index.
/// * [`NamingError::AmbiguousPositions`] when all robots coincide (no
///   diameter to normalize by).
pub fn election_signature(positions: &[Point], robot: usize) -> Result<u64, NamingError> {
    if positions.is_empty() {
        return Err(NamingError::Geometry(
            stigmergy_geometry::GeometryError::TooFewPoints { needed: 1, got: 0 },
        ));
    }
    if robot >= positions.len() {
        return Err(NamingError::Geometry(
            stigmergy_geometry::GeometryError::IndexOutOfRange {
                index: robot,
                len: positions.len(),
            },
        ));
    }
    let n = positions.len();
    let mut diameter = 0.0f64;
    for i in 0..n {
        for j in (i + 1)..n {
            diameter = diameter.max(positions[i].distance(positions[j]));
        }
    }
    if n > 1 && diameter <= 0.0 {
        return Err(NamingError::AmbiguousPositions {
            first: 0,
            second: 1,
        });
    }
    let mut quantized: Vec<u64> = (0..n)
        .filter(|&j| j != robot)
        .map(|j| {
            let ratio = positions[robot].distance(positions[j]) / diameter;
            (ratio * SIGNATURE_GRID).round() as u64
        })
        .collect();
    quantized.sort_unstable();
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for q in quantized {
        for byte in q.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    Ok(hash)
}

/// The [`election_signature`] of every robot, in input order.
///
/// # Errors
///
/// Same conditions as [`election_signature`].
pub fn election_signatures(positions: &[Point]) -> Result<Vec<u64>, NamingError> {
    (0..positions.len())
        .map(|i| election_signature(positions, i))
        .collect()
}

/// Whether rotating every point clockwise by `theta` about `center` maps
/// the set onto itself.
fn is_symmetry(positions: &[Point], center: Point, theta: f64, tol: f64) -> bool {
    positions.iter().all(|&p| {
        let rotated = center + (p - center).rotated(-theta);
        positions.iter().any(|&q| q.distance(rotated) < tol)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{PI, TAU};
    use stigmergy_geometry::Vec2;

    #[test]
    fn id_order_ranks_by_id() {
        let ids = [VisibleId::new(30), VisibleId::new(10), VisibleId::new(20)];
        let l = label_by_id(&ids).unwrap();
        assert_eq!(l.len(), 3);
        assert_eq!(l.index_of(0), Some(1)); // id 10
        assert_eq!(l.index_of(1), Some(2)); // id 20
        assert_eq!(l.index_of(2), Some(0)); // id 30
        assert_eq!(l.label_of(0), Some(2));
        assert_eq!(l.label_of(9), None);
        assert_eq!(l.index_of(9), None);
        assert!(!l.is_empty());
    }

    #[test]
    fn duplicate_ids_rejected() {
        let ids = [VisibleId::new(5), VisibleId::new(5)];
        assert!(matches!(
            label_by_id(&ids),
            Err(NamingError::AmbiguousPositions {
                first: 0,
                second: 1
            })
        ));
    }

    #[test]
    fn lex_order_is_x_then_y() {
        let pts = [
            Point::new(1.0, 5.0),
            Point::new(0.0, 9.0),
            Point::new(1.0, -2.0),
        ];
        let l = label_by_lex(&pts).unwrap();
        assert_eq!(l.index_of(0), Some(1));
        assert_eq!(l.index_of(1), Some(2));
        assert_eq!(l.index_of(2), Some(0));
    }

    #[test]
    fn lex_order_invariant_under_translation_and_scale() {
        // The §3.3 argument: frames share axes; translation + positive
        // scale preserve the order.
        let pts = [
            Point::new(0.3, 1.9),
            Point::new(-1.2, 0.4),
            Point::new(2.5, -0.7),
            Point::new(0.3, -2.1),
        ];
        let base = label_by_lex(&pts).unwrap();
        for (dx, dy, s) in [(10.0, -5.0, 1.0), (0.0, 0.0, 3.7), (-2.0, 8.0, 0.2)] {
            let moved: Vec<Point> = pts
                .iter()
                .map(|p| Point::new((p.x + dx) * s, (p.y + dy) * s))
                .collect();
            let l = label_by_lex(&moved).unwrap();
            assert_eq!(l, base, "dx={dx} dy={dy} s={s}");
        }
    }

    #[test]
    fn lex_rejects_coincident() {
        let pts = [Point::ORIGIN, Point::ORIGIN];
        assert!(matches!(
            label_by_lex(&pts),
            Err(NamingError::AmbiguousPositions { .. })
        ));
    }

    /// Fig. 4-style layout: observer on a ring with others.
    fn ring(n: usize, radius: f64) -> Vec<Point> {
        (0..n)
            .map(|k| {
                let theta = TAU * (k as f64) / (n as f64);
                Point::new(radius * theta.sin(), radius * theta.cos())
            })
            .collect()
    }

    #[test]
    fn sec_order_starts_at_observer_radius() {
        // Four robots on a circle: observer 0 at top (North). Clockwise
        // sweep: 0 (self), 1 (East), 2 (South), 3 (West).
        let pts = ring(4, 2.0);
        let l = label_by_sec(&pts, 0).unwrap();
        assert_eq!(l.index_of(0), Some(0));
        assert_eq!(l.index_of(1), Some(1));
        assert_eq!(l.index_of(2), Some(2));
        assert_eq!(l.index_of(3), Some(3));
        // From observer 1's horizon the order rotates.
        let l1 = label_by_sec(&pts, 1).unwrap();
        assert_eq!(l1.index_of(0), Some(1));
        assert_eq!(l1.index_of(1), Some(2));
        assert_eq!(l1.index_of(2), Some(3));
        assert_eq!(l1.index_of(3), Some(0));
    }

    #[test]
    fn sec_order_breaks_radius_ties_by_distance() {
        // Observer at the rim, another robot between O and the observer on
        // the same radius: the inner robot gets the smaller label (the
        // paper: "r is not necessarily labeled 0").
        let pts = vec![
            Point::new(0.0, 2.0),  // 0: observer at rim (North)
            Point::new(0.0, 1.0),  // 1: same radius, nearer O
            Point::new(0.0, -2.0), // 2: South rim (pins the SEC)
            Point::new(1.9, 0.0),  // 3: East-ish
        ];
        let l = label_by_sec(&pts, 0).unwrap();
        assert_eq!(l.label_of(1), Some(0), "inner robot first");
        assert_eq!(l.label_of(0), Some(1), "observer second");
        assert_eq!(l.label_of(3), Some(2), "east next (clockwise)");
        assert_eq!(l.label_of(2), Some(3));
    }

    #[test]
    fn sec_order_is_chirality_invariant() {
        // Rotating the whole configuration (all observers' frames rotate
        // with the world) must not change any observer's labelling.
        let pts = vec![
            Point::new(0.1, 1.9),
            Point::new(1.3, -0.4),
            Point::new(-1.6, -0.9),
            Point::new(0.4, 0.2),
            Point::new(-0.3, 1.1),
        ];
        for obs in 0..pts.len() {
            let base = label_by_sec(&pts, obs).unwrap();
            for theta in [0.7, 2.1, 4.4] {
                let rotated: Vec<Point> = pts
                    .iter()
                    .map(|p| Point::from(p.to_vec().rotated(theta)))
                    .collect();
                let l = label_by_sec(&rotated, obs).unwrap();
                assert_eq!(l, base, "observer {obs} rotation {theta}");
            }
            // And under translation + scale.
            let mapped: Vec<Point> = pts
                .iter()
                .map(|p| Point::new(3.0 * p.x + 10.0, 3.0 * p.y - 4.0))
                .collect();
            assert_eq!(label_by_sec(&mapped, obs).unwrap(), base);
        }
    }

    #[test]
    fn every_observer_can_compute_every_labelling() {
        // The redundancy property: labellings depend only on positions and
        // the observer *index*, which all robots share knowledge of.
        let pts = ring(6, 3.0);
        for obs in 0..6 {
            let l = label_by_sec(&pts, obs).unwrap();
            assert_eq!(l.len(), 6);
            // Labels are a permutation.
            let mut seen = [false; 6];
            for i in 0..6 {
                seen[l.label_of(i).unwrap()] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn observer_at_sec_center_rejected() {
        let pts = vec![
            Point::ORIGIN, // dead centre
            Point::new(0.0, 2.0),
            Point::new(0.0, -2.0),
        ];
        assert!(matches!(
            label_by_sec(&pts, 0),
            Err(NamingError::RobotAtSecCenter { robot: 0 })
        ));
        // Even another observer fails: labels must cover *all* robots.
        assert!(matches!(
            label_by_sec(&pts, 1),
            Err(NamingError::RobotAtSecCenter { robot: 0 })
        ));
    }

    #[test]
    fn sec_bad_observer_index() {
        let pts = ring(3, 1.0);
        assert!(matches!(
            label_by_sec(&pts, 7),
            Err(NamingError::Geometry(_))
        ));
    }

    /// The Fig. 3 configuration: three pairs of robots arranged with
    /// 180° rotational symmetry.
    fn fig3_symmetric() -> Vec<Point> {
        let base = [
            Point::new(1.0, 0.2),
            Point::new(0.4, 1.3),
            Point::new(-0.8, 0.9),
        ];
        let mut pts = base.to_vec();
        pts.extend(base.iter().map(|p| Point::new(-p.x, -p.y)));
        pts
    }

    #[test]
    fn fig3_symmetry_detected() {
        let pts = fig3_symmetric();
        let syms = rotational_symmetries(&pts).unwrap();
        assert_eq!(syms.len(), 1, "exactly the half turn: {syms:?}");
        assert!((syms[0] - PI).abs() < 1e-6);
    }

    #[test]
    fn asymmetric_configuration_has_no_symmetry() {
        let pts = vec![
            Point::new(0.0, 2.0),
            Point::new(1.7, -0.3),
            Point::new(-1.1, -1.2),
            Point::new(0.2, 0.4),
        ];
        assert!(rotational_symmetries(&pts).unwrap().is_empty());
    }

    #[test]
    fn regular_ring_has_full_symmetry_group() {
        let pts = ring(5, 2.0);
        let syms = rotational_symmetries(&pts).unwrap();
        assert_eq!(syms.len(), 4); // rotations by 2πk/5, k=1..4
    }

    #[test]
    fn degenerate_symmetry_inputs() {
        assert!(rotational_symmetries(&[Point::ORIGIN]).unwrap().is_empty());
        assert!(matches!(
            rotational_symmetries(&[]),
            Err(NamingError::Geometry(_))
        ));
    }

    #[test]
    fn symmetric_config_breaks_common_naming_but_not_sec_naming() {
        // In the Fig. 3 configuration the SEC naming still works — it is
        // observer-relative. Two antipodal observers get *different*
        // labellings, which is exactly why it evades the impossibility.
        let pts = fig3_symmetric();
        let l0 = label_by_sec(&pts, 0).unwrap();
        let l3 = label_by_sec(&pts, 3).unwrap();
        // Antipodal observers label themselves the same rank…
        assert_eq!(l0.label_of(0), l3.label_of(3));
        // …and each other symmetric ranks.
        assert_eq!(l0.label_of(3), l3.label_of(0));
    }

    #[test]
    fn signatures_distinct_on_asymmetric_configurations() {
        let pts = vec![
            Point::new(0.0, 2.0),
            Point::new(1.7, -0.3),
            Point::new(-1.1, -1.2),
            Point::new(0.2, 0.4),
        ];
        assert!(rotational_symmetries(&pts).unwrap().is_empty());
        let sigs = election_signatures(&pts).unwrap();
        let mut sorted = sigs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), pts.len(), "collision on asymmetric config");
    }

    #[test]
    fn signatures_collide_exactly_on_symmetry_orbits() {
        // Regular ring: full rotation group, every robot equivalent —
        // all signatures identical. This is the degenerate
        // all-robots-on-SEC configuration leader election must reject.
        let pts = ring(5, 2.0);
        assert!(!rotational_symmetries(&pts).unwrap().is_empty());
        let sigs = election_signatures(&pts).unwrap();
        assert!(sigs.windows(2).all(|w| w[0] == w[1]), "{sigs:?}");

        // Fig. 3: half-turn symmetry pairs robots i and i+3.
        let pts = fig3_symmetric();
        let sigs = election_signatures(&pts).unwrap();
        for i in 0..3 {
            assert_eq!(sigs[i], sigs[i + 3], "antipodal twins must tie");
        }
        // A symmetric configuration has no unique minimum to elect.
        let min = *sigs.iter().min().unwrap();
        assert!(sigs.iter().filter(|&&s| s == min).count() > 1);
    }

    #[test]
    fn signatures_are_similarity_invariant() {
        let pts = vec![
            Point::new(0.1, 1.9),
            Point::new(1.3, -0.4),
            Point::new(-1.6, -0.9),
            Point::new(0.4, 0.2),
        ];
        let base = election_signatures(&pts).unwrap();
        for (theta, s, dx, dy) in [(0.7, 3.0, 10.0, -4.0), (2.1, 0.25, -1.0, 8.0)] {
            let mapped: Vec<Point> = pts
                .iter()
                .map(|p| {
                    let v = p.to_vec().rotated(theta);
                    Point::new(v.x * s + dx, v.y * s + dy)
                })
                .collect();
            assert_eq!(election_signatures(&mapped).unwrap(), base);
        }
    }

    #[test]
    fn signature_degenerate_inputs() {
        assert!(matches!(
            election_signature(&[], 0),
            Err(NamingError::Geometry(_))
        ));
        assert!(matches!(
            election_signature(&[Point::ORIGIN], 3),
            Err(NamingError::Geometry(_))
        ));
        // A single robot has a well-defined (empty-distance-list) signature.
        assert!(election_signature(&[Point::ORIGIN], 0).is_ok());
        // All-coincident robots have no diameter to normalize by.
        assert!(matches!(
            election_signature(&[Point::ORIGIN, Point::ORIGIN], 0),
            Err(NamingError::AmbiguousPositions { .. })
        ));
    }

    #[test]
    fn error_display() {
        let e = NamingError::RobotAtSecCenter { robot: 2 };
        assert!(e.to_string().contains("SEC"));
        let g: NamingError = stigmergy_geometry::GeometryError::ZeroDirection.into();
        assert!(Error::source(&g).is_some());
        let _ = Vec2::ZERO; // silence unused import on some cfgs
    }
}
