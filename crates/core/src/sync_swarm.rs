//! Protocols P2–P4 (§3.2–§3.4): synchronous one-to-one communication in a
//! swarm of `n ≥ 2` robots.
//!
//! All three share the same machinery and differ only in the naming
//! mechanism used to label keyboard slices:
//!
//! * [`SyncRouted`] (§3.2) — observable-ID order; requires identified
//!   robots with sense of direction;
//! * [`SyncAnonDir`] (§3.3) — lexicographic position order; anonymous
//!   robots with sense of direction;
//! * [`SyncAnonChir`] (§3.4) — observer-relative SEC radial order;
//!   anonymous robots with chirality only.
//!
//! At `t0` every robot runs the preprocessing of [`SwarmGeometry`]: Voronoi
//! granulars (collision avoidance) sliced into `n` labelled diameters (the
//! routing keyboard). Signal instants and return instants then alternate
//! exactly as in [`Sync2`](crate::sync2::Sync2): to send a bit to the robot
//! labelled `j`, move out on diameter `j` — Northern/Eastern side for `0`,
//! Southern/Western for `1` — and step back home on the next instant.
//!
//! Every robot decodes every excursion (the redundancy property); messages
//! addressed to a robot land in its inbox, the rest in its overheard log.
//! Sending to *yourself* is reinterpreted as **broadcast** (§5's
//! one-to-all): your own slice is otherwise meaningless, and every observer
//! can detect it.

use crate::decode::{InboxEntry, MessageStreams, OverheardEntry};
use crate::preprocess::{NamingScheme, SwarmGeometry};
use std::collections::VecDeque;
use stigmergy_coding::bits::BitQueue;
use stigmergy_coding::framing::encode_frame;
use stigmergy_geometry::granular::{SliceSide, SliceZone};
use stigmergy_geometry::Point;
use stigmergy_robots::{MovementProtocol, View, VisibleId};

/// How a queued message names its destination.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Dest {
    /// A label under this robot's naming (resolvable once geometry exists).
    Label(usize),
    /// A visible ID (identified systems only).
    Id(VisibleId),
    /// Everyone ("send to self" on the wire).
    Broadcast,
}

/// The fraction of the granular radius used for signal excursions.
const SIGNAL_FRACTION: f64 = 0.5;

/// The synchronous swarm protocol, parameterized by naming scheme.
///
/// Use the constructors [`SyncSwarm::routed`],
/// [`SyncSwarm::anonymous_with_direction`], [`SyncSwarm::anonymous`] — or
/// the matching type aliases.
#[derive(Debug, Clone, Default)]
pub struct SyncSwarm {
    scheme: Option<NamingScheme>,
    counter: u64,
    geometry: Option<SwarmGeometry>,
    pending: VecDeque<(Dest, Vec<u8>)>,
    current: Option<(usize, BitQueue)>,
    streams: MessageStreams,
    signals_sent: u64,
    init_error: Option<crate::CoreError>,
}

/// P2: identified robots with sense of direction (§3.2).
pub type SyncRouted = SyncSwarm;

/// P3: anonymous robots with sense of direction (§3.3).
pub type SyncAnonDir = SyncSwarm;

/// P4: anonymous robots with chirality only (§3.4).
pub type SyncAnonChir = SyncSwarm;

impl SyncSwarm {
    fn with_scheme(scheme: NamingScheme) -> Self {
        Self {
            scheme: Some(scheme),
            ..Self::default()
        }
    }

    /// P2 (§3.2): route by observable-ID order.
    #[must_use]
    pub fn routed() -> Self {
        Self::with_scheme(NamingScheme::ById)
    }

    /// P3 (§3.3): route by lexicographic position order.
    #[must_use]
    pub fn anonymous_with_direction() -> Self {
        Self::with_scheme(NamingScheme::ByLex)
    }

    /// P4 (§3.4): route by SEC radial order.
    #[must_use]
    pub fn anonymous() -> Self {
        Self::with_scheme(NamingScheme::BySec)
    }

    /// Queues a message for the robot labelled `dest_label` under this
    /// robot's naming.
    pub fn send_label(&mut self, dest_label: usize, payload: &[u8]) {
        self.pending
            .push_back((Dest::Label(dest_label), payload.to_vec()));
    }

    /// Queues a message for the robot with visible identifier `dest`
    /// (identified systems).
    pub fn send_id(&mut self, dest: VisibleId, payload: &[u8]) {
        self.pending.push_back((Dest::Id(dest), payload.to_vec()));
    }

    /// Queues a broadcast to every robot (§5 one-to-all).
    pub fn send_broadcast(&mut self, payload: &[u8]) {
        self.pending.push_back((Dest::Broadcast, payload.to_vec()));
    }

    /// Messages addressed to this robot, in arrival order.
    #[must_use]
    pub fn inbox(&self) -> &[InboxEntry] {
        self.streams.inbox()
    }

    /// Every message this robot decoded, including other pairs' traffic.
    #[must_use]
    pub fn overheard(&self) -> &[OverheardEntry] {
        self.streams.overheard()
    }

    /// The preprocessed geometry (available after the first activation).
    #[must_use]
    pub fn geometry(&self) -> Option<&SwarmGeometry> {
        self.geometry.as_ref()
    }

    /// Whether all queued traffic has been put on the wire.
    #[must_use]
    pub fn is_drained(&self) -> bool {
        self.pending.is_empty() && self.current.is_none()
    }

    /// Signal moves made so far.
    #[must_use]
    pub fn signals_sent(&self) -> u64 {
        self.signals_sent
    }

    /// A preprocessing failure, if the initial configuration was degenerate
    /// (e.g. a robot at the SEC centre under [`SyncSwarm::anonymous`]).
    /// Such a robot stays put forever; sessions surface this error.
    #[must_use]
    pub fn init_error(&self) -> Option<&crate::CoreError> {
        self.init_error.as_ref()
    }

    fn resolve_slice(&self, dest: &Dest) -> Option<usize> {
        let g = self.geometry.as_ref()?;
        let label = match dest {
            Dest::Label(l) => *l,
            Dest::Id(id) => {
                let home = (0..g.cohort()).find(|&h| g.id_of(h) == Some(*id))?;
                g.label_for(0, home)
            }
            // Broadcast: my own slice (label of self in my naming).
            Dest::Broadcast => g.label_for(0, 0),
        };
        if label >= g.cohort() {
            return None;
        }
        Some(g.slice_for_label(label))
    }

    fn decode_snapshot(&mut self, view: &View) {
        let Some(g) = self.geometry.as_ref() else {
            return;
        };
        for o in view.others() {
            let Some((home, zone)) = g.classify(o.position) else {
                continue;
            };
            if let SliceZone::OnSlice {
                slice,
                side,
                distance,
                deviation,
            } = zone
            {
                // Reject noise: a genuine signal is a substantial excursion
                // dead on a diameter.
                if distance > g.keyboard(home).radius() * 1e-6
                    && deviation <= g.keyboard(home).decode_tolerance()
                {
                    self.streams.on_signal(g, home, slice, side);
                }
            }
        }
    }
}

impl MovementProtocol for SyncSwarm {
    fn on_activate(&mut self, view: &View) -> Point {
        let c = self.counter;
        self.counter += 1;

        if self.geometry.is_none() && self.init_error.is_none() {
            let scheme = self.scheme.unwrap_or(NamingScheme::BySec);
            match SwarmGeometry::build(view, scheme, false) {
                Ok(g) => self.geometry = Some(g),
                Err(e) => self.init_error = Some(e),
            }
        }
        let Some(home) = self.geometry.as_ref().map(|g| g.home(0)) else {
            return view.own_position();
        };

        if c.is_multiple_of(2) {
            // Signal instant: put the next queued bit on the wire.
            if self.current.is_none() {
                while let Some((dest, payload)) = self.pending.pop_front() {
                    if let Some(slice) = self.resolve_slice(&dest) {
                        let mut q = BitQueue::new();
                        q.enqueue(&encode_frame(&payload));
                        self.current = Some((slice, q));
                        break;
                    }
                    // Unresolvable destination: drop (sessions validate
                    // destinations up front, so this is defensive).
                }
            }
            let Some((slice, q)) = self.current.as_mut() else {
                return home; // silent
            };
            let slice = *slice;
            let bit = q.dequeue().expect("current stream is never empty");
            let done = q.is_empty();
            if done {
                self.current = None;
            }
            self.signals_sent += 1;
            let g = self.geometry.as_ref().expect("geometry initialized");
            let side = SliceSide::from_bit(bit.as_bool());
            g.keyboard(0)
                .target(slice, side, SIGNAL_FRACTION)
                .unwrap_or(home)
        } else {
            // Return instant: the snapshot shows everyone's signal
            // excursions — decode them, then go home.
            self.decode_snapshot(view);
            home
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stigmergy_robots::{Capabilities, Engine};
    use stigmergy_scheduler::Synchronous;

    /// Builds an engine with `n` robots on a ring.
    fn ring_engine(
        n: usize,
        caps: Capabilities,
        proto: fn() -> SyncSwarm,
        seed: u64,
    ) -> Engine<SyncSwarm> {
        let positions: Vec<Point> = (0..n)
            .map(|k| {
                let theta = std::f64::consts::TAU * (k as f64) / (n as f64);
                // Slightly irregular ring: no robot at the SEC centre, no
                // symmetric degeneracies.
                let r = 10.0 + (k as f64) * 0.1;
                Point::new(r * theta.sin(), r * theta.cos())
            })
            .collect();
        Engine::builder()
            .positions(positions)
            .protocols((0..n).map(|_| proto()))
            .capabilities(caps)
            .schedule(Synchronous)
            .frame_seed(seed)
            .build()
            .unwrap()
    }

    /// The label of engine robot `target` as seen by engine robot
    /// `sender`, computed from the sender's own geometry via home
    /// matching in world space.
    fn label_of(e: &Engine<SyncSwarm>, sender: usize, target: usize) -> usize {
        let g = e.protocol(sender).geometry().expect("preprocessed");
        let world_home = e.trace().initial()[target];
        let local_home = e.frames()[sender].to_local(world_home);
        let home_idx = (0..g.cohort())
            .find(|&h| g.home(h).approx_eq(local_home))
            .expect("home present");
        g.label_for(0, home_idx)
    }

    fn deliver(
        e: &mut Engine<SyncSwarm>,
        sender: usize,
        target: usize,
        payload: &[u8],
        max_steps: u64,
    ) {
        // One warm-up step so geometry exists for label computation.
        e.step().unwrap();
        let label = label_of(e, sender, target);
        e.protocol_mut(sender).send_label(label, payload);
        let out = e
            .run_until(max_steps, |e| {
                e.protocol(target)
                    .inbox()
                    .iter()
                    .any(|m| m.payload == payload)
            })
            .unwrap();
        assert!(out.satisfied, "message not delivered in {max_steps} steps");
    }

    #[test]
    fn anon_dir_delivery() {
        let mut e = ring_engine(
            5,
            Capabilities::anonymous_with_direction(),
            SyncSwarm::anonymous_with_direction,
            11,
        );
        deliver(&mut e, 0, 3, b"hello 3", 600);
    }

    #[test]
    fn routed_delivery_by_id() {
        let mut e = ring_engine(
            4,
            Capabilities::identified_with_direction(),
            SyncSwarm::routed,
            12,
        );
        e.step().unwrap();
        let target_id = e.ids().unwrap()[2];
        e.protocol_mut(0).send_id(target_id, b"for id");
        let out = e
            .run_until(600, |e| !e.protocol(2).inbox().is_empty())
            .unwrap();
        assert!(out.satisfied);
        assert_eq!(e.protocol(2).inbox()[0].payload, b"for id");
    }

    #[test]
    fn chirality_only_delivery() {
        let mut e = ring_engine(6, Capabilities::anonymous(), SyncSwarm::anonymous, 13);
        deliver(&mut e, 1, 4, b"sec naming", 800);
    }

    #[test]
    fn chirality_only_with_wild_frames() {
        // Every robot's frame is rotated and scaled differently; SEC naming
        // must still route correctly.
        for seed in [100u64, 200, 300] {
            let mut e = ring_engine(5, Capabilities::anonymous(), SyncSwarm::anonymous, seed);
            deliver(&mut e, 2, 0, b"frame-proof", 800);
        }
    }

    #[test]
    fn concurrent_senders_do_not_interfere() {
        let mut e = ring_engine(
            4,
            Capabilities::anonymous_with_direction(),
            SyncSwarm::anonymous_with_direction,
            14,
        );
        e.step().unwrap();
        let l01 = label_of(&e, 0, 1);
        let l23 = label_of(&e, 2, 3);
        let l30 = label_of(&e, 3, 0);
        e.protocol_mut(0).send_label(l01, b"a->b");
        e.protocol_mut(2).send_label(l23, b"c->d");
        e.protocol_mut(3).send_label(l30, b"d->a");
        let out = e
            .run_until(800, |e| {
                !e.protocol(1).inbox().is_empty()
                    && !e.protocol(3).inbox().is_empty()
                    && !e.protocol(0).inbox().is_empty()
            })
            .unwrap();
        assert!(out.satisfied);
        assert_eq!(e.protocol(1).inbox()[0].payload, b"a->b");
        assert_eq!(e.protocol(3).inbox()[0].payload, b"c->d");
        assert_eq!(e.protocol(0).inbox()[0].payload, b"d->a");
    }

    #[test]
    fn everyone_overhears_everything() {
        let mut e = ring_engine(
            4,
            Capabilities::anonymous_with_direction(),
            SyncSwarm::anonymous_with_direction,
            15,
        );
        deliver(&mut e, 0, 1, b"secret", 600);
        // Robots 2 and 3 decoded the message too (fault-tolerance by
        // redundancy).
        for observer in [2usize, 3] {
            let heard = e.protocol(observer).overheard();
            assert!(
                heard.iter().any(|m| m.payload == b"secret"),
                "robot {observer} missed the traffic"
            );
        }
    }

    #[test]
    fn broadcast_reaches_all() {
        let mut e = ring_engine(
            5,
            Capabilities::anonymous_with_direction(),
            SyncSwarm::anonymous_with_direction,
            16,
        );
        e.step().unwrap();
        e.protocol_mut(2).send_broadcast(b"to all");
        let out = e
            .run_until(800, |e| {
                (0..5)
                    .filter(|&i| i != 2)
                    .all(|i| e.protocol(i).inbox().iter().any(|m| m.payload == b"to all"))
            })
            .unwrap();
        assert!(out.satisfied, "broadcast not delivered to everyone");
    }

    #[test]
    fn silence_when_idle() {
        let mut e = ring_engine(
            4,
            Capabilities::anonymous_with_direction(),
            SyncSwarm::anonymous_with_direction,
            17,
        );
        e.run(40).unwrap();
        for i in 0..4 {
            assert_eq!(e.trace().path_length(i), 0.0, "robot {i} moved while idle");
        }
    }

    #[test]
    fn robots_stay_inside_granulars() {
        let mut e = ring_engine(
            5,
            Capabilities::anonymous_with_direction(),
            SyncSwarm::anonymous_with_direction,
            18,
        );
        e.step().unwrap();
        let label = label_of(&e, 0, 2);
        e.protocol_mut(0).send_label(label, &[0xAB, 0xCD, 0xEF]);
        let homes = e.trace().initial().to_vec();
        // Granular radii in world units = half nearest-neighbour distance.
        let radii: Vec<f64> = (0..5)
            .map(|i| {
                (0..5)
                    .filter(|&j| j != i)
                    .map(|j| homes[i].distance(homes[j]))
                    .fold(f64::INFINITY, f64::min)
                    / 2.0
            })
            .collect();
        for _ in 0..200 {
            e.step().unwrap();
            for i in 0..5 {
                let d = homes[i].distance(e.positions()[i]);
                assert!(d <= radii[i] + 1e-9, "robot {i} left its granular");
            }
        }
    }

    #[test]
    fn degenerate_sec_reports_init_error() {
        // A robot exactly at the SEC centre breaks the chirality-only
        // naming; the protocol must fail gracefully, not panic.
        let mut e = Engine::builder()
            .positions([
                Point::new(0.0, 5.0),
                Point::new(0.0, -5.0),
                Point::new(0.0, 0.0),
            ])
            .protocols((0..3).map(|_| SyncSwarm::anonymous()))
            .build()
            .unwrap();
        e.step().unwrap();
        assert!(e.protocol(2).init_error().is_some());
        assert!(e.protocol(2).geometry().is_none());
    }

    #[test]
    fn unresolvable_label_is_dropped_not_stuck() {
        // A label beyond the cohort is a caller bug; the protocol drops
        // it and later messages still flow.
        let mut e = ring_engine(
            3,
            Capabilities::anonymous_with_direction(),
            SyncSwarm::anonymous_with_direction,
            20,
        );
        e.step().unwrap();
        e.protocol_mut(0).send_label(99, b"void");
        let good = label_of(&e, 0, 1);
        e.protocol_mut(0).send_label(good, b"real");
        let out = e
            .run_until(600, |e| {
                e.protocol(1).inbox().iter().any(|m| m.payload == b"real")
            })
            .unwrap();
        assert!(out.satisfied, "queue must not wedge on a bad label");
        assert!(e
            .protocol(1)
            .overheard()
            .iter()
            .all(|m| m.payload != b"void"));
    }

    #[test]
    fn two_robot_swarm_degenerates_to_sync2_semantics() {
        let mut e = ring_engine(
            2,
            Capabilities::anonymous_with_direction(),
            SyncSwarm::anonymous_with_direction,
            19,
        );
        deliver(&mut e, 0, 1, b"pairwise", 600);
    }
}
