//! High-level sessions: a message-passing network over movement signals.
//!
//! The protocols address peers by *labels* in a naming scheme, while an
//! application thinks in robot indices. [`Network`] bridges the two: it
//! owns the engine, translates indices to labels (the naming functions are
//! similarity-invariant, so labels computed from world positions agree
//! with what each robot computes in its private frame), tracks what was
//! sent, and runs the system until everything is delivered.
//!
//! ```
//! use stigmergy::session::SyncNetwork;
//! use stigmergy_geometry::Point;
//!
//! let mut net = SyncNetwork::anonymous_with_direction(
//!     vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0), Point::new(5.0, 8.0)],
//!     7,
//! )?;
//! net.send(0, 1, b"hi")?;
//! net.send(1, 2, b"there")?;
//! net.run_until_delivered(10_000)?;
//! assert_eq!(net.inbox(1), vec![(0, b"hi".to_vec())]);
//! assert_eq!(net.inbox(2), vec![(1, b"there".to_vec())]);
//! # Ok::<(), stigmergy::CoreError>(())
//! ```

use crate::ack::{AdaptiveBudget, RetransmitPolicy};
use crate::async2::{Async2, DriftPolicy};
use crate::async_n::AsyncSwarm;
use crate::backup::{Channel, Delivery, Wireless};
use crate::decode::InboxEntry;
use crate::naming::{label_by_id, label_by_lex, label_by_sec};
use crate::preprocess::{NamingScheme, SwarmGeometry};
use crate::sync_swarm::SyncSwarm;
use crate::CoreError;
use stigmergy_coding::fec::{protect_bytes, recover_bytes};
use stigmergy_geometry::Point;
use stigmergy_robots::{Capabilities, Engine, MovementProtocol};
use stigmergy_scheduler::{FairAsync, FaultPlan, Schedule, Synchronous, WakeAllFirst};

/// The protocol-side interface a [`Network`] drives.
///
/// Implemented by [`SyncSwarm`] and [`AsyncSwarm`]; sealed in spirit — the
/// session layer is written against exactly these semantics.
pub trait SwarmProtocol: MovementProtocol {
    /// Queues a message for the robot labelled `label` (in this robot's
    /// naming).
    fn queue_label(&mut self, label: usize, payload: &[u8]);
    /// Queues a broadcast.
    fn queue_broadcast(&mut self, payload: &[u8]);
    /// Messages received so far.
    fn inbox_entries(&self) -> &[InboxEntry];
    /// The preprocessed geometry, if built.
    fn swarm_geometry(&self) -> Option<&SwarmGeometry>;
    /// A preprocessing failure, if any.
    fn failure(&self) -> Option<&CoreError>;
}

impl SwarmProtocol for SyncSwarm {
    fn queue_label(&mut self, label: usize, payload: &[u8]) {
        self.send_label(label, payload);
    }
    fn queue_broadcast(&mut self, payload: &[u8]) {
        self.send_broadcast(payload);
    }
    fn inbox_entries(&self) -> &[InboxEntry] {
        self.inbox()
    }
    fn swarm_geometry(&self) -> Option<&SwarmGeometry> {
        self.geometry()
    }
    fn failure(&self) -> Option<&CoreError> {
        self.init_error()
    }
}

impl SwarmProtocol for AsyncSwarm {
    fn queue_label(&mut self, label: usize, payload: &[u8]) {
        self.send_label(label, payload);
    }
    fn queue_broadcast(&mut self, payload: &[u8]) {
        self.send_broadcast(payload);
    }
    fn inbox_entries(&self) -> &[InboxEntry] {
        self.inbox()
    }
    fn swarm_geometry(&self) -> Option<&SwarmGeometry> {
        self.geometry()
    }
    fn failure(&self) -> Option<&CoreError> {
        self.init_error()
    }
}

/// A plain-data summary of a session: how much work the engine did and
/// whether every queued message arrived.
///
/// Extracted via [`Network::report`] (and the façades' equivalents); all
/// fields are order-independent sums or booleans, so reports aggregate
/// the same way regardless of which worker thread ran the session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionReport {
    /// Number of robots.
    pub cohort: usize,
    /// Whether every queued expectation has been met.
    pub delivered: bool,
    /// Instants executed.
    pub steps: u64,
    /// Robot activations (after crash filtering).
    pub activations: u64,
    /// Activations that changed a position.
    pub moves: u64,
    /// Faults injected by the engine's plan.
    pub faults_injected: u64,
}

/// A message-passing network over movement signals.
#[derive(Debug)]
pub struct Network<P> {
    engine: Engine<P>,
    scheme: NamingScheme,
    expectations: Vec<(usize, usize, Vec<u8>)>,
}

/// A synchronous network (protocols P1–P4 territory).
pub type SyncNetwork = Network<SyncSwarm>;
/// An asynchronous network (protocol P6).
pub type AsyncNetwork = Network<AsyncSwarm>;

impl SyncNetwork {
    /// Anonymous robots with chirality only (§3.4 naming).
    ///
    /// # Errors
    ///
    /// Fails on degenerate configurations (coincident robots; a robot at
    /// the SEC centre surfaces on the first send/run).
    pub fn anonymous(positions: Vec<Point>, seed: u64) -> Result<Self, CoreError> {
        Self::build_sync(
            positions,
            seed,
            NamingScheme::BySec,
            Capabilities::anonymous(),
            SyncSwarm::anonymous,
        )
    }

    /// Anonymous robots with a common North (§3.3 naming).
    ///
    /// # Errors
    ///
    /// As [`SyncNetwork::anonymous`].
    pub fn anonymous_with_direction(positions: Vec<Point>, seed: u64) -> Result<Self, CoreError> {
        Self::build_sync(
            positions,
            seed,
            NamingScheme::ByLex,
            Capabilities::anonymous_with_direction(),
            SyncSwarm::anonymous_with_direction,
        )
    }

    /// Identified robots with a common North (§3.2 routing).
    ///
    /// # Errors
    ///
    /// As [`SyncNetwork::anonymous`].
    pub fn identified(positions: Vec<Point>, seed: u64) -> Result<Self, CoreError> {
        Self::build_sync(
            positions,
            seed,
            NamingScheme::ById,
            Capabilities::identified_with_direction(),
            SyncSwarm::routed,
        )
    }

    fn build_sync(
        positions: Vec<Point>,
        seed: u64,
        scheme: NamingScheme,
        caps: Capabilities,
        proto: fn() -> SyncSwarm,
    ) -> Result<Self, CoreError> {
        let n = positions.len();
        let engine = Engine::builder()
            .positions(positions)
            .protocols((0..n).map(|_| proto()))
            .capabilities(caps)
            .schedule(Synchronous)
            .frame_seed(seed)
            .build()?;
        Ok(Self {
            engine,
            scheme,
            expectations: Vec::new(),
        })
    }
}

impl AsyncNetwork {
    /// Anonymous asynchronous robots (§4.2) under a seeded fair scheduler.
    ///
    /// # Errors
    ///
    /// Fails on degenerate configurations.
    pub fn anonymous(positions: Vec<Point>, seed: u64) -> Result<Self, CoreError> {
        Self::anonymous_with_schedule(positions, seed, FairAsync::new(seed, 0.5, 16))
    }

    /// Anonymous asynchronous robots under a caller-supplied scheduler
    /// (wrapped so every robot wakes at `t0`, the §4.2 assumption).
    ///
    /// # Errors
    ///
    /// Fails on degenerate configurations.
    pub fn anonymous_with_schedule<S: Schedule + 'static>(
        positions: Vec<Point>,
        seed: u64,
        schedule: S,
    ) -> Result<Self, CoreError> {
        let n = positions.len();
        let engine = Engine::builder()
            .positions(positions)
            .protocols((0..n).map(|_| AsyncSwarm::anonymous()))
            .capabilities(Capabilities::anonymous())
            .schedule(WakeAllFirst::new(schedule))
            .frame_seed(seed)
            .build()?;
        Ok(Self {
            engine,
            scheme: NamingScheme::BySec,
            expectations: Vec::new(),
        })
    }
}

impl<P: SwarmProtocol> Network<P> {
    /// Number of robots.
    #[must_use]
    pub fn cohort(&self) -> usize {
        self.engine.cohort()
    }

    /// The underlying engine (positions, trace, frames).
    #[must_use]
    pub fn engine(&self) -> &Engine<P> {
        &self.engine
    }

    /// Mutable access to the underlying engine.
    pub fn engine_mut(&mut self) -> &mut Engine<P> {
        &mut self.engine
    }

    /// Queues a message from robot `from` to robot `to` (engine indices).
    ///
    /// # Errors
    ///
    /// * [`CoreError::UnknownDestination`] for out-of-range indices.
    /// * [`CoreError::SelfAddressed`] if `from == to` (use
    ///   [`Network::broadcast`]).
    /// * [`CoreError::Naming`] if the configuration admits no naming.
    pub fn send(&mut self, from: usize, to: usize, payload: &[u8]) -> Result<(), CoreError> {
        let n = self.cohort();
        if from >= n || to >= n {
            return Err(CoreError::UnknownDestination {
                dest: from.max(to),
                cohort: n,
            });
        }
        if from == to {
            return Err(CoreError::SelfAddressed);
        }
        if payload.len() > stigmergy_coding::framing::MAX_PAYLOAD {
            return Err(CoreError::PayloadTooLarge { len: payload.len() });
        }
        let label = self.label_from_world(from, to)?;
        self.engine.protocol_mut(from).queue_label(label, payload);
        self.expectations.push((from, to, payload.to_vec()));
        Ok(())
    }

    /// Queues a broadcast from robot `from` to everyone (§5 one-to-all).
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownDestination`] for an out-of-range index.
    pub fn broadcast(&mut self, from: usize, payload: &[u8]) -> Result<(), CoreError> {
        if from >= self.cohort() {
            return Err(CoreError::UnknownDestination {
                dest: from,
                cohort: self.cohort(),
            });
        }
        if payload.len() > stigmergy_coding::framing::MAX_PAYLOAD {
            return Err(CoreError::PayloadTooLarge { len: payload.len() });
        }
        self.engine.protocol_mut(from).queue_broadcast(payload);
        for to in (0..self.cohort()).filter(|&i| i != from) {
            self.expectations.push((from, to, payload.to_vec()));
        }
        Ok(())
    }

    /// Runs until every queued message has been delivered.
    ///
    /// Returns the number of instants executed.
    ///
    /// # Errors
    ///
    /// * [`CoreError::Timeout`] if `max_steps` elapse first.
    /// * Any robot's preprocessing failure, surfaced after the first
    ///   instant.
    /// * [`CoreError::Model`] on a model violation (collision).
    pub fn run_until_delivered(&mut self, max_steps: u64) -> Result<u64, CoreError> {
        for step in 0..max_steps {
            self.engine.step()?;
            if step == 0 {
                for i in 0..self.cohort() {
                    if let Some(e) = self.engine.protocol(i).failure() {
                        return Err(e.clone());
                    }
                }
            }
            if self.all_delivered() {
                return Ok(step + 1);
            }
        }
        if self.all_delivered() {
            Ok(max_steps)
        } else {
            Err(CoreError::Timeout { steps: max_steps })
        }
    }

    /// Runs exactly `steps` instants.
    ///
    /// # Errors
    ///
    /// [`CoreError::Model`] on a model violation.
    pub fn run(&mut self, steps: u64) -> Result<(), CoreError> {
        self.engine.run(steps)?;
        Ok(())
    }

    /// Whether every queued message has reached its addressee.
    ///
    /// Matching respects multiplicity: sending the same payload to the
    /// same robot twice requires two inbox entries. Cost is linear in the
    /// number of expectations plus inbox sizes (grouped counting), so it
    /// is safe to call every instant of a long run.
    #[must_use]
    pub fn all_delivered(&self) -> bool {
        use std::collections::BTreeMap;
        if self.expectations.is_empty() {
            return true;
        }
        let mut expected: BTreeMap<(usize, usize, &[u8]), usize> = BTreeMap::new();
        for (from, to, payload) in &self.expectations {
            *expected
                .entry((*from, *to, payload.as_slice()))
                .or_insert(0) += 1;
        }
        let mut inboxes: BTreeMap<usize, Vec<(usize, Vec<u8>)>> = BTreeMap::new();
        expected.into_iter().all(|((from, to, payload), need)| {
            let inbox = inboxes.entry(to).or_insert_with(|| self.inbox(to));
            inbox
                .iter()
                .filter(|(s, p)| *s == from && p == payload)
                .count()
                >= need
        })
    }

    /// Summarizes the session so far: cohort size, delivery status, and
    /// the engine's cumulative counters.
    ///
    /// Plain copyable data, independent of trace recording — this is the
    /// currency batch runtimes collect from finished sessions.
    #[must_use]
    pub fn report(&self) -> SessionReport {
        let stats = self.engine.stats();
        SessionReport {
            cohort: self.cohort(),
            delivered: self.all_delivered(),
            steps: stats.steps,
            activations: stats.activations,
            moves: stats.moves,
            faults_injected: stats.faults_injected,
        }
    }

    /// Robot `robot`'s inbox as `(sender_engine_index, payload)` pairs.
    ///
    /// Empty before the first instant (geometry not yet built).
    #[must_use]
    pub fn inbox(&self, robot: usize) -> Vec<(usize, Vec<u8>)> {
        let Some(g) = self.engine.protocol(robot).swarm_geometry() else {
            return Vec::new();
        };
        self.engine
            .protocol(robot)
            .inbox_entries()
            .iter()
            .filter_map(|e| Some((self.home_to_engine(robot, g, e.sender)?, e.payload.clone())))
            .collect()
    }

    /// Translates one robot's home index into an engine index by matching
    /// world home positions.
    fn home_to_engine(&self, robot: usize, g: &SwarmGeometry, home: usize) -> Option<usize> {
        let world = self.engine.frames()[robot].to_world(g.home(home));
        self.engine
            .trace()
            .initial()
            .iter()
            .position(|&p| p.approx_eq(world))
    }

    /// The label of `to` in `from`'s naming, computed from world positions
    /// (valid because every naming scheme is similarity-invariant).
    fn label_from_world(&self, from: usize, to: usize) -> Result<usize, CoreError> {
        let homes = self.engine.trace().initial();
        let labeling = match self.scheme {
            NamingScheme::ByLex => label_by_lex(homes)?,
            NamingScheme::BySec => label_by_sec(homes, from)?,
            NamingScheme::ById => {
                let ids = self
                    .engine
                    .ids()
                    .expect("identified networks always carry IDs");
                label_by_id(ids)?
            }
        };
        labeling.label_of(to).ok_or(CoreError::UnknownDestination {
            dest: to,
            cohort: homes.len(),
        })
    }
}

/// A ready-made two-robot asynchronous chat session (protocol P5).
///
/// [`Async2`] has a simpler API than the swarm protocols (there is only
/// one possible peer), so it gets its own small façade.
#[derive(Debug)]
pub struct AsyncPair {
    engine: Engine<Async2>,
}

impl AsyncPair {
    /// Creates a two-robot asynchronous session under a seeded fair
    /// scheduler.
    ///
    /// # Errors
    ///
    /// Fails if the two positions coincide.
    pub fn new(a: Point, b: Point, policy: DriftPolicy, seed: u64) -> Result<Self, CoreError> {
        Self::with_schedule(a, b, policy, seed, FairAsync::new(seed, 0.5, 16))
    }

    /// As [`AsyncPair::new`] with a caller-supplied scheduler.
    ///
    /// # Errors
    ///
    /// Fails if the two positions coincide.
    pub fn with_schedule<S: Schedule + 'static>(
        a: Point,
        b: Point,
        policy: DriftPolicy,
        seed: u64,
        schedule: S,
    ) -> Result<Self, CoreError> {
        let engine = Engine::builder()
            .positions([a, b])
            .protocols([Async2::new(policy), Async2::new(policy)])
            .schedule(WakeAllFirst::new(schedule))
            .frame_seed(seed)
            .build()?;
        Ok(Self { engine })
    }

    /// Queues a message from robot `from` (0 or 1) to the other robot.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownDestination`] unless `from` is 0 or 1.
    pub fn send(&mut self, from: usize, payload: &[u8]) -> Result<(), CoreError> {
        if from > 1 {
            return Err(CoreError::UnknownDestination {
                dest: from,
                cohort: 2,
            });
        }
        self.engine.protocol_mut(from).send(payload);
        Ok(())
    }

    /// Runs until both robots have drained their queues and received all
    /// pending traffic, or `max_steps` elapse.
    ///
    /// # Errors
    ///
    /// [`CoreError::Timeout`] / [`CoreError::Model`].
    pub fn run_until_delivered(&mut self, max_steps: u64) -> Result<u64, CoreError> {
        let expect: [usize; 2] = [
            self.engine.protocol(1).inbox().len()
                + usize::from(!self.engine.protocol(0).is_drained()),
            self.engine.protocol(0).inbox().len()
                + usize::from(!self.engine.protocol(1).is_drained()),
        ];
        let out = self
            .engine
            .run_until(max_steps, |e| {
                e.protocol(0).is_drained()
                    && e.protocol(1).is_drained()
                    && e.protocol(1).inbox().len() >= expect[0]
                    && e.protocol(0).inbox().len() >= expect[1]
            })
            .map_err(CoreError::from)?;
        if out.satisfied {
            Ok(out.steps_taken)
        } else {
            Err(CoreError::Timeout { steps: max_steps })
        }
    }

    /// Messages received by robot `robot`.
    #[must_use]
    pub fn inbox(&self, robot: usize) -> &[Vec<u8>] {
        self.engine.protocol(robot).inbox()
    }

    /// The underlying engine.
    #[must_use]
    pub fn engine(&self) -> &Engine<Async2> {
        &self.engine
    }

    /// Summarizes the session so far. `delivered` here means both
    /// endpoints have drained their outboxes (nothing still in flight).
    #[must_use]
    pub fn report(&self) -> SessionReport {
        let stats = self.engine.stats();
        SessionReport {
            cohort: 2,
            delivered: self.engine.protocol(0).is_drained() && self.engine.protocol(1).is_drained(),
            steps: stats.steps,
            activations: stats.activations,
            moves: stats.moves,
            faults_injected: stats.faults_injected,
        }
    }
}

/// Why a hardened session abandoned the movement channel for a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeReason {
    /// An endpoint of the message crash-stopped; a crashed robot can
    /// neither signal nor observe, so movement delivery is hopeless.
    PeerCrashed {
        /// The crashed endpoint.
        robot: usize,
    },
    /// Every retransmission attempt exhausted its step budget.
    MovementExhausted,
}

/// How a hardened delivery ultimately got through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionRoute {
    /// Delivered by movement signals.
    Movement {
        /// Attempts used (1 = no retransmission needed).
        attempts: u32,
        /// Engine instants spent across all attempts.
        steps: u64,
    },
    /// Delivered over the secondary wireless channel after degradation.
    Secondary {
        /// Why the session degraded.
        reason: DegradeReason,
        /// Secondary transmissions used.
        attempts: u32,
    },
}

/// Hardened-session delivery statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Messages delivered over movement signals.
    pub movement_ok: u64,
    /// Retransmissions issued (attempts beyond each message's first).
    pub retransmissions: u64,
    /// Degradations caused by a crash-stopped endpoint.
    pub degraded_crash: u64,
    /// Degradations caused by exhausted movement budgets.
    pub degraded_timeout: u64,
    /// Messages recovered over the secondary channel.
    pub secondary_ok: u64,
    /// Engine instants spent on movement delivery.
    pub movement_steps: u64,
    /// Symbol corrections the secondary channel's FEC performed.
    pub fec_corrected: u64,
    /// Secondary frames rejected as beyond the correction radius.
    pub fec_rejected: u64,
}

/// A fault-tolerant session: movement signals first, with per-message
/// timeout budgets and bounded backed-off retransmission, degrading to a
/// secondary wireless channel when an endpoint crash-stops or the
/// budgets run dry.
///
/// This is [`crate::backup::BackupChannel`] inverted. There, wireless is
/// primary and movement is the backup; here the movement channel — the
/// paper's subject — carries the traffic, and the wireless device is the
/// contingency for faults movement cannot survive (a crash-stopped
/// robot cannot wiggle out a frame). Payloads crossing the secondary
/// channel are protected by the symbol-level forward error correction of
/// [`stigmergy_coding::fec`]: a single corrupted byte per block is
/// repaired in place instead of paying CRC-8's reject-and-retransmit
/// round trip, and only noise beyond the correction radius forces a
/// retry.
///
/// The retransmission schedule is *adaptive* ([`AdaptiveBudget`]): FEC
/// corrections on the secondary path back off the movement budgets
/// (the secondary is evidently needed and working), and an
/// uncorrectable block escalates — subsequent sends spend a single
/// minimal movement attempt before failing over, because one wireless
/// retry costs a transmission while one movement attempt costs
/// thousands of instants.
#[derive(Debug)]
pub struct HardenedSession {
    net: SyncNetwork,
    adaptive: AdaptiveBudget,
    secondary: Wireless,
    secondary_inbox: Vec<(usize, usize, Vec<u8>)>,
    stats: SessionStats,
    sends: u64,
}

impl HardenedSession {
    /// Builds a hardened session over the robots at `positions`, with a
    /// benign fault plan.
    ///
    /// # Errors
    ///
    /// Fails on configurations the movement network rejects.
    pub fn new(
        positions: Vec<Point>,
        seed: u64,
        policy: RetransmitPolicy,
        secondary: Wireless,
    ) -> Result<Self, CoreError> {
        Ok(Self {
            net: SyncNetwork::anonymous_with_direction(positions, seed)?,
            adaptive: AdaptiveBudget::new(policy),
            secondary,
            secondary_inbox: Vec::new(),
            stats: SessionStats::default(),
            sends: 0,
        })
    }

    /// As [`HardenedSession::new`], with a fault plan injected into the
    /// movement engine.
    ///
    /// # Errors
    ///
    /// As [`HardenedSession::new`].
    pub fn with_faults(
        positions: Vec<Point>,
        seed: u64,
        policy: RetransmitPolicy,
        secondary: Wireless,
        plan: FaultPlan,
    ) -> Result<Self, CoreError> {
        let mut session = Self::new(positions, seed, policy, secondary)?;
        session.net.engine_mut().set_fault_plan(plan);
        Ok(session)
    }

    /// Sends `payload` from `from` to `to` and drives the session until
    /// the message is through (movement or secondary) or every recourse
    /// is exhausted.
    ///
    /// # Errors
    ///
    /// * Validation errors from the movement network (bad indices,
    ///   oversized payload, degenerate naming).
    /// * [`CoreError::Timeout`] when the movement budgets *and* the
    ///   secondary retries are exhausted — the clean-failure outcome the
    ///   adversarial suite asserts on.
    /// * [`CoreError::Model`] on a model violation (collision).
    pub fn send(
        &mut self,
        from: usize,
        to: usize,
        payload: &[u8],
    ) -> Result<SessionRoute, CoreError> {
        let n = self.net.cohort();
        if from >= n || to >= n {
            return Err(CoreError::UnknownDestination {
                dest: from.max(to),
                cohort: n,
            });
        }
        if from == to {
            return Err(CoreError::SelfAddressed);
        }
        self.sends += 1;
        let baseline = self.delivered_copies(from, to, payload);
        let mut total_steps = 0u64;
        for attempt in 0..self.adaptive.max_attempts() {
            if let Some(robot) = self.crashed_endpoint(from, to) {
                self.stats.degraded_crash += 1;
                return self.send_secondary(
                    from,
                    to,
                    payload,
                    DegradeReason::PeerCrashed { robot },
                );
            }
            self.net.send(from, to, payload)?;
            if attempt > 0 {
                self.stats.retransmissions += 1;
            }
            let budget = self.adaptive.budget_for(attempt);
            let mut crashed = None;
            for step in 0..budget {
                self.net.run(1)?;
                total_steps += 1;
                self.stats.movement_steps += 1;
                if attempt == 0 && step == 0 {
                    for i in 0..self.net.cohort() {
                        if let Some(e) = self.net.engine().protocol(i).failure() {
                            return Err(e.clone());
                        }
                    }
                }
                if self.delivered_copies(from, to, payload) > baseline {
                    self.stats.movement_ok += 1;
                    return Ok(SessionRoute::Movement {
                        attempts: attempt + 1,
                        steps: total_steps,
                    });
                }
                if let Some(robot) = self.crashed_endpoint(from, to) {
                    crashed = Some(robot);
                    break;
                }
            }
            if let Some(robot) = crashed {
                self.stats.degraded_crash += 1;
                return self.send_secondary(
                    from,
                    to,
                    payload,
                    DegradeReason::PeerCrashed { robot },
                );
            }
        }
        self.stats.degraded_timeout += 1;
        self.send_secondary(from, to, payload, DegradeReason::MovementExhausted)
    }

    fn send_secondary(
        &mut self,
        from: usize,
        to: usize,
        payload: &[u8],
        reason: DegradeReason,
    ) -> Result<SessionRoute, CoreError> {
        let framed = protect_bytes(payload)
            .map_err(|_| CoreError::PayloadTooLarge { len: payload.len() })?;
        for attempt in 1..=self.adaptive.policy().max_attempts() {
            if let Delivery::Arrived(data) = self.secondary.transmit(from, to, &framed) {
                match recover_bytes(&data) {
                    Ok((recovered, corrected)) if recovered == payload => {
                        self.stats.fec_corrected += corrected;
                        if corrected > 0 {
                            self.adaptive.record_corrected(corrected);
                        } else {
                            self.adaptive.record_clean();
                        }
                        self.secondary_inbox.push((from, to, payload.to_vec()));
                        self.stats.secondary_ok += 1;
                        return Ok(SessionRoute::Secondary {
                            reason,
                            attempts: attempt,
                        });
                    }
                    // Uncorrectable, or miscorrected into a frame that
                    // is not ours — both mean noise beyond the radius.
                    _ => {
                        self.stats.fec_rejected += 1;
                        self.adaptive.record_uncorrectable();
                    }
                }
            }
        }
        Err(CoreError::Timeout {
            steps: self.adaptive.policy().total_budget(),
        })
    }

    fn crashed_endpoint(&self, from: usize, to: usize) -> Option<usize> {
        [from, to]
            .into_iter()
            .find(|&r| self.net.engine().is_crashed(r))
    }

    fn delivered_copies(&self, from: usize, to: usize, payload: &[u8]) -> usize {
        self.net
            .inbox(to)
            .iter()
            .filter(|(s, p)| *s == from && p == payload)
            .count()
    }

    /// Robot `robot`'s combined inbox: movement deliveries first, then
    /// secondary-channel recoveries, each as `(sender, payload)`.
    #[must_use]
    pub fn inbox(&self, robot: usize) -> Vec<(usize, Vec<u8>)> {
        let mut entries = self.net.inbox(robot);
        entries.extend(
            self.secondary_inbox
                .iter()
                .filter(|(_, to, _)| *to == robot)
                .map(|(from, _, p)| (*from, p.clone())),
        );
        entries
    }

    /// Delivery statistics so far.
    #[must_use]
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Summarizes the session: the movement engine's counters, with
    /// `delivered` meaning every [`HardenedSession::send`] so far got its
    /// payload through (over movement or the secondary channel).
    #[must_use]
    pub fn report(&self) -> SessionReport {
        let stats = self.net.engine().stats();
        SessionReport {
            cohort: self.net.cohort(),
            delivered: self.stats.movement_ok + self.stats.secondary_ok == self.sends,
            steps: stats.steps,
            activations: stats.activations,
            moves: stats.moves,
            faults_injected: stats.faults_injected,
        }
    }

    /// The underlying movement network.
    #[must_use]
    pub fn network(&self) -> &SyncNetwork {
        &self.net
    }

    /// The configured (pre-adaptation) retransmission policy.
    #[must_use]
    pub fn policy(&self) -> RetransmitPolicy {
        self.adaptive.policy()
    }

    /// The adaptive controller's current pressure level — 0 when the
    /// secondary channel has been clean, up to
    /// [`crate::ack::MAX_PRESSURE`] after uncorrectable noise.
    #[must_use]
    pub fn pressure(&self) -> u32 {
        self.adaptive.pressure()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(12.0, 0.0),
            Point::new(5.0, 9.0),
        ]
    }

    #[test]
    fn report_summarizes_engine_work_and_delivery() {
        let mut net = SyncNetwork::anonymous_with_direction(triangle(), 1).unwrap();
        assert_eq!(
            net.report(),
            SessionReport {
                cohort: 3,
                delivered: true, // nothing queued yet
                ..SessionReport::default()
            }
        );
        net.send(0, 2, b"hi").unwrap();
        let steps = net.run_until_delivered(5_000).unwrap();
        let report = net.report();
        assert!(report.delivered);
        assert_eq!(report.cohort, 3);
        assert_eq!(report.steps, steps);
        assert_eq!(report.activations, steps * 3, "synchronous schedule");
        assert!(report.moves > 0);
        assert_eq!(report.faults_injected, 0);
    }

    #[test]
    fn sync_anonymous_with_direction_end_to_end() {
        let mut net = SyncNetwork::anonymous_with_direction(triangle(), 1).unwrap();
        net.send(0, 2, b"up").unwrap();
        net.send(2, 1, b"across").unwrap();
        let steps = net.run_until_delivered(5_000).unwrap();
        assert!(steps > 0);
        assert_eq!(net.inbox(2), vec![(0, b"up".to_vec())]);
        assert_eq!(net.inbox(1), vec![(2, b"across".to_vec())]);
        assert!(net.all_delivered());
    }

    #[test]
    fn sync_identified_end_to_end() {
        let mut net = SyncNetwork::identified(triangle(), 2).unwrap();
        net.send(1, 0, b"routed").unwrap();
        net.run_until_delivered(5_000).unwrap();
        assert_eq!(net.inbox(0), vec![(1, b"routed".to_vec())]);
    }

    #[test]
    fn sync_chirality_only_end_to_end() {
        let mut net = SyncNetwork::anonymous(triangle(), 3).unwrap();
        net.send(0, 1, b"sec").unwrap();
        net.run_until_delivered(5_000).unwrap();
        assert_eq!(net.inbox(1), vec![(0, b"sec".to_vec())]);
    }

    #[test]
    fn async_network_end_to_end() {
        let mut net = AsyncNetwork::anonymous(triangle(), 4).unwrap();
        net.send(0, 2, b"async swarm").unwrap();
        net.run_until_delivered(200_000).unwrap();
        assert_eq!(net.inbox(2), vec![(0, b"async swarm".to_vec())]);
    }

    #[test]
    fn broadcast_end_to_end() {
        let mut net = SyncNetwork::anonymous_with_direction(triangle(), 5).unwrap();
        net.broadcast(1, b"everyone").unwrap();
        net.run_until_delivered(5_000).unwrap();
        assert_eq!(net.inbox(0), vec![(1, b"everyone".to_vec())]);
        assert_eq!(net.inbox(2), vec![(1, b"everyone".to_vec())]);
    }

    #[test]
    fn send_validation() {
        let mut net = SyncNetwork::anonymous_with_direction(triangle(), 6).unwrap();
        assert!(matches!(
            net.send(0, 9, b"x"),
            Err(CoreError::UnknownDestination { dest: 9, cohort: 3 })
        ));
        assert!(matches!(
            net.send(1, 1, b"x"),
            Err(CoreError::SelfAddressed)
        ));
        assert!(matches!(
            net.broadcast(7, b"x"),
            Err(CoreError::UnknownDestination { .. })
        ));
    }

    #[test]
    fn timeout_reported() {
        let mut net = SyncNetwork::anonymous_with_direction(triangle(), 7).unwrap();
        net.send(0, 1, b"too slow").unwrap();
        // 4 steps cannot carry a 40-bit frame.
        assert!(matches!(
            net.run_until_delivered(4),
            Err(CoreError::Timeout { steps: 4 })
        ));
    }

    #[test]
    fn degenerate_configuration_surfaces() {
        // Robot at the SEC centre with BySec naming: send() fails eagerly.
        let pts = vec![Point::new(0.0, 5.0), Point::new(0.0, -5.0), Point::ORIGIN];
        let mut net = SyncNetwork::anonymous(pts, 8).unwrap();
        assert!(matches!(net.send(0, 1, b"x"), Err(CoreError::Naming(_))));
    }

    #[test]
    fn async_pair_chat() {
        let mut pair = AsyncPair::new(
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            DriftPolicy::Diverge,
            9,
        )
        .unwrap();
        pair.send(0, b"marco").unwrap();
        pair.send(1, b"polo").unwrap();
        pair.run_until_delivered(50_000).unwrap();
        assert_eq!(pair.inbox(1), &[b"marco".to_vec()]);
        assert_eq!(pair.inbox(0), &[b"polo".to_vec()]);
        assert!(!pair.engine().trace().is_empty());
    }

    #[test]
    fn async_pair_validation() {
        let mut pair = AsyncPair::new(
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            DriftPolicy::Diverge,
            10,
        )
        .unwrap();
        assert!(matches!(
            pair.send(2, b"x"),
            Err(CoreError::UnknownDestination { .. })
        ));
    }

    #[test]
    fn oversized_payload_rejected() {
        let mut net = SyncNetwork::anonymous_with_direction(triangle(), 13).unwrap();
        let big = vec![0u8; 70_000];
        assert!(matches!(
            net.send(0, 1, &big),
            Err(CoreError::PayloadTooLarge { len: 70_000 })
        ));
        assert!(matches!(
            net.broadcast(0, &big),
            Err(CoreError::PayloadTooLarge { .. })
        ));
    }

    #[test]
    fn inbox_before_running_is_empty() {
        let net = SyncNetwork::anonymous_with_direction(triangle(), 11).unwrap();
        assert!(net.inbox(0).is_empty());
        assert_eq!(net.cohort(), 3);
    }

    #[test]
    fn hardened_delivers_over_movement_when_healthy() {
        let mut s = HardenedSession::new(
            triangle(),
            21,
            RetransmitPolicy::default(),
            Wireless::reliable(21),
        )
        .unwrap();
        let route = s.send(0, 2, b"primary path").unwrap();
        assert!(
            matches!(route, SessionRoute::Movement { attempts: 1, steps } if steps > 0),
            "got {route:?}"
        );
        assert_eq!(s.inbox(2), vec![(0, b"primary path".to_vec())]);
        let stats = s.stats();
        assert_eq!(stats.movement_ok, 1);
        assert_eq!(stats.retransmissions, 0);
        assert_eq!(stats.secondary_ok, 0);
    }

    #[test]
    fn hardened_degrades_to_secondary_on_peer_crash() {
        let mut s = HardenedSession::with_faults(
            triangle(),
            22,
            RetransmitPolicy::default(),
            Wireless::reliable(22),
            FaultPlan::new(22).crash_stop(2, 0),
        )
        .unwrap();
        let route = s.send(0, 2, b"rescued").unwrap();
        assert!(
            matches!(
                route,
                SessionRoute::Secondary {
                    reason: DegradeReason::PeerCrashed { robot: 2 },
                    ..
                }
            ),
            "got {route:?}"
        );
        assert_eq!(s.inbox(2), vec![(0, b"rescued".to_vec())]);
        assert_eq!(s.stats().degraded_crash, 1);
        assert_eq!(s.stats().secondary_ok, 1);
    }

    #[test]
    fn hardened_crash_mid_delivery_degrades() {
        // The receiver crashes 10 instants in — long before a 40-bit frame
        // can cross the movement channel.
        let mut s = HardenedSession::with_faults(
            triangle(),
            23,
            RetransmitPolicy::new(3, 2_000, 2),
            Wireless::reliable(23),
            FaultPlan::new(23).crash_stop(1, 10),
        )
        .unwrap();
        let route = s.send(0, 1, b"mid-crash").unwrap();
        assert!(
            matches!(
                route,
                SessionRoute::Secondary {
                    reason: DegradeReason::PeerCrashed { robot: 1 },
                    ..
                }
            ),
            "got {route:?}"
        );
        assert_eq!(s.inbox(1), vec![(0, b"mid-crash".to_vec())]);
    }

    #[test]
    fn hardened_retransmits_then_degrades_on_exhausted_budgets() {
        // Budgets of 4 + 8 instants cannot carry any frame, so both
        // movement attempts time out and the secondary channel recovers.
        let mut s = HardenedSession::new(
            triangle(),
            24,
            RetransmitPolicy::new(2, 4, 2),
            Wireless::reliable(24),
        )
        .unwrap();
        let route = s.send(1, 0, b"slow road").unwrap();
        assert!(
            matches!(
                route,
                SessionRoute::Secondary {
                    reason: DegradeReason::MovementExhausted,
                    ..
                }
            ),
            "got {route:?}"
        );
        let stats = s.stats();
        assert_eq!(
            stats.retransmissions, 1,
            "second attempt was a retransmission"
        );
        assert_eq!(stats.degraded_timeout, 1);
        assert_eq!(stats.movement_steps, 12);
        assert_eq!(s.inbox(0), vec![(1, b"slow road".to_vec())]);
    }

    #[test]
    fn hardened_total_failure_is_clean_timeout() {
        // Receiver crashed AND the secondary device is dead: the send must
        // fail with a clean timeout, never hang or panic.
        let mut s = HardenedSession::with_faults(
            triangle(),
            25,
            RetransmitPolicy::new(2, 50, 2),
            Wireless::new(25, 0.0, 0.0, Some(0)),
            FaultPlan::new(25).crash_stop(2, 0),
        )
        .unwrap();
        let err = s.send(0, 2, b"doomed").unwrap_err();
        assert!(matches!(err, CoreError::Timeout { .. }), "got {err:?}");
        assert!(s.inbox(2).is_empty());
    }

    #[test]
    fn hardened_secondary_heals_single_bit_corruption() {
        // 100% corruption rate, single-bit bursts: every CRC-8 scheme
        // would reject every frame, but the FEC repairs each one in
        // place, so the first secondary attempt succeeds.
        let mut s = HardenedSession::with_faults(
            triangle(),
            27,
            RetransmitPolicy::default(),
            Wireless::new(27, 0.0, 1.0, None),
            FaultPlan::new(27).crash_stop(2, 0),
        )
        .unwrap();
        let route = s.send(0, 2, b"healed").unwrap();
        assert!(
            matches!(route, SessionRoute::Secondary { attempts: 1, .. }),
            "got {route:?}"
        );
        assert_eq!(s.inbox(2), vec![(0, b"healed".to_vec())]);
        let stats = s.stats();
        assert!(stats.fec_corrected >= 1, "the flip was corrected");
        assert_eq!(stats.fec_rejected, 0);
        assert_eq!(s.pressure(), 1, "one correction event");
    }

    #[test]
    fn hardened_corrections_back_off_movement_budgets() {
        // Budgets 4 + 8 instants cannot carry any frame, so each send
        // times out of movement and recovers over the (always-corrupted,
        // always-corrected) secondary. The correction raises pressure,
        // halving the second send's movement budgets: 12 then 6 instants.
        let mut s = HardenedSession::new(
            triangle(),
            28,
            RetransmitPolicy::new(2, 4, 2),
            Wireless::new(28, 0.0, 1.0, None),
        )
        .unwrap();
        s.send(0, 1, b"first").unwrap();
        assert_eq!(s.stats().movement_steps, 12);
        assert_eq!(s.pressure(), 1);
        s.send(0, 1, b"second").unwrap();
        assert_eq!(s.stats().movement_steps, 12 + 6, "budgets halved");
        assert_eq!(s.stats().secondary_ok, 2);
        assert!(s.stats().fec_corrected >= 2);
    }

    #[test]
    fn hardened_uncorrectable_bursts_escalate_to_failover() {
        // An 8-byte burst in every frame puts at least one FEC block
        // beyond the correction radius (a "healed" frame is 14 bytes in
        // 2 blocks), so every secondary attempt is rejected and the send
        // fails cleanly. The escalation collapses the next send's
        // movement schedule to a single 1-instant attempt.
        let mut s = HardenedSession::new(
            triangle(),
            29,
            RetransmitPolicy::new(3, 4, 2),
            Wireless::noisy(29, 0.0, 1.0, 8, None),
        )
        .unwrap();
        let err = s.send(0, 1, b"jam").unwrap_err();
        assert!(matches!(err, CoreError::Timeout { .. }), "got {err:?}");
        assert_eq!(s.stats().movement_steps, 4 + 8 + 16);
        assert_eq!(s.stats().fec_rejected, 3, "every retry was jammed");
        assert_eq!(s.pressure(), crate::ack::MAX_PRESSURE);
        let err = s.send(0, 1, b"jam").unwrap_err();
        assert!(matches!(err, CoreError::Timeout { .. }), "got {err:?}");
        assert_eq!(
            s.stats().movement_steps,
            28 + 1,
            "escalated: one minimal movement attempt before failover"
        );
        assert_eq!(s.stats().fec_rejected, 6);
        assert!(s.inbox(1).is_empty());
    }

    #[test]
    fn hardened_validation_errors_propagate() {
        let mut s = HardenedSession::new(
            triangle(),
            26,
            RetransmitPolicy::default(),
            Wireless::reliable(26),
        )
        .unwrap();
        assert!(matches!(
            s.send(0, 9, b"x"),
            Err(CoreError::UnknownDestination { .. })
        ));
        assert!(matches!(s.send(1, 1, b"x"), Err(CoreError::SelfAddressed)));
    }

    #[test]
    fn larger_swarm_many_messages() {
        let positions: Vec<Point> = (0..7)
            .map(|k| {
                let theta = std::f64::consts::TAU * (k as f64) / 7.0;
                Point::new(15.0 * theta.cos() + (k as f64) * 0.05, 15.0 * theta.sin())
            })
            .collect();
        let mut net = SyncNetwork::anonymous_with_direction(positions, 12).unwrap();
        for i in 0..7 {
            net.send(i, (i + 2) % 7, format!("msg-{i}").as_bytes())
                .unwrap();
        }
        net.run_until_delivered(20_000).unwrap();
        for i in 0..7 {
            let to = (i + 2) % 7;
            assert!(net
                .inbox(to)
                .contains(&(i, format!("msg-{i}").into_bytes())));
        }
    }
}
