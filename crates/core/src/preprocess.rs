//! The `t0` preprocessing pipeline (§3.2 steps 1–2, §3.4, §4.2).
//!
//! At the first activation every robot, from its view of `P(t0)`, computes:
//!
//! 1. the **Voronoi granulars** — for each robot, the largest disc centred
//!    on it inside its Voronoi cell (movement is confined there, ruling out
//!    collisions);
//! 2. the **slicing** of each granular into labelled diameters — the
//!    movement "keyboard" (reference direction North with sense of
//!    direction, or the robot's SEC horizon with chirality only; the
//!    asynchronous protocol adds the extra κ diameter);
//! 3. the **naming** — the labelling of robots used to address slices.
//!
//! All of it is built from positions alone with similarity-invariant
//! constructions, so every robot computes *consistent* keyboards and
//! labellings in its own private frame — the linchpin of decodability.

use crate::naming::{label_by_id, label_by_lex, label_by_sec, Labeling};
use crate::CoreError;
use serde::{Deserialize, Serialize};
use stigmergy_geometry::granular::{SliceZone, SlicedGranular};
use stigmergy_geometry::voronoi::granular_radius;
use stigmergy_geometry::{smallest_enclosing_circle, Point, Tolerance, Vec2};
use stigmergy_robots::{View, VisibleId};

/// Which naming mechanism the cohort uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NamingScheme {
    /// Observable-ID order (§3.2) — requires identified robots.
    ById,
    /// Lexicographic position order (§3.3) — requires sense of direction.
    ByLex,
    /// Observer-relative SEC radial order (§3.4) — chirality only.
    BySec,
}

/// The fully preprocessed swarm geometry from one robot's perspective.
///
/// Home index 0 is always the observing robot itself; the others follow in
/// the view order (sorted by local coordinates). Home positions never
/// change: every protocol returns robots to (or keeps them within a
/// granular of) their `P(t0)` position.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwarmGeometry {
    homes: Vec<Point>,
    ids: Option<Vec<VisibleId>>,
    granulars: Vec<SlicedGranular>,
    labelings: Vec<Labeling>,
    scheme: NamingScheme,
    kappa: bool,
}

impl SwarmGeometry {
    /// Builds the geometry from a `t0` view.
    ///
    /// `with_kappa` adds the extra κ diameter of the asynchronous protocol
    /// (§4.2): slice 0 becomes κ and addressing slices shift up by one.
    ///
    /// # Errors
    ///
    /// * [`CoreError::Naming`] for degenerate configurations (coincident
    ///   robots, a robot at the SEC centre under [`NamingScheme::BySec`],
    ///   missing IDs under [`NamingScheme::ById`]).
    /// * [`CoreError::Geometry`] if granulars cannot be computed (fewer
    ///   than two robots).
    pub fn build(view: &View, scheme: NamingScheme, with_kappa: bool) -> Result<Self, CoreError> {
        let observed: Vec<_> = view.all().collect();
        let homes: Vec<Point> = observed.iter().map(|o| o.position).collect();
        let n = homes.len();
        if n < 2 {
            return Err(CoreError::WrongCohortSize {
                needed: "at least 2",
                got: n,
            });
        }
        let ids: Option<Vec<VisibleId>> = observed.iter().map(|o| o.id).collect();

        // Naming.
        let labelings: Vec<Labeling> = match scheme {
            NamingScheme::ById => {
                let ids = ids.as_ref().ok_or(CoreError::Naming(
                    crate::naming::NamingError::AmbiguousPositions {
                        first: 0,
                        second: 0,
                    },
                ))?;
                let l = label_by_id(ids)?;
                vec![l; n]
            }
            NamingScheme::ByLex => {
                let l = label_by_lex(&homes)?;
                vec![l; n]
            }
            NamingScheme::BySec => (0..n)
                .map(|i| label_by_sec(&homes, i))
                .collect::<Result<_, _>>()?,
        };

        // Slice references.
        let references: Vec<Vec2> = match scheme {
            NamingScheme::ById | NamingScheme::ByLex => vec![Vec2::NORTH; n],
            NamingScheme::BySec => {
                let sec = smallest_enclosing_circle(&homes)?;
                homes.iter().map(|&h| h - sec.center).collect()
            }
        };

        // Granulars.
        let slices = n + usize::from(with_kappa);
        let granulars: Vec<SlicedGranular> = (0..n)
            .map(|i| {
                let r = granular_radius(&homes, i)?;
                SlicedGranular::with_reference(homes[i], r, slices, references[i])
            })
            .collect::<Result<_, _>>()?;

        Ok(Self {
            homes,
            ids,
            granulars,
            labelings,
            scheme,
            kappa: with_kappa,
        })
    }

    /// Number of robots.
    #[must_use]
    pub fn cohort(&self) -> usize {
        self.homes.len()
    }

    /// The naming scheme in force.
    #[must_use]
    pub fn scheme(&self) -> NamingScheme {
        self.scheme
    }

    /// Whether keyboards carry the extra κ slice.
    #[must_use]
    pub fn has_kappa(&self) -> bool {
        self.kappa
    }

    /// Home position of robot `home` (local coordinates).
    #[must_use]
    pub fn home(&self, home: usize) -> Point {
        self.homes[home]
    }

    /// All home positions.
    #[must_use]
    pub fn homes(&self) -> &[Point] {
        &self.homes
    }

    /// The sliced granular (keyboard) of robot `home`.
    #[must_use]
    pub fn keyboard(&self, home: usize) -> &SlicedGranular {
        &self.granulars[home]
    }

    /// Visible ID of robot `home` (identified systems only).
    #[must_use]
    pub fn id_of(&self, home: usize) -> Option<VisibleId> {
        self.ids.as_ref().map(|ids| ids[home])
    }

    /// The label of `target` in `perspective`'s naming.
    ///
    /// For [`NamingScheme::ById`] / [`NamingScheme::ByLex`] the labelling is
    /// global and `perspective` is irrelevant; for [`NamingScheme::BySec`]
    /// it is the sender-relative labelling every observer recomputes.
    #[must_use]
    pub fn label_for(&self, perspective: usize, target: usize) -> usize {
        self.labelings[perspective]
            .label_of(target)
            .expect("target within cohort")
    }

    /// Inverse of [`SwarmGeometry::label_for`].
    #[must_use]
    pub fn home_for(&self, perspective: usize, label: usize) -> Option<usize> {
        self.labelings[perspective].index_of(label)
    }

    /// The keyboard slice that addresses `label`.
    #[must_use]
    pub fn slice_for_label(&self, label: usize) -> usize {
        label + usize::from(self.kappa)
    }

    /// The label addressed by `slice`, or `None` for κ.
    #[must_use]
    pub fn label_for_slice(&self, slice: usize) -> Option<usize> {
        if self.kappa {
            slice.checked_sub(1)
        } else {
            Some(slice)
        }
    }

    /// The κ slice index, if the keyboards have one.
    #[must_use]
    pub fn kappa_slice(&self) -> Option<usize> {
        self.kappa.then_some(0)
    }

    /// Identifies which robot an observed point belongs to: the robot whose
    /// granular contains it. Granulars are pairwise disjoint, so the answer
    /// is unique; `None` means the point is in no granular (a model
    /// violation by some robot).
    #[must_use]
    pub fn identify(&self, p: Point) -> Option<usize> {
        let tol = Tolerance::default();
        self.granulars.iter().position(|g| g.contains(p, tol))
    }

    /// Classifies an observed point on its owner's keyboard.
    ///
    /// Returns `(home, zone)` or `None` if the point matches no granular.
    #[must_use]
    pub fn classify(&self, p: Point) -> Option<(usize, SliceZone)> {
        let home = self.identify(p)?;
        let zone = self.granulars[home].classify(p, Tolerance::default());
        Some((home, zone))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stigmergy_geometry::granular::SliceSide;
    use stigmergy_robots::Observed;

    fn view_of(positions: &[Point], ids: bool) -> View {
        let mk = |i: usize, p: Point| Observed {
            position: p,
            id: ids.then(|| VisibleId::new(100 + i as u32 * 3)),
        };
        View::new(
            mk(0, positions[0]),
            positions[1..]
                .iter()
                .enumerate()
                .map(|(i, &p)| mk(i + 1, p))
                .collect(),
            1.0,
        )
    }

    fn square() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
            Point::new(0.0, 10.0),
        ]
    }

    #[test]
    fn build_lex() {
        let view = view_of(&square(), false);
        let g = SwarmGeometry::build(&view, NamingScheme::ByLex, false).unwrap();
        assert_eq!(g.cohort(), 4);
        assert_eq!(g.scheme(), NamingScheme::ByLex);
        assert!(!g.has_kappa());
        assert_eq!(g.kappa_slice(), None);
        // Same labelling from every perspective.
        for p in 0..4 {
            for t in 0..4 {
                assert_eq!(g.label_for(p, t), g.label_for(0, t));
            }
        }
        // Keyboards have n slices and half-nearest-distance radii.
        for i in 0..4 {
            assert_eq!(g.keyboard(i).slice_count(), 4);
            assert!((g.keyboard(i).radius() - 5.0).abs() < 1e-9);
        }
    }

    #[test]
    fn build_by_id_requires_ids() {
        let view = view_of(&square(), false);
        assert!(SwarmGeometry::build(&view, NamingScheme::ById, false).is_err());
        let view = view_of(&square(), true);
        let g = SwarmGeometry::build(&view, NamingScheme::ById, false).unwrap();
        // Labels follow ID order; the observer got the smallest id (100).
        assert_eq!(g.label_for(2, 0), 0);
        assert_eq!(g.id_of(0), Some(VisibleId::new(100)));
    }

    #[test]
    fn build_sec_labelings_are_per_observer() {
        // Use an asymmetric layout so per-observer labelings differ.
        let pts = vec![
            Point::new(0.0, 5.0),
            Point::new(4.0, -3.0),
            Point::new(-4.0, -3.0),
            Point::new(1.0, 1.0),
        ];
        let view = view_of(&pts, false);
        let g = SwarmGeometry::build(&view, NamingScheme::BySec, false).unwrap();
        // Every labelling is a valid bijection.
        for p in 0..4 {
            let mut seen = [false; 4];
            for t in 0..4 {
                let l = g.label_for(p, t);
                assert_eq!(g.home_for(p, l), Some(t));
                seen[l] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
        // References point outward from the SEC centre: keyboards differ.
        assert!(!g
            .keyboard(0)
            .reference()
            .approx_eq(g.keyboard(1).reference()));
    }

    #[test]
    fn kappa_shifts_slices() {
        let view = view_of(&square(), false);
        let g = SwarmGeometry::build(&view, NamingScheme::BySec, true).unwrap();
        assert!(g.has_kappa());
        assert_eq!(g.kappa_slice(), Some(0));
        assert_eq!(g.slice_for_label(0), 1);
        assert_eq!(g.label_for_slice(0), None);
        assert_eq!(g.label_for_slice(3), Some(2));
        assert_eq!(g.keyboard(0).slice_count(), 5); // n + 1
    }

    #[test]
    fn identify_by_granular() {
        let view = view_of(&square(), false);
        let g = SwarmGeometry::build(&view, NamingScheme::ByLex, false).unwrap();
        // A point 2 units North of home 1 is in home 1's granular.
        let p = g.home(1) + Vec2::NORTH * 2.0;
        assert_eq!(g.identify(p), Some(1));
        // A point far from every granular matches none.
        assert_eq!(g.identify(Point::new(500.0, 500.0)), None);
        // Home points are identified as themselves.
        for i in 0..4 {
            assert_eq!(g.identify(g.home(i)), Some(i));
        }
    }

    #[test]
    fn classify_roundtrip_through_keyboard() {
        let view = view_of(&square(), false);
        let g = SwarmGeometry::build(&view, NamingScheme::ByLex, false).unwrap();
        let target = g.keyboard(2).target(3, SliceSide::One, 0.5).unwrap();
        let (home, zone) = g.classify(target).unwrap();
        assert_eq!(home, 2);
        match zone {
            SliceZone::OnSlice { slice, side, .. } => {
                assert_eq!(slice, 3);
                assert_eq!(side, SliceSide::One);
            }
            SliceZone::Center => panic!("should be on a slice"),
        }
    }

    #[test]
    fn too_few_robots() {
        let view = View::new(
            Observed {
                position: Point::ORIGIN,
                id: None,
            },
            vec![],
            1.0,
        );
        assert!(matches!(
            SwarmGeometry::build(&view, NamingScheme::ByLex, false),
            Err(CoreError::WrongCohortSize { .. })
        ));
    }

    #[test]
    fn sec_center_rejection_propagates() {
        // 3 robots with one at the SEC centre.
        let pts = vec![Point::new(0.0, 2.0), Point::new(0.0, -2.0), Point::ORIGIN];
        let view = view_of(&pts, false);
        assert!(matches!(
            SwarmGeometry::build(&view, NamingScheme::BySec, false),
            Err(CoreError::Naming(_))
        ));
        // …but ByLex is fine with the same layout.
        assert!(SwarmGeometry::build(&view, NamingScheme::ByLex, false).is_ok());
    }
}
