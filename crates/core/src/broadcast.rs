//! One-to-many and one-to-all communication (§5).
//!
//! The paper notes its protocols "can be easily adapted to implement
//! efficiently one-to-many or one-to-all explicit communication". Two
//! mechanisms realize that here:
//!
//! * **one-to-all** — the *self-slice convention*: a robot never needs to
//!   address itself, so an excursion on its own diameter is free to mean
//!   "to everyone". Every observer already decodes every stream
//!   (redundancy), so a broadcast costs exactly one unicast's moves. This
//!   is wired into [`MessageStreams`](crate::decode::MessageStreams) and
//!   exposed as `send_broadcast` on the swarm protocols and
//!   [`Network::broadcast`](crate::session::Network::broadcast).
//! * **one-to-many** — [`multicast`]: address each recipient in turn. A
//!   smarter encoding (group labels) would need a naming of robot
//!   *subsets*, which the paper does not develop; repeated unicast keeps
//!   the decoder unchanged and the cost transparent (`|targets|` × one
//!   unicast).

use crate::session::{Network, SwarmProtocol};
use crate::CoreError;

/// Sends `payload` from `from` to every robot in `targets`.
///
/// Skips `from` itself if present in `targets` (a robot does not message
/// itself); duplicate targets are sent only once.
///
/// # Errors
///
/// Propagates the first [`Network::send`] failure; messages queued before
/// the failure remain queued.
pub fn multicast<P: SwarmProtocol>(
    net: &mut Network<P>,
    from: usize,
    targets: &[usize],
    payload: &[u8],
) -> Result<usize, CoreError> {
    let mut sent = 0usize;
    let mut seen = vec![false; net.cohort()];
    for &to in targets {
        if to == from || to >= seen.len() || seen[to] {
            if to >= seen.len() {
                return Err(CoreError::UnknownDestination {
                    dest: to,
                    cohort: seen.len(),
                });
            }
            continue;
        }
        net.send(from, to, payload)?;
        seen[to] = true;
        sent += 1;
    }
    Ok(sent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SyncNetwork;
    use stigmergy_geometry::Point;

    fn net(seed: u64) -> SyncNetwork {
        let positions: Vec<Point> = (0..5)
            .map(|k| {
                let theta = std::f64::consts::TAU * (k as f64) / 5.0;
                Point::new(12.0 * theta.cos(), 12.0 * theta.sin() + (k as f64) * 0.1)
            })
            .collect();
        SyncNetwork::anonymous_with_direction(positions, seed).unwrap()
    }

    #[test]
    fn multicast_reaches_selected_targets() {
        let mut n = net(1);
        let sent = multicast(&mut n, 0, &[1, 3], b"subset").unwrap();
        assert_eq!(sent, 2);
        n.run_until_delivered(20_000).unwrap();
        assert_eq!(n.inbox(1), vec![(0, b"subset".to_vec())]);
        assert_eq!(n.inbox(3), vec![(0, b"subset".to_vec())]);
        assert!(n.inbox(2).is_empty());
        assert!(n.inbox(4).is_empty());
    }

    #[test]
    fn multicast_skips_self_and_duplicates() {
        let mut n = net(2);
        let sent = multicast(&mut n, 2, &[2, 4, 4, 0], b"x").unwrap();
        assert_eq!(sent, 2);
        n.run_until_delivered(20_000).unwrap();
        assert_eq!(n.inbox(4).len(), 1);
        assert_eq!(n.inbox(0).len(), 1);
    }

    #[test]
    fn multicast_rejects_bad_target() {
        let mut n = net(3);
        assert!(matches!(
            multicast(&mut n, 0, &[1, 99], b"x"),
            Err(CoreError::UnknownDestination { dest: 99, .. })
        ));
    }

    #[test]
    fn broadcast_costs_one_unicast() {
        // One-to-all via the self-slice convention: one message's worth of
        // excursions reaches all four peers.
        let mut n = net(4);
        n.broadcast(0, b"cheap").unwrap();
        n.run_until_delivered(20_000).unwrap();
        let signals = n.engine().protocol(0).signals_sent();
        // A 5-byte payload frames to 16 + 40 = 56 bits = 56 excursions.
        assert_eq!(signals, 56);
        for i in 1..5 {
            assert_eq!(n.inbox(i), vec![(0, b"cheap".to_vec())]);
        }
    }

    #[test]
    fn broadcast_survives_the_fully_symmetric_ring() {
        // The degenerate all-robots-on-SEC configuration: a perfectly
        // regular ring, full rotational symmetry group. Observer-relative
        // SEC naming never needed a *common* naming, so transport-level
        // broadcast works unchanged; only symmetry-sensitive layers above
        // — leader election in `crates/algo` — must reject it, which is
        // what `naming::election_signature`'s deliberate collisions
        // enforce.
        let positions: Vec<Point> = (0..4)
            .map(|k| {
                let theta = std::f64::consts::TAU * (k as f64) / 4.0;
                Point::new(9.0 * theta.cos(), 9.0 * theta.sin())
            })
            .collect();
        assert!(!crate::naming::rotational_symmetries(&positions)
            .unwrap()
            .is_empty());
        let mut n = SyncNetwork::anonymous(positions, 6).unwrap();
        n.broadcast(2, b"sym").unwrap();
        n.run_until_delivered(30_000).unwrap();
        for i in [0usize, 1, 3] {
            assert_eq!(n.inbox(i), vec![(2, b"sym".to_vec())]);
        }
    }

    #[test]
    fn multicast_to_everyone_matches_broadcast_semantics() {
        let mut a = net(5);
        multicast(&mut a, 1, &[0, 2, 3, 4], b"m").unwrap();
        a.run_until_delivered(30_000).unwrap();
        let mut b = net(5);
        b.broadcast(1, b"m").unwrap();
        b.run_until_delivered(30_000).unwrap();
        for i in [0usize, 2, 3, 4] {
            assert_eq!(a.inbox(i), b.inbox(i), "robot {i}");
        }
        // …but multicast cost 4× the moves.
        assert!(a.engine().protocol(1).signals_sent() > 3 * b.engine().protocol(1).signals_sent());
    }
}
