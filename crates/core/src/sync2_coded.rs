//! The §3.1 byte-coding optimisation of protocol P1.
//!
//! "If each robot `r` knows the maximum distance `σ_{r′}` that the other
//! robot can cover in one step, then the protocol can easily be adapted to
//! reduce the number of moves … the total distance `2σ` … can be divided
//! by the number of possible bytes." [`Sync2Coded`] is [`Sync2`] with a
//! [`LevelAlphabet`]: each excursion's *side* and *magnitude* together
//! encode a whole symbol, carrying `log2(2·levels)` bits per (move,
//! return) pair instead of one.
//!
//! Magnitudes are fractions of the maximal lateral step, so the scheme is
//! scale-invariant: the receiver recovers the fraction as
//! `|offset| / (d₀/4)` in its own units. Frames are padded to a whole
//! number of symbols; the receiver discards the tail of the symbol that
//! completes a frame, so back-to-back messages stay aligned.
//!
//! [`Sync2`]: crate::sync2::Sync2

use std::collections::VecDeque;
use stigmergy_coding::alphabet::{Displacement, LevelAlphabet};
use stigmergy_coding::framing::{encode_frame, FrameDecoder};
use stigmergy_coding::Bit;
use stigmergy_geometry::{Point, Tolerance, Vec2};
use stigmergy_robots::{MovementProtocol, View};

/// Two-robot synchronous communication with multi-level displacement
/// coding.
#[derive(Debug, Clone)]
pub struct Sync2Coded {
    alphabet: LevelAlphabet,
    counter: u64,
    home: Option<Point>,
    peer_home: Option<Point>,
    lateral_step: f64,
    outgoing: VecDeque<usize>,
    decoder: FrameDecoder,
    inbox: Vec<Vec<u8>>,
    signals_sent: u64,
}

impl Sync2Coded {
    /// Creates an instance using the given displacement alphabet.
    #[must_use]
    pub fn new(alphabet: LevelAlphabet) -> Self {
        Self {
            alphabet,
            counter: 0,
            home: None,
            peer_home: None,
            lateral_step: 0.0,
            outgoing: VecDeque::new(),
            decoder: FrameDecoder::new(),
            inbox: Vec::new(),
            signals_sent: 0,
        }
    }

    /// The alphabet in use.
    #[must_use]
    pub fn alphabet(&self) -> LevelAlphabet {
        self.alphabet
    }

    /// Queues a message for the peer.
    ///
    /// The framed bit stream is packed into symbols; the tail is padded to
    /// a whole symbol.
    pub fn send(&mut self, payload: &[u8]) {
        let bits = encode_frame(payload);
        self.outgoing.extend(self.alphabet.pack(&bits));
    }

    /// Messages received so far.
    #[must_use]
    pub fn inbox(&self) -> &[Vec<u8>] {
        &self.inbox
    }

    /// Whether all queued symbols have been sent.
    #[must_use]
    pub fn is_drained(&self) -> bool {
        self.outgoing.is_empty()
    }

    /// Excursions made so far (one per symbol).
    #[must_use]
    pub fn signals_sent(&self) -> u64 {
        self.signals_sent
    }

    fn my_right(&self) -> Option<Vec2> {
        let facing = (self.peer_home? - self.home?).normalized().ok()?;
        Some(facing.perp_cw())
    }

    fn peer_right(&self) -> Option<Vec2> {
        let facing = (self.home? - self.peer_home?).normalized().ok()?;
        Some(facing.perp_cw())
    }

    fn decode_peer(&mut self, peer_pos: Point) {
        let (Some(peer_home), Some(right)) = (self.peer_home, self.peer_right()) else {
            return;
        };
        let disp = peer_pos - peer_home;
        let tol = Tolerance::default();
        if tol.zero(disp.norm()) {
            return; // silence
        }
        let u = disp.dot(right);
        let d = Displacement {
            one_side: u < 0.0,
            fraction: (u.abs() / self.lateral_step).clamp(0.0, 1.0),
        };
        let Ok(symbol) = self.alphabet.decode(d) else {
            return;
        };
        // Unpack the symbol's bits; if a frame completes mid-symbol, the
        // remaining bits are sender-side padding — drop them.
        let w = self.alphabet.bits_per_symbol().max(1);
        for i in (0..w).rev() {
            let bit = Bit::from_bool(symbol & (1 << i) != 0);
            if let Some(msg) = self.decoder.push_bit(bit) {
                self.inbox.push(msg);
                break;
            }
        }
    }
}

impl MovementProtocol for Sync2Coded {
    fn on_activate(&mut self, view: &View) -> Point {
        let c = self.counter;
        self.counter += 1;

        if self.home.is_none() {
            self.home = Some(view.own_position());
            let peer = view.others().first().map(|o| o.position);
            self.peer_home = peer;
            if let (Some(h), Some(p)) = (self.home, peer) {
                self.lateral_step = (h.distance(p) / 4.0).min(view.sigma());
            }
        }
        let (Some(home), Some(_)) = (self.home, self.peer_home) else {
            return view.own_position();
        };

        if c.is_multiple_of(2) {
            let Some(symbol) = self.outgoing.pop_front() else {
                return home;
            };
            self.signals_sent += 1;
            let d = self
                .alphabet
                .encode(symbol)
                .expect("queued symbols are in range");
            let right = self.my_right().expect("homes are distinct");
            let dir = if d.one_side { -right } else { right };
            home + dir * (self.lateral_step * d.fraction)
        } else {
            if let Some(peer) = view.others().first() {
                self.decode_peer(peer.position);
            }
            home
        }
    }
}

impl Default for Sync2Coded {
    fn default() -> Self {
        Self::new(LevelAlphabet::binary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stigmergy_robots::Engine;

    fn engine(levels: usize, seed: u64) -> Engine<Sync2Coded> {
        let a = LevelAlphabet::new(levels).unwrap();
        Engine::builder()
            .positions([Point::new(0.0, 0.0), Point::new(8.0, 0.0)])
            .protocols([Sync2Coded::new(a), Sync2Coded::new(a)])
            .frame_seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn binary_alphabet_delivers() {
        let mut e = engine(1, 1);
        e.protocol_mut(0).send(b"plain");
        let out = e
            .run_until(500, |e| !e.protocol(1).inbox().is_empty())
            .unwrap();
        assert!(out.satisfied);
        assert_eq!(e.protocol(1).inbox()[0], b"plain".to_vec());
    }

    #[test]
    fn larger_alphabets_deliver() {
        for levels in [2usize, 4, 8, 128] {
            let mut e = engine(levels, 10 + levels as u64);
            e.protocol_mut(0).send(b"waggle dance!");
            let out = e
                .run_until(800, |e| !e.protocol(1).inbox().is_empty())
                .unwrap();
            assert!(out.satisfied, "levels={levels}");
            assert_eq!(e.protocol(1).inbox()[0], b"waggle dance!".to_vec());
        }
    }

    #[test]
    fn byte_alphabet_cuts_moves_eightfold() {
        // levels = 128 → 256 symbols → 8 bits per move (the paper's
        // "bytes").
        let payload = vec![0xC3u8; 32];
        let mut bin = engine(1, 2);
        bin.protocol_mut(0).send(&payload);
        bin.run_until(2_000, |e| !e.protocol(1).inbox().is_empty())
            .unwrap();
        let mut byte = engine(128, 3);
        byte.protocol_mut(0).send(&payload);
        byte.run_until(2_000, |e| !e.protocol(1).inbox().is_empty())
            .unwrap();
        let (b, y) = (
            bin.protocol(0).signals_sent(),
            byte.protocol(0).signals_sent(),
        );
        assert_eq!(b, y * 8, "binary {b} vs byte {y}");
        assert_eq!(byte.protocol(1).inbox()[0], payload);
    }

    #[test]
    fn back_to_back_messages_stay_aligned() {
        // The padding-discard logic must keep frame boundaries straight.
        let mut e = engine(4, 4); // 3 bits per symbol: frames misalign
        e.protocol_mut(0).send(b"a");
        e.protocol_mut(0).send(b"bc");
        e.protocol_mut(0).send(b"def");
        let out = e
            .run_until(2_000, |e| e.protocol(1).inbox().len() == 3)
            .unwrap();
        assert!(out.satisfied);
        assert_eq!(
            e.protocol(1).inbox(),
            &[b"a".to_vec(), b"bc".to_vec(), b"def".to_vec()]
        );
    }

    #[test]
    fn duplex_with_different_directions() {
        let mut e = engine(8, 5);
        e.protocol_mut(0).send(b"fwd");
        e.protocol_mut(1).send(b"rev");
        let out = e
            .run_until(1_000, |e| {
                !e.protocol(0).inbox().is_empty() && !e.protocol(1).inbox().is_empty()
            })
            .unwrap();
        assert!(out.satisfied);
        assert_eq!(e.protocol(1).inbox()[0], b"fwd".to_vec());
        assert_eq!(e.protocol(0).inbox()[0], b"rev".to_vec());
    }

    #[test]
    fn silent_when_idle() {
        let mut e = engine(8, 6);
        e.run(50).unwrap();
        assert_eq!(e.trace().path_length(0), 0.0);
        assert!(e.protocol(0).is_drained());
        assert_eq!(e.protocol(0).alphabet().size(), 16);
    }
}
