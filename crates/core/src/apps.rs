//! Distributed algorithms over the movement channel.
//!
//! The paper's headline: "Our protocols enable the use of distributing
//! algorithms based on message exchanges among swarms of stigmergic
//! robots." This module makes that concrete: an [`Application`] is a
//! per-robot message-driven state machine, and [`run_app`] executes a
//! cohort of them with **every** message travelling as movement signals
//! through a [`Network`]. Two classical algorithms are included:
//!
//! * [`LeaderElection`] — every robot floods the maximum nonce it has
//!   seen; after quiescence, all agree on the robot with the largest
//!   nonce. (With observable IDs the nonce is the ID; anonymous robots
//!   use seeded nonces, matching the paper's remark that naming enables
//!   "classical problems … such that leader election".)
//! * [`EchoAggregate`] — a coordinator broadcasts a query; every robot
//!   answers with its value; the coordinator aggregates (here: sums).
//!
//! The driver alternates *compute* (apps consume inboxes, emit messages)
//! and *transport* (the movement protocols deliver them) until global
//! quiescence — the standard asynchronous-rounds execution model.

use crate::session::{Network, SwarmProtocol};
use crate::CoreError;

/// A per-robot message-driven application.
pub trait Application {
    /// Called once before any message flows; returns initial messages as
    /// `(destination, payload)` pairs.
    fn on_start(&mut self, me: usize, cohort: usize) -> Vec<(usize, Vec<u8>)>;

    /// Called for each delivered message; returns follow-up messages.
    fn on_message(&mut self, from: usize, payload: &[u8]) -> Vec<(usize, Vec<u8>)>;
}

/// Runs one [`Application`] instance per robot over the network until
/// quiescence (no app emits anything and all transport completed) or the
/// round budget runs out.
///
/// Returns the number of compute/transport rounds executed.
///
/// # Errors
///
/// * [`CoreError::Timeout`] if quiescence is not reached within
///   `max_rounds` rounds or a round's transport exceeds
///   `steps_per_round`.
/// * Any transport error from the underlying network.
pub fn run_app<P, A>(
    net: &mut Network<P>,
    apps: &mut [A],
    max_rounds: usize,
    steps_per_round: u64,
) -> Result<usize, CoreError>
where
    P: SwarmProtocol,
    A: Application,
{
    assert_eq!(
        apps.len(),
        net.cohort(),
        "one application instance per robot"
    );
    let n = net.cohort();
    let mut outgoing: Vec<(usize, usize, Vec<u8>)> = Vec::new();
    for (me, app) in apps.iter_mut().enumerate() {
        for (dest, payload) in app.on_start(me, n) {
            outgoing.push((me, dest, payload));
        }
    }
    // How much of each robot's inbox has been consumed so far.
    let mut consumed = vec![0usize; n];

    for round in 0..max_rounds {
        if outgoing.is_empty() {
            return Ok(round);
        }
        for (from, to, payload) in outgoing.drain(..) {
            net.send(from, to, &payload)?;
        }
        net.run_until_delivered(steps_per_round)?;
        for me in 0..n {
            let inbox = net.inbox(me);
            for (from, payload) in &inbox[consumed[me]..] {
                for (dest, reply) in apps[me].on_message(*from, payload) {
                    outgoing.push((me, dest, reply));
                }
            }
            consumed[me] = inbox.len();
        }
    }
    if outgoing.is_empty() {
        Ok(max_rounds)
    } else {
        Err(CoreError::Timeout {
            steps: max_rounds as u64,
        })
    }
}

/// Flooding maximum-finding leader election.
///
/// Every robot starts by sending its nonce to every other robot; whenever
/// a robot learns a larger nonce it forwards it to everyone. At
/// quiescence all robots agree on the maximum, and the robot holding it
/// is the leader.
#[derive(Debug, Clone)]
pub struct LeaderElection {
    nonce: u64,
    best: u64,
    best_holder: Option<usize>,
    me: usize,
    cohort: usize,
}

impl LeaderElection {
    /// Creates an instance with this robot's nonce (its observable ID, or
    /// a seeded random value for anonymous robots).
    #[must_use]
    pub fn new(nonce: u64) -> Self {
        Self {
            nonce,
            best: nonce,
            best_holder: None,
            me: 0,
            cohort: 0,
        }
    }

    /// The leader this robot currently believes in (its index), or
    /// `None` before any exchange settles it.
    #[must_use]
    pub fn leader(&self) -> Option<usize> {
        self.best_holder
    }

    /// The winning nonce this robot currently knows.
    #[must_use]
    pub fn best_nonce(&self) -> u64 {
        self.best
    }

    /// The announcement payload: best nonce followed by the holder index
    /// (two bytes: cohorts up to 65536).
    fn payload(&self) -> Vec<u8> {
        let mut p = self.best.to_be_bytes().to_vec();
        let holder = u16::try_from(self.best_holder.unwrap_or(self.me))
            .expect("cohorts beyond u16 are outside the model's scale");
        p.extend_from_slice(&holder.to_be_bytes());
        p
    }

    /// Broadcast-by-unicast of the current best to everyone else.
    fn announce(&self) -> Vec<(usize, Vec<u8>)> {
        let payload = self.payload();
        (0..self.cohort)
            .filter(|&d| d != self.me)
            .map(|d| (d, payload.clone()))
            .collect()
    }
}

impl Application for LeaderElection {
    fn on_start(&mut self, me: usize, cohort: usize) -> Vec<(usize, Vec<u8>)> {
        self.me = me;
        self.cohort = cohort;
        self.best = self.nonce;
        self.best_holder = Some(me);
        self.announce()
    }

    fn on_message(&mut self, _from: usize, payload: &[u8]) -> Vec<(usize, Vec<u8>)> {
        let Some((nonce_bytes, holder_bytes)) = payload.split_last_chunk::<2>() else {
            return Vec::new();
        };
        let Ok(bytes) = <[u8; 8]>::try_from(nonce_bytes) else {
            return Vec::new();
        };
        let nonce = u64::from_be_bytes(bytes);
        let holder = usize::from(u16::from_be_bytes(*holder_bytes));
        if nonce > self.best {
            self.best = nonce;
            self.best_holder = Some(holder);
            // Forward the improvement (flooding); robots that already
            // know it stay silent, so the flood terminates.
            return self.announce();
        }
        Vec::new()
    }
}

/// Query/response aggregation: a coordinator asks, everyone answers, the
/// coordinator sums.
#[derive(Debug, Clone)]
pub struct EchoAggregate {
    value: u32,
    coordinator: usize,
    me: usize,
    sum: u64,
    replies: usize,
}

impl EchoAggregate {
    /// Creates an instance holding `value`, with the given coordinator.
    #[must_use]
    pub fn new(value: u32, coordinator: usize) -> Self {
        Self {
            value,
            coordinator,
            me: 0,
            sum: 0,
            replies: 0,
        }
    }

    /// The aggregated sum (meaningful on the coordinator after the run).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Number of replies the coordinator has received.
    #[must_use]
    pub fn replies(&self) -> usize {
        self.replies
    }
}

impl Application for EchoAggregate {
    fn on_start(&mut self, me: usize, cohort: usize) -> Vec<(usize, Vec<u8>)> {
        self.me = me;
        if me == self.coordinator {
            self.sum = u64::from(self.value);
            (0..cohort)
                .filter(|&d| d != me)
                .map(|d| (d, b"query".to_vec()))
                .collect()
        } else {
            Vec::new()
        }
    }

    fn on_message(&mut self, from: usize, payload: &[u8]) -> Vec<(usize, Vec<u8>)> {
        if payload == b"query" && from == self.coordinator {
            return vec![(self.coordinator, self.value.to_be_bytes().to_vec())];
        }
        if self.me == self.coordinator {
            if let Ok(bytes) = <[u8; 4]>::try_from(payload) {
                self.sum += u64::from(u32::from_be_bytes(bytes));
                self.replies += 1;
            }
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SyncNetwork;
    use stigmergy_geometry::Point;

    fn ring(n: usize) -> Vec<Point> {
        (0..n)
            .map(|k| {
                let theta = std::f64::consts::TAU * (k as f64) / (n as f64);
                let r = 20.0 + (k as f64) * 0.2;
                Point::new(r * theta.sin(), r * theta.cos())
            })
            .collect()
    }

    #[test]
    fn leader_election_agrees_on_the_maximum() {
        let nonces = [41u64, 97, 12, 55, 76];
        let mut net = SyncNetwork::anonymous_with_direction(ring(5), 0xA99u64).unwrap();
        let mut apps: Vec<LeaderElection> =
            nonces.iter().map(|&n| LeaderElection::new(n)).collect();
        let rounds = run_app(&mut net, &mut apps, 20, 200_000).unwrap();
        assert!(rounds >= 1);
        // Everyone elected robot 1 (nonce 97).
        for (i, app) in apps.iter().enumerate() {
            assert_eq!(app.best_nonce(), 97, "robot {i}");
            assert_eq!(app.leader(), Some(1), "robot {i}");
        }
    }

    #[test]
    fn leader_election_with_reversed_nonces() {
        // Max at the last index; floods must travel the other way.
        let nonces = [5u64, 4, 3, 2, 100];
        let mut net = SyncNetwork::anonymous(ring(5), 2).unwrap();
        let mut apps: Vec<LeaderElection> =
            nonces.iter().map(|&n| LeaderElection::new(n)).collect();
        run_app(&mut net, &mut apps, 20, 200_000).unwrap();
        assert!(apps.iter().all(|a| a.leader() == Some(4)));
    }

    #[test]
    fn echo_aggregate_sums_all_values() {
        let values = [10u32, 20, 30, 40];
        let mut net = SyncNetwork::anonymous_with_direction(ring(4), 3).unwrap();
        let mut apps: Vec<EchoAggregate> =
            values.iter().map(|&v| EchoAggregate::new(v, 2)).collect();
        run_app(&mut net, &mut apps, 10, 200_000).unwrap();
        assert_eq!(apps[2].sum(), 100);
        assert_eq!(apps[2].replies(), 3);
        // Non-coordinators aggregated nothing.
        assert_eq!(apps[0].replies(), 0);
    }

    #[test]
    fn quiescence_without_traffic() {
        // Apps that never emit reach quiescence in zero rounds.
        struct Silent;
        impl Application for Silent {
            fn on_start(&mut self, _: usize, _: usize) -> Vec<(usize, Vec<u8>)> {
                Vec::new()
            }
            fn on_message(&mut self, _: usize, _: &[u8]) -> Vec<(usize, Vec<u8>)> {
                Vec::new()
            }
        }
        let mut net = SyncNetwork::anonymous_with_direction(ring(3), 4).unwrap();
        let mut apps = vec![Silent, Silent, Silent];
        assert_eq!(run_app(&mut net, &mut apps, 5, 10_000).unwrap(), 0);
    }

    #[test]
    #[should_panic(expected = "one application instance per robot")]
    fn cardinality_checked() {
        let mut net = SyncNetwork::anonymous_with_direction(ring(3), 5).unwrap();
        let mut apps = vec![LeaderElection::new(1)];
        let _ = run_app(&mut net, &mut apps, 5, 10_000);
    }
}
