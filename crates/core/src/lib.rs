//! **stigmergy** — movement-signal communication for deaf, dumb robots.
//!
//! A faithful, executable reproduction of *Deaf, Dumb, and Chatting Robots:
//! Enabling Distributed Computation and Fault-Tolerance Among Stigmergic
//! Robots* (Dieudonné, Dolev, Petit, Segal — PODC 2009 brief announcement /
//! INRIA RR inria-00363081).
//!
//! Robots that can observe each other but have **no communication device**
//! exchange arbitrary messages by *moving*: a bit is a small excursion whose
//! direction encodes the value and whose granular slice encodes the
//! addressee. This crate implements all six protocols of the paper on top
//! of the [`stigmergy_robots`] SSM simulator:
//!
//! | Protocol | Paper § | Setting | Capabilities |
//! |----------|---------|---------|--------------|
//! | [`Sync2`](sync2::Sync2) | 3.1 | synchronous, n = 2 | chirality |
//! | [`SyncRouted`](sync_swarm::SyncRouted) | 3.2 | synchronous, n ≥ 2 | IDs + direction |
//! | [`SyncAnonDir`](sync_swarm::SyncAnonDir) | 3.3 | synchronous, n ≥ 2 | direction |
//! | [`SyncAnonChir`](sync_swarm::SyncAnonChir) | 3.4 | synchronous, n ≥ 2 | chirality only |
//! | [`Async2`](async2::Async2) | 4.1 | asynchronous, n = 2 | chirality |
//! | [`AsyncSwarm`](async_n::AsyncSwarm) | 4.2 | asynchronous, n ≥ 2 | chirality only |
//!
//! plus the §5 extensions: broadcast, `k`-segment addressing, byte-level
//! coding, flocking composition, and the wireless-failover backup channel.
//! The [`paced`] module adds multi-symbol signalling with forward error
//! correction — the byte optimisation re-derived so it survives
//! adversarial fair schedulers and lossy movement.
//!
//! Most applications use the [`session`] façade, which wires protocols,
//! frames, and schedulers together and exposes a message-passing API:
//!
//! ```
//! use stigmergy::session::SyncNetwork;
//! use stigmergy_geometry::Point;
//!
//! let mut net = SyncNetwork::anonymous_with_direction(
//!     vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0), Point::new(5.0, 8.0)],
//!     42,
//! )?;
//! net.send(0, 2, b"hello")?;
//! net.run_until_delivered(10_000)?;
//! assert_eq!(net.inbox(2), vec![(0, b"hello".to_vec())]);
//! # Ok::<(), stigmergy::CoreError>(())
//! ```

pub mod ack;
pub mod apps;
pub mod async2;
pub mod async_n;
pub mod backup;
pub mod broadcast;
pub mod decode;
pub mod flocking;
pub mod kslice;
pub mod naming;
pub mod paced;
pub mod preprocess;
pub mod session;
pub mod stabilize;
pub mod sync2;
pub mod sync2_coded;
pub mod sync_swarm;

pub use naming::{
    election_signature, election_signatures, label_by_id, label_by_lex, label_by_sec,
    rotational_symmetries, Labeling, NamingError,
};
pub use preprocess::{NamingScheme, SwarmGeometry};

use std::error::Error;
use std::fmt;

/// Errors from protocol construction and sessions.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// The protocol requires a different cohort size.
    WrongCohortSize {
        /// What the protocol needs.
        needed: &'static str,
        /// What was supplied.
        got: usize,
    },
    /// A destination index/label does not exist.
    UnknownDestination {
        /// The offending destination.
        dest: usize,
        /// Cohort size.
        cohort: usize,
    },
    /// A robot tried to send a message to itself.
    SelfAddressed,
    /// Naming failed (degenerate configuration).
    Naming(NamingError),
    /// The underlying model failed.
    Model(stigmergy_robots::ModelError),
    /// The underlying geometry failed.
    Geometry(stigmergy_geometry::GeometryError),
    /// A run exhausted its step budget before the goal was reached.
    Timeout {
        /// Steps executed.
        steps: u64,
    },
    /// A payload exceeds the frame format's 65535-byte maximum.
    PayloadTooLarge {
        /// The offending payload length.
        len: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::WrongCohortSize { needed, got } => {
                write!(f, "protocol needs {needed} robots, got {got}")
            }
            CoreError::UnknownDestination { dest, cohort } => {
                write!(f, "destination {dest} out of range for cohort {cohort}")
            }
            CoreError::SelfAddressed => write!(f, "a robot cannot message itself"),
            CoreError::Naming(e) => write!(f, "naming failed: {e}"),
            CoreError::Model(e) => write!(f, "model error: {e}"),
            CoreError::Geometry(e) => write!(f, "geometry error: {e}"),
            CoreError::Timeout { steps } => {
                write!(f, "goal not reached within {steps} steps")
            }
            CoreError::PayloadTooLarge { len } => {
                write!(
                    f,
                    "payload of {len} bytes exceeds the 65535-byte frame maximum"
                )
            }
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Naming(e) => Some(e),
            CoreError::Model(e) => Some(e),
            CoreError::Geometry(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NamingError> for CoreError {
    fn from(e: NamingError) -> Self {
        CoreError::Naming(e)
    }
}

impl From<stigmergy_robots::ModelError> for CoreError {
    fn from(e: stigmergy_robots::ModelError) -> Self {
        CoreError::Model(e)
    }
}

impl From<stigmergy_geometry::GeometryError> for CoreError {
    fn from(e: stigmergy_geometry::GeometryError) -> Self {
        CoreError::Geometry(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_nonempty() {
        let errors: Vec<CoreError> = vec![
            CoreError::WrongCohortSize {
                needed: "exactly 2",
                got: 5,
            },
            CoreError::UnknownDestination { dest: 9, cohort: 3 },
            CoreError::SelfAddressed,
            CoreError::Naming(NamingError::RobotAtSecCenter { robot: 0 }),
            CoreError::Timeout { steps: 100 },
            CoreError::Geometry(stigmergy_geometry::GeometryError::ZeroDirection),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn sources_chain() {
        let e: CoreError = NamingError::RobotAtSecCenter { robot: 1 }.into();
        assert!(Error::source(&e).is_some());
    }
}
