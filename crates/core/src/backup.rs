//! The communication backup (§1, §5): movement signals as a failover for
//! faulty wireless devices.
//!
//! "In the context of robots communicating by means of communication
//! (e.g., wireless), since our protocols allow robots to explicitly
//! communicate even if their communication devices are faulty, our
//! solution can serve as a communication backup." This module makes that
//! claim executable: a [`Wireless`] channel that can lose, corrupt, or
//! permanently fail; CRC-8 integrity so corruption is *detected*; and
//! [`BackupChannel`], which falls back to a movement-signal
//! [`SyncNetwork`] whenever the wireless path fails. Experiment E5
//! measures the failover overhead.

use crate::session::SyncNetwork;
use crate::CoreError;
use stigmergy_coding::checksum::{protect, verify};
use stigmergy_geometry::Point;
use stigmergy_scheduler::rng::SplitMix64;

/// Outcome of one wireless transmission attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Delivery {
    /// The frame arrived (possibly corrupted — integrity is the
    /// receiver's problem).
    Arrived(Vec<u8>),
    /// The frame vanished (sender sees a timeout).
    Lost,
}

/// A channel that moves bytes point-to-point.
pub trait Channel {
    /// Attempts to transmit `frame` from `from` to `to`.
    fn transmit(&mut self, from: usize, to: usize, frame: &[u8]) -> Delivery;
}

/// A simulated wireless device with seeded loss, bit-corruption, and
/// permanent failure.
#[derive(Debug, Clone)]
pub struct Wireless {
    rng: SplitMix64,
    loss_rate: f64,
    corruption_rate: f64,
    burst: usize,
    fail_after: Option<u64>,
    transmissions: u64,
}

impl Wireless {
    /// A perfectly reliable device.
    #[must_use]
    pub fn reliable(seed: u64) -> Self {
        Self::new(seed, 0.0, 0.0, None)
    }

    /// A device with the given per-transmission loss and corruption
    /// probabilities, optionally dying permanently after `fail_after`
    /// transmissions (every later transmission is lost). Corruption
    /// events flip one bit in one byte.
    ///
    /// # Panics
    ///
    /// Panics if a rate is outside `[0, 1]`.
    #[must_use]
    pub fn new(seed: u64, loss_rate: f64, corruption_rate: f64, fail_after: Option<u64>) -> Self {
        Self::noisy(seed, loss_rate, corruption_rate, 1, fail_after)
    }

    /// As [`Wireless::new`], but each corruption event flips one bit in
    /// each of `burst` **distinct** bytes of the frame (clamped to the
    /// frame length). A burst wider than a FEC interleaving block defeats
    /// single-symbol correction, which is what the hardened session's
    /// escalation path is tested against.
    ///
    /// # Panics
    ///
    /// Panics if a rate is outside `[0, 1]` or `burst` is zero.
    #[must_use]
    pub fn noisy(
        seed: u64,
        loss_rate: f64,
        corruption_rate: f64,
        burst: usize,
        fail_after: Option<u64>,
    ) -> Self {
        assert!((0.0..=1.0).contains(&loss_rate), "loss rate in [0,1]");
        assert!(
            (0.0..=1.0).contains(&corruption_rate),
            "corruption rate in [0,1]"
        );
        assert!(burst > 0, "burst must corrupt at least one byte");
        Self {
            rng: SplitMix64::new(seed),
            loss_rate,
            corruption_rate,
            burst,
            fail_after,
            transmissions: 0,
        }
    }

    /// Total transmissions attempted.
    #[must_use]
    pub fn transmissions(&self) -> u64 {
        self.transmissions
    }

    /// Whether the device has permanently failed.
    #[must_use]
    pub fn is_dead(&self) -> bool {
        self.fail_after.is_some_and(|f| self.transmissions >= f)
    }
}

impl Channel for Wireless {
    fn transmit(&mut self, _from: usize, _to: usize, frame: &[u8]) -> Delivery {
        let dead = self.is_dead();
        self.transmissions += 1;
        if dead || self.rng.chance(self.loss_rate) {
            return Delivery::Lost;
        }
        let mut data = frame.to_vec();
        if !data.is_empty() && self.rng.chance(self.corruption_rate) {
            // Partial Fisher–Yates: the first `burst` entries of `order`
            // are distinct byte indices, so a burst never cancels itself
            // by flipping the same bit twice.
            let mut order: Vec<usize> = (0..data.len()).collect();
            for k in 0..self.burst.min(data.len()) {
                let j = k + self.rng.below(order.len() - k);
                order.swap(k, j);
                let bit = self.rng.below(8);
                data[order[k]] ^= 1 << bit;
            }
        }
        Delivery::Arrived(data)
    }
}

/// How a message ultimately got through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Delivered over wireless, integrity verified.
    Wireless,
    /// Delivered by movement signals after a wireless loss (timeout).
    MovementAfterLoss,
    /// Delivered by movement signals after detected corruption.
    MovementAfterCorruption,
}

/// Failover statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BackupStats {
    /// Messages that went through over wireless.
    pub wireless_ok: u64,
    /// Fallbacks triggered by loss.
    pub fallback_loss: u64,
    /// Fallbacks triggered by detected corruption.
    pub fallback_corruption: u64,
    /// Movement-channel instants spent on fallbacks.
    pub movement_steps: u64,
}

impl BackupStats {
    /// Total fallbacks.
    #[must_use]
    pub fn fallbacks(&self) -> u64 {
        self.fallback_loss + self.fallback_corruption
    }
}

/// A fault-tolerant channel: wireless first, movement signals as backup.
#[derive(Debug)]
pub struct BackupChannel {
    wireless: Wireless,
    movement: SyncNetwork,
    fallback_budget: u64,
    stats: BackupStats,
}

impl BackupChannel {
    /// Builds a backup channel over the robots at `positions`.
    ///
    /// `fallback_budget` bounds the movement-channel instants per message.
    ///
    /// # Errors
    ///
    /// Fails on configurations the movement network rejects.
    pub fn new(
        wireless: Wireless,
        positions: Vec<Point>,
        seed: u64,
        fallback_budget: u64,
    ) -> Result<Self, CoreError> {
        Ok(Self {
            wireless,
            movement: SyncNetwork::anonymous_with_direction(positions, seed)?,
            fallback_budget,
            stats: BackupStats::default(),
        })
    }

    /// Sends `payload` from `from` to `to`, falling back to movement
    /// signals on wireless failure. Returns how it got through.
    ///
    /// # Errors
    ///
    /// * [`CoreError::Timeout`] if the movement fallback exhausts its
    ///   budget.
    /// * Validation errors from the movement network (bad indices).
    pub fn send(&mut self, from: usize, to: usize, payload: &[u8]) -> Result<Route, CoreError> {
        let framed = protect(payload);
        match self.wireless.transmit(from, to, &framed) {
            Delivery::Arrived(data) => match verify(&data) {
                Ok(received) if received == payload => {
                    self.stats.wireless_ok += 1;
                    Ok(Route::Wireless)
                }
                _ => {
                    self.stats.fallback_corruption += 1;
                    self.fallback(from, to, payload)?;
                    Ok(Route::MovementAfterCorruption)
                }
            },
            Delivery::Lost => {
                self.stats.fallback_loss += 1;
                self.fallback(from, to, payload)?;
                Ok(Route::MovementAfterLoss)
            }
        }
    }

    fn fallback(&mut self, from: usize, to: usize, payload: &[u8]) -> Result<(), CoreError> {
        self.movement.send(from, to, payload)?;
        let steps = self.movement.run_until_delivered(self.fallback_budget)?;
        self.stats.movement_steps += steps;
        Ok(())
    }

    /// Failover statistics so far.
    #[must_use]
    pub fn stats(&self) -> BackupStats {
        self.stats
    }

    /// The movement network used for fallbacks (inboxes hold the messages
    /// recovered through it).
    #[must_use]
    pub fn movement(&self) -> &SyncNetwork {
        &self.movement
    }

    /// The wireless device.
    #[must_use]
    pub fn wireless(&self) -> &Wireless {
        &self.wireless
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
            Point::new(0.0, 10.0),
        ]
    }

    #[test]
    fn reliable_wireless_never_falls_back() {
        let mut ch = BackupChannel::new(Wireless::reliable(1), square(), 1, 10_000).unwrap();
        for i in 0..10u8 {
            let route = ch.send(0, 2, &[i]).unwrap();
            assert_eq!(route, Route::Wireless);
        }
        assert_eq!(ch.stats().wireless_ok, 10);
        assert_eq!(ch.stats().fallbacks(), 0);
        assert_eq!(ch.wireless().transmissions(), 10);
    }

    #[test]
    fn dead_device_uses_movement() {
        // Device dies immediately: every message goes by movement.
        let mut ch =
            BackupChannel::new(Wireless::new(2, 0.0, 0.0, Some(0)), square(), 2, 50_000).unwrap();
        let route = ch.send(1, 3, b"rescued").unwrap();
        assert_eq!(route, Route::MovementAfterLoss);
        assert_eq!(ch.stats().fallbacks(), 1);
        assert!(ch.stats().movement_steps > 0);
        assert!(ch.movement().inbox(3).contains(&(1, b"rescued".to_vec())));
    }

    #[test]
    fn corruption_is_detected_and_recovered() {
        // 100% corruption: CRC-8 flags every frame; payloads still arrive
        // via movement.
        let mut ch =
            BackupChannel::new(Wireless::new(3, 0.0, 1.0, None), square(), 3, 50_000).unwrap();
        let route = ch.send(0, 1, b"integrity").unwrap();
        assert_eq!(route, Route::MovementAfterCorruption);
        assert!(ch.movement().inbox(1).contains(&(0, b"integrity".to_vec())));
    }

    #[test]
    fn device_dying_mid_stream() {
        // First 3 transmissions fine, then the device dies.
        let mut ch =
            BackupChannel::new(Wireless::new(4, 0.0, 0.0, Some(3)), square(), 4, 50_000).unwrap();
        let mut routes = Vec::new();
        for i in 0..6u8 {
            routes.push(ch.send(0, 2, &[i]).unwrap());
        }
        assert_eq!(&routes[..3], &[Route::Wireless; 3]);
        assert_eq!(&routes[3..], &[Route::MovementAfterLoss; 3]);
        assert!(ch.wireless().is_dead());
        assert_eq!(ch.stats().wireless_ok, 3);
        assert_eq!(ch.stats().fallback_loss, 3);
    }

    #[test]
    fn lossy_channel_mixes_routes() {
        let mut ch =
            BackupChannel::new(Wireless::new(5, 0.4, 0.0, None), square(), 5, 50_000).unwrap();
        for i in 0..20u8 {
            ch.send(0, 1, &[i]).unwrap();
        }
        let s = ch.stats();
        assert!(s.wireless_ok > 0, "some should pass");
        assert!(s.fallback_loss > 0, "some should fall back");
        assert_eq!(s.wireless_ok + s.fallbacks(), 20);
    }

    #[test]
    fn movement_validation_errors_propagate() {
        let mut ch =
            BackupChannel::new(Wireless::new(6, 1.0, 0.0, None), square(), 6, 50_000).unwrap();
        assert!(matches!(
            ch.send(0, 99, b"x"),
            Err(CoreError::UnknownDestination { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "loss rate")]
    fn bad_rates_rejected() {
        let _ = Wireless::new(0, 1.5, 0.0, None);
    }
}
