//! Paced multi-symbol signalling with forward error correction.
//!
//! [`Sync2`](crate::sync2::Sync2) and the swarm protocols alternate signal
//! and return instants by each robot's *own activation parity* — sound in
//! the synchronous regime, but under an adversarial fair scheduler the
//! sender's signal instants and the receiver's observation instants drift
//! apart and the channel collapses (the conformance sweeps show exactly
//! that: zero delivery in every adversarial sync cell). The *paced*
//! discipline here re-derives the §3.1 byte optimisation so it survives
//! activation skew and lossy movement:
//!
//! * **Symbols are magnitudes.** Each symbol is one of `L` quantized
//!   excursion magnitudes (`log2 L` bits), per
//!   [`MagnitudeAlphabet`]. The excursion *side* carries no data — it
//!   alternates with the symbol index, so a receiver can delimit symbols
//!   without sharing a clock with the sender, and an unexpected side
//!   parity reveals a missed symbol as an *erasure*.
//! * **Dwell pacing.** The sender holds every symbol for `dwell` of its
//!   own activations, re-targeting the same excursion point. Any fair
//!   scheduler whose activation gap is below the dwell shows each symbol
//!   to the receiver at least once; non-rigid truncated moves converge
//!   geometrically onto the target inside one dwell.
//! * **Monotone decoding.** Within one side-run the receiver keeps the
//!   *largest* magnitude it saw: truncated moves approach the target from
//!   below and transitional samples shrink toward home, so the maximum is
//!   always the most-converged sample. Silence (below the alphabet's
//!   threshold) never commits anything.
//! * **FEC instead of retransmission.** With [`CodingSpec::Fec`]-style
//!   configs the symbol stream carries a systematic Hamming(7,4) code
//!   ([`SymbolFec`]): one corrupted symbol or one erasure per block is
//!   repaired in place. The CRC-8 trailer stays on as the backstop — a
//!   frame beyond the correction radius is *rejected, never silently
//!   misdelivered*.
//!
//! A message ends with a **terminator** symbol (maximal level, next side
//! in the alternation) that forces the final data symbol's commit, then a
//! long silent *gap* at home. The receiver treats silence as real only
//! when *sustained* (a truncated move can strand the sender below the
//! decoding threshold for a few instants mid-transition), and the gap is
//! sized so every bounded-gap fair schedule shows the receiver a
//! sustained-silence window between messages — that window re-arms the
//! decoder and keeps back-to-back messages aligned.
//!
//! [`CodingSpec::Fec`]: ../../stigmergy_scheduler/factory/enum.CodingSpec.html

use crate::decode::{InboxEntry, OverheardEntry};
use crate::preprocess::{NamingScheme, SwarmGeometry};
use std::collections::{BTreeMap, VecDeque};
use stigmergy_coding::alphabet::MagnitudeAlphabet;
use stigmergy_coding::checksum::{protect, verify};
use stigmergy_coding::fec::{SymbolFec, BLOCK_LEN};
use stigmergy_coding::framing::{encode_frame, FrameDecoder};
use stigmergy_coding::{Bit, CodingError};
use stigmergy_geometry::granular::{SliceSide, SliceZone};
use stigmergy_geometry::{Point, Vec2};
use stigmergy_robots::{MovementProtocol, View, VisibleId};

/// The fraction of the granular radius a maximal swarm excursion uses —
/// the same headroom as the synchronous swarm protocols, so collision
/// freedom is inherited unchanged.
const SIGNAL_FRACTION: f64 = 0.5;

/// Consecutive silent observations that count as *real* silence.
///
/// A non-rigid truncated move can strand a sender inside the silence band
/// while crossing sides; the crossing makes geometric progress (≥ the
/// fault plan's δ of the remaining distance per move), so it spends at
/// most ~4 moves in the band, and each move stalls at most the
/// scheduler's activation gap (≤ 8 across the conformance schedules) —
/// at most ~32 transient silences in a row. Sustained silence must
/// out-last that.
const SILENCE_RESET_RUN: u32 = 34;

/// Own-activations a sender parks at home after each message.
///
/// Every conformance schedule activates each robot at least once per 8
/// instants, so `280 ≥ 34 × 8` guarantees the receiver a
/// [`SILENCE_RESET_RUN`]-long silence window in every gap.
const GAP_ACTIVATIONS: u32 = 280;

/// Channel parameters for the paced protocols.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacedConfig {
    alphabet: MagnitudeAlphabet,
    dwell: u32,
    fec: bool,
}

impl PacedConfig {
    /// A config with `levels` magnitude levels (a power of two, so each
    /// symbol carries a whole number of bits), `dwell` own-activations
    /// per symbol, and optional FEC.
    ///
    /// # Errors
    ///
    /// [`CodingError::AlphabetTooSmall`] unless `levels` is a power of
    /// two and at least 2, or if `dwell` is zero (reported with the
    /// offending value, since a zero dwell cannot pace anything).
    pub fn new(levels: usize, dwell: u32, fec: bool) -> Result<Self, CodingError> {
        if dwell == 0 {
            return Err(CodingError::AlphabetTooSmall { got: 0 });
        }
        Ok(Self {
            alphabet: MagnitudeAlphabet::new(levels)?,
            dwell,
            fec,
        })
    }

    /// The magnitude alphabet in use.
    #[must_use]
    pub fn alphabet(&self) -> MagnitudeAlphabet {
        self.alphabet
    }

    /// Own-activations spent holding each symbol.
    #[must_use]
    pub fn dwell(&self) -> u32 {
        self.dwell
    }

    /// Whether the symbol stream is FEC-protected.
    #[must_use]
    pub fn has_fec(&self) -> bool {
        self.fec
    }

    fn fec_codec(&self) -> Option<SymbolFec> {
        self.fec
            .then(|| SymbolFec::new(self.alphabet.bits_per_symbol() as u32))
    }

    /// The data symbols of one message: CRC-protected, length-framed,
    /// packed into magnitude words, FEC-expanded when enabled.
    fn symbols_for(&self, payload: &[u8]) -> Vec<u16> {
        let bits = encode_frame(&protect(payload));
        let words = self.alphabet.pack(&bits);
        match self.fec_codec() {
            Some(codec) => codec.encode(&words).expect("packed words fit the width"),
            None => words,
        }
    }

    /// The terminator level: maximal magnitude, for the strongest
    /// possible final side flip.
    fn terminator_level(&self) -> u16 {
        (self.alphabet.size() - 1) as u16
    }
}

/// One observation of a sender, already quantized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Observation {
    /// The sender is (near) home: no symbol on the wire.
    Silence,
    /// An excursion: which side of the alternation and what magnitude.
    Symbol { parity: u8, level: u16 },
}

/// What a committed symbol did to the frame assembly.
#[derive(Debug, Clone, PartialEq, Eq)]
enum SinkEvent {
    /// Still mid-frame.
    Quiet,
    /// A frame completed and passed the checksum.
    Message(Vec<u8>),
    /// The frame is lost (uncorrectable block, erasure without FEC, or
    /// checksum failure): drain to the next silence.
    Abort,
}

/// Frame assembly for one sender: FEC blocks → words → bits → frames.
#[derive(Debug, Clone)]
struct SymbolSink {
    width: usize,
    fec: Option<SymbolFec>,
    block: Vec<Option<u16>>,
    decoder: FrameDecoder,
    corrected: u64,
    rejected: u64,
}

impl SymbolSink {
    fn new(config: &PacedConfig) -> Self {
        Self {
            width: config.alphabet.bits_per_symbol(),
            fec: config.fec_codec(),
            block: Vec::with_capacity(BLOCK_LEN),
            decoder: FrameDecoder::new(),
            corrected: 0,
            rejected: 0,
        }
    }

    fn dirty(&self) -> bool {
        !self.block.is_empty() || self.decoder.pending_bits() > 0
    }

    fn reset(&mut self) {
        self.block.clear();
        self.decoder = FrameDecoder::new();
    }

    /// Commits one symbol (`None` = erasure) into the assembly.
    fn push_symbol(&mut self, symbol: Option<u16>) -> SinkEvent {
        match self.fec {
            Some(codec) => {
                self.block.push(symbol);
                if self.block.len() < BLOCK_LEN {
                    return SinkEvent::Quiet;
                }
                let block: [Option<u16>; BLOCK_LEN] =
                    self.block.as_slice().try_into().expect("block is full");
                self.block.clear();
                let Some(decoded) = codec.decode_block(&block) else {
                    self.rejected += 1;
                    self.reset();
                    return SinkEvent::Abort;
                };
                self.corrected += u64::from(decoded.corrected);
                for word in decoded.data {
                    match self.feed_word(word) {
                        SinkEvent::Quiet => {}
                        terminal => return terminal,
                    }
                }
                SinkEvent::Quiet
            }
            None => match symbol {
                Some(word) => self.feed_word(word),
                None => {
                    // No FEC: a missed symbol is unrecoverable.
                    self.rejected += 1;
                    self.reset();
                    SinkEvent::Abort
                }
            },
        }
    }

    /// Unpacks one word's bits into the frame decoder.
    fn feed_word(&mut self, word: u16) -> SinkEvent {
        for i in (0..self.width).rev() {
            let bit = Bit::from_bool(word & (1 << i) != 0);
            if let Some(protected) = self.decoder.push_bit(bit) {
                // Remaining bits of this word (and block) are padding.
                self.reset();
                return match verify(&protected) {
                    Ok(payload) => SinkEvent::Message(payload),
                    Err(_) => {
                        self.rejected += 1;
                        SinkEvent::Abort
                    }
                };
            }
        }
        SinkEvent::Quiet
    }
}

/// Symbol delimiting for one sender: side-runs, erasure insertion, and
/// the sustained-silence re-arm.
#[derive(Debug, Clone, Copy, Default)]
struct RunTracker {
    /// Index of the next symbol to commit (its expected parity is
    /// `index % 2`).
    index: u64,
    /// The open run: side parity and the largest magnitude seen.
    run: Option<(u8, u16)>,
    /// Ignoring everything until the next sustained silence.
    draining: bool,
    /// Consecutive silent observations so far.
    silence_run: u32,
}

impl RunTracker {
    /// Feeds one observation; returns a completed, checksum-verified
    /// payload if this observation finished a frame.
    fn observe(&mut self, sink: &mut SymbolSink, obs: Observation) -> Option<Vec<u8>> {
        match obs {
            Observation::Silence => {
                self.silence_run = self.silence_run.saturating_add(1);
                if self.silence_run >= SILENCE_RESET_RUN {
                    // Real quiescence: the sender is parked in its gap.
                    // Re-arm (or, if a frame was abandoned mid-flight,
                    // reject it) — idempotent once clean.
                    if self.draining {
                        self.draining = false;
                    } else if self.run.is_some() || sink.dirty() {
                        sink.rejected += 1;
                    }
                    sink.reset();
                    self.run = None;
                    self.index = 0;
                }
                None
            }
            Observation::Symbol { parity, level } => {
                self.silence_run = 0;
                if self.draining {
                    return None;
                }
                match self.run {
                    Some((p, seen)) if p == parity => {
                        // Same run: moves only ever converge toward the
                        // target, so the largest sample is the truest.
                        self.run = Some((p, seen.max(level)));
                        None
                    }
                    Some((p, seen)) => {
                        // Side flip: the previous symbol is final.
                        let committed = self.commit(sink, p, seen);
                        if !self.draining {
                            self.run = Some((parity, level));
                        }
                        committed
                    }
                    None => {
                        if parity != (self.index % 2) as u8 {
                            // The very first symbol was missed entirely.
                            self.absorb(sink.push_symbol(None));
                            self.index += 1;
                        }
                        if !self.draining {
                            self.run = Some((parity, level));
                        }
                        None
                    }
                }
            }
        }
    }

    /// Commits a finished run, inserting a parity erasure if a whole
    /// symbol went missing in between.
    fn commit(&mut self, sink: &mut SymbolSink, parity: u8, level: u16) -> Option<Vec<u8>> {
        self.run = None;
        if parity != (self.index % 2) as u8 {
            if let Some(msg) = self.absorb(sink.push_symbol(None)) {
                return Some(msg);
            }
            self.index += 1;
            if self.draining {
                return None;
            }
        }
        let event = sink.push_symbol(Some(level));
        self.index += 1;
        self.absorb(event)
    }

    /// Applies a sink event to the drain state.
    fn absorb(&mut self, event: SinkEvent) -> Option<Vec<u8>> {
        match event {
            SinkEvent::Quiet => None,
            SinkEvent::Message(payload) => {
                self.draining = true;
                self.run = None;
                Some(payload)
            }
            SinkEvent::Abort => {
                self.draining = true;
                self.run = None;
                None
            }
        }
    }
}

/// The sender side: one message in flight, paced symbol by symbol.
#[derive(Debug, Clone)]
struct SendJob {
    /// Data symbols, already framed/packed/FEC-expanded. The slot at
    /// `symbols.len()` is the terminator; one past it is the silent gap.
    symbols: Vec<u16>,
    /// For the swarm: the keyboard slice carrying this message.
    slice: usize,
    /// Current slot.
    at: usize,
    /// Activations left in the current slot.
    left: u32,
}

impl SendJob {
    /// The symbol and side parity of the current slot, or `None` in the
    /// gap.
    fn current(&self, config: &PacedConfig) -> Option<(u16, u8)> {
        let parity = (self.at % 2) as u8;
        match self.at.cmp(&self.symbols.len()) {
            std::cmp::Ordering::Less => Some((self.symbols[self.at], parity)),
            std::cmp::Ordering::Equal => Some((config.terminator_level(), parity)),
            std::cmp::Ordering::Greater => None,
        }
    }

    /// Advances the dwell clock; returns `false` when the job (including
    /// its trailing gap) is over.
    fn tick(&mut self, config: &PacedConfig) -> bool {
        self.left -= 1;
        if self.left == 0 {
            self.at += 1;
            self.left = if self.at == self.symbols.len() + 1 {
                GAP_ACTIVATIONS
            } else {
                config.dwell
            };
        }
        self.at <= self.symbols.len() + 1
    }
}

/// The paced two-robot protocol: [`Sync2`](crate::sync2::Sync2)'s
/// geometry with multi-symbol pacing and optional FEC. Works under any
/// fair schedule whose activation gap stays below the dwell.
#[derive(Debug, Clone)]
pub struct Paced2 {
    config: PacedConfig,
    home: Option<Point>,
    peer_home: Option<Point>,
    my_right: Option<Vec2>,
    peer_right: Option<Vec2>,
    lateral_step: f64,
    queue: VecDeque<Vec<u16>>,
    job: Option<SendJob>,
    tracker: RunTracker,
    sink: SymbolSink,
    inbox: Vec<Vec<u8>>,
    signals_sent: u64,
}

impl Paced2 {
    /// Creates an idle instance with the given channel parameters.
    #[must_use]
    pub fn new(config: PacedConfig) -> Self {
        Self {
            sink: SymbolSink::new(&config),
            config,
            home: None,
            peer_home: None,
            my_right: None,
            peer_right: None,
            lateral_step: 0.0,
            queue: VecDeque::new(),
            job: None,
            tracker: RunTracker::default(),
            inbox: Vec::new(),
            signals_sent: 0,
        }
    }

    /// The channel parameters.
    #[must_use]
    pub fn config(&self) -> PacedConfig {
        self.config
    }

    /// Queues a message for the peer.
    pub fn send(&mut self, payload: &[u8]) {
        self.queue.push_back(self.config.symbols_for(payload));
    }

    /// Messages received so far, in order.
    #[must_use]
    pub fn inbox(&self) -> &[Vec<u8>] {
        &self.inbox
    }

    /// Whether all queued traffic has been put on the wire.
    #[must_use]
    pub fn is_drained(&self) -> bool {
        self.queue.is_empty() && self.job.is_none()
    }

    /// Symbols put on the wire so far (terminators included).
    #[must_use]
    pub fn signals_sent(&self) -> u64 {
        self.signals_sent
    }

    /// FEC blocks repaired while receiving.
    #[must_use]
    pub fn fec_corrected(&self) -> u64 {
        self.sink.corrected
    }

    /// Frames lost to uncorrectable blocks, erasures without FEC, or
    /// checksum failures.
    #[must_use]
    pub fn fec_rejected(&self) -> u64 {
        self.sink.rejected
    }

    fn decode_peer(&mut self, peer_pos: Point) {
        let (Some(peer_home), Some(right)) = (self.peer_home, self.peer_right) else {
            return;
        };
        let u = (peer_pos - peer_home).dot(right);
        let fraction = u.abs() / self.lateral_step;
        let obs = match self.config.alphabet.classify(fraction) {
            None => Observation::Silence,
            Some(level) => Observation::Symbol {
                parity: u8::from(u < 0.0),
                level: level as u16,
            },
        };
        if let Some(payload) = self.tracker.observe(&mut self.sink, obs) {
            self.inbox.push(payload);
        }
    }

    fn sender_target(&mut self, home: Point) -> Point {
        if self.job.is_none() {
            let Some(symbols) = self.queue.pop_front() else {
                return home;
            };
            self.job = Some(SendJob {
                symbols,
                slice: 0,
                at: 0,
                left: self.config.dwell,
            });
        }
        let job = self.job.as_mut().expect("job was just ensured");
        let fresh = job.left == self.config.dwell;
        let target = match job.current(&self.config) {
            Some((level, parity)) => {
                if fresh {
                    self.signals_sent += 1;
                }
                let right = self.my_right.expect("homes are distinct");
                let dir = if parity == 0 { right } else { -right };
                let fraction = self
                    .config
                    .alphabet
                    .fraction(usize::from(level))
                    .expect("queued symbols are in range");
                home + dir * (self.lateral_step * fraction)
            }
            None => home, // the silent gap
        };
        if !job.tick(&self.config) {
            self.job = None;
        }
        target
    }
}

impl MovementProtocol for Paced2 {
    fn on_activate(&mut self, view: &View) -> Point {
        if self.home.is_none() {
            // Two-robot protocol: any other cohort size is a spec error —
            // freeze rather than mis-signal (as Sync2 does).
            if view.cohort() != 2 {
                return view.own_position();
            }
            self.home = Some(view.own_position());
            let peer = view.others().first().map(|o| o.position);
            self.peer_home = peer;
            if let (Some(h), Some(p)) = (self.home, peer) {
                self.lateral_step = (h.distance(p) / 4.0).min(view.sigma());
                self.my_right = (p - h).normalized().ok().map(Vec2::perp_cw);
                self.peer_right = (h - p).normalized().ok().map(Vec2::perp_cw);
            }
        }
        let Some(home) = self.home.filter(|_| self.peer_home.is_some()) else {
            return view.own_position();
        };
        // Decode on *every* activation — pacing, not activation parity,
        // delimits symbols.
        if let Some(peer) = view.others().first() {
            self.decode_peer(peer.position);
        }
        self.sender_target(home)
    }
}

/// How a queued swarm message names its destination.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Dest {
    /// A label under this robot's naming.
    Label(usize),
    /// A visible ID (identified systems only).
    Id(VisibleId),
    /// Everyone: "send to self" on the wire (§5 one-to-all).
    Broadcast,
}

/// Per-sender receive state.
#[derive(Debug, Clone)]
struct SenderState {
    tracker: RunTracker,
    sink: SymbolSink,
    /// The keyboard slice the current message rides on (= addressee).
    slice: usize,
}

/// The paced swarm protocol: the synchronous swarm keyboard (labelled
/// granular diameters) driven by the paced multi-symbol discipline. The
/// addressee is still chosen by *slice*; the excursion *magnitude* now
/// carries `log2 L` bits per symbol and the side paces the stream.
#[derive(Debug, Clone)]
pub struct PacedSwarm {
    scheme: NamingScheme,
    config: PacedConfig,
    geometry: Option<SwarmGeometry>,
    init_error: Option<crate::CoreError>,
    pending: VecDeque<(Dest, Vec<u8>)>,
    job: Option<SendJob>,
    senders: BTreeMap<usize, SenderState>,
    inbox: Vec<InboxEntry>,
    overheard: Vec<OverheardEntry>,
    signals_sent: u64,
}

impl PacedSwarm {
    fn with_scheme(scheme: NamingScheme, config: PacedConfig) -> Self {
        Self {
            scheme,
            config,
            geometry: None,
            init_error: None,
            pending: VecDeque::new(),
            job: None,
            senders: BTreeMap::new(),
            inbox: Vec::new(),
            overheard: Vec::new(),
            signals_sent: 0,
        }
    }

    /// Paced P2 (§3.2): route by observable-ID order.
    #[must_use]
    pub fn routed(config: PacedConfig) -> Self {
        Self::with_scheme(NamingScheme::ById, config)
    }

    /// Paced P3 (§3.3): route by lexicographic position order.
    #[must_use]
    pub fn anonymous_with_direction(config: PacedConfig) -> Self {
        Self::with_scheme(NamingScheme::ByLex, config)
    }

    /// Paced P4 (§3.4): route by SEC radial order.
    #[must_use]
    pub fn anonymous(config: PacedConfig) -> Self {
        Self::with_scheme(NamingScheme::BySec, config)
    }

    /// Queues a message for the robot labelled `dest_label` under this
    /// robot's naming.
    pub fn send_label(&mut self, dest_label: usize, payload: &[u8]) {
        self.pending
            .push_back((Dest::Label(dest_label), payload.to_vec()));
    }

    /// Queues a message for the robot with visible identifier `dest`.
    pub fn send_id(&mut self, dest: VisibleId, payload: &[u8]) {
        self.pending.push_back((Dest::Id(dest), payload.to_vec()));
    }

    /// Queues a broadcast to every robot.
    pub fn send_broadcast(&mut self, payload: &[u8]) {
        self.pending.push_back((Dest::Broadcast, payload.to_vec()));
    }

    /// Messages addressed to this robot, in arrival order.
    #[must_use]
    pub fn inbox(&self) -> &[InboxEntry] {
        &self.inbox
    }

    /// Every message this robot decoded, including other pairs' traffic.
    #[must_use]
    pub fn overheard(&self) -> &[OverheardEntry] {
        &self.overheard
    }

    /// The preprocessed geometry (available after the first activation).
    #[must_use]
    pub fn geometry(&self) -> Option<&SwarmGeometry> {
        self.geometry.as_ref()
    }

    /// Whether all queued traffic has been put on the wire.
    #[must_use]
    pub fn is_drained(&self) -> bool {
        self.pending.is_empty() && self.job.is_none()
    }

    /// Symbols put on the wire so far (terminators included).
    #[must_use]
    pub fn signals_sent(&self) -> u64 {
        self.signals_sent
    }

    /// A preprocessing failure, if the initial configuration was
    /// degenerate. Such a robot stays put forever.
    #[must_use]
    pub fn init_error(&self) -> Option<&crate::CoreError> {
        self.init_error.as_ref()
    }

    /// FEC blocks repaired across all observed senders.
    #[must_use]
    pub fn fec_corrected(&self) -> u64 {
        self.senders.values().map(|s| s.sink.corrected).sum()
    }

    /// Frames lost across all observed senders.
    #[must_use]
    pub fn fec_rejected(&self) -> u64 {
        self.senders.values().map(|s| s.sink.rejected).sum()
    }

    fn resolve_slice(&self, dest: &Dest) -> Option<usize> {
        let g = self.geometry.as_ref()?;
        let label = match dest {
            Dest::Label(l) => *l,
            Dest::Id(id) => {
                let home = (0..g.cohort()).find(|&h| g.id_of(h) == Some(*id))?;
                g.label_for(0, home)
            }
            Dest::Broadcast => g.label_for(0, 0),
        };
        if label >= g.cohort() {
            return None;
        }
        Some(g.slice_for_label(label))
    }

    fn decode_snapshot(&mut self, view: &View) {
        let Some(g) = self.geometry.take() else {
            return;
        };
        for o in view.others() {
            let Some((home, zone)) = g.classify(o.position) else {
                continue;
            };
            let reach = g.keyboard(home).radius() * SIGNAL_FRACTION;
            let (obs, slice) = match zone {
                SliceZone::Center => (Observation::Silence, None),
                SliceZone::OnSlice {
                    slice,
                    side,
                    distance,
                    deviation,
                } => {
                    let fraction = distance / reach;
                    match self.config.alphabet.classify(fraction) {
                        // Below the lowest level: home-adjacent = silence.
                        None => (Observation::Silence, None),
                        Some(_) if deviation > g.keyboard(home).decode_tolerance() => {
                            // A substantial excursion *off* every diameter
                            // is a transient between slices — no
                            // observation at all.
                            continue;
                        }
                        Some(level) => (
                            Observation::Symbol {
                                parity: u8::from(side.bit()),
                                level: level as u16,
                            },
                            Some(slice),
                        ),
                    }
                }
            };
            let state = self.senders.entry(home).or_insert_with(|| SenderState {
                tracker: RunTracker::default(),
                sink: SymbolSink::new(&self.config),
                slice: 0,
            });
            if let Some(slice) = slice {
                state.slice = slice;
            }
            if let Some(payload) = state.tracker.observe(&mut state.sink, obs) {
                if let Some(label) = g.label_for_slice(state.slice) {
                    if let Some(dest) = g.home_for(home, label) {
                        self.overheard.push(OverheardEntry {
                            sender: home,
                            dest,
                            payload: payload.clone(),
                        });
                        if dest == 0 || dest == home {
                            self.inbox.push(InboxEntry {
                                sender: home,
                                payload,
                            });
                        }
                    }
                }
            }
        }
        self.geometry = Some(g);
    }

    fn sender_target(&mut self, home: Point) -> Point {
        if self.job.is_none() {
            while let Some((dest, payload)) = self.pending.pop_front() {
                if let Some(slice) = self.resolve_slice(&dest) {
                    self.job = Some(SendJob {
                        symbols: self.config.symbols_for(&payload),
                        slice,
                        at: 0,
                        left: self.config.dwell,
                    });
                    break;
                }
                // Unresolvable destination: drop (sessions validate
                // destinations up front, so this is defensive).
            }
        }
        let Some(job) = self.job.as_mut() else {
            return home;
        };
        let fresh = job.left == self.config.dwell;
        let target = match job.current(&self.config) {
            Some((level, parity)) => {
                if fresh {
                    self.signals_sent += 1;
                }
                let g = self.geometry.as_ref().expect("geometry initialized");
                let fraction = self
                    .config
                    .alphabet
                    .fraction(usize::from(level))
                    .expect("queued symbols are in range");
                g.keyboard(0)
                    .target(
                        job.slice,
                        SliceSide::from_bit(parity != 0),
                        SIGNAL_FRACTION * fraction,
                    )
                    .unwrap_or(home)
            }
            None => home,
        };
        let config = self.config;
        if !job.tick(&config) {
            self.job = None;
        }
        target
    }
}

impl MovementProtocol for PacedSwarm {
    fn on_activate(&mut self, view: &View) -> Point {
        if self.geometry.is_none() && self.init_error.is_none() {
            match SwarmGeometry::build(view, self.scheme, false) {
                Ok(g) => self.geometry = Some(g),
                Err(e) => self.init_error = Some(e),
            }
        }
        let Some(home) = self.geometry.as_ref().map(|g| g.home(0)) else {
            return view.own_position();
        };
        self.decode_snapshot(view);
        self.sender_target(home)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stigmergy_robots::{Capabilities, Engine};
    use stigmergy_scheduler::{FaultSpec, ScheduleSpec, Synchronous, WakeAllFirst};

    fn config(levels: usize, fec: bool) -> PacedConfig {
        PacedConfig::new(levels, 10, fec).unwrap()
    }

    fn pair_engine(cfg: PacedConfig, seed: u64) -> Engine<Paced2> {
        Engine::builder()
            .positions([Point::new(0.0, 0.0), Point::new(12.0, 0.0)])
            .protocols([Paced2::new(cfg), Paced2::new(cfg)])
            .schedule(Synchronous)
            .frame_seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn pair_delivers_synchronously_at_every_width() {
        for levels in [2usize, 4, 8, 16] {
            for fec in [false, true] {
                let mut e = pair_engine(config(levels, fec), 7 + levels as u64);
                e.protocol_mut(0).send(b"paced!");
                let out = e
                    .run_until(20_000, |e| !e.protocol(1).inbox().is_empty())
                    .unwrap();
                assert!(out.satisfied, "levels={levels} fec={fec}");
                assert_eq!(e.protocol(1).inbox()[0], b"paced!".to_vec());
                assert_eq!(e.protocol(1).fec_rejected(), 0);
            }
        }
    }

    #[test]
    fn pair_back_to_back_messages_stay_aligned() {
        let mut e = pair_engine(config(8, true), 21);
        e.protocol_mut(0).send(b"a");
        e.protocol_mut(0).send(b"bc");
        e.protocol_mut(0).send(b"def");
        let out = e
            .run_until(60_000, |e| e.protocol(1).inbox().len() == 3)
            .unwrap();
        assert!(out.satisfied);
        assert_eq!(
            e.protocol(1).inbox(),
            &[b"a".to_vec(), b"bc".to_vec(), b"def".to_vec()]
        );
    }

    #[test]
    fn pair_duplex() {
        let mut e = pair_engine(config(8, true), 22);
        e.protocol_mut(0).send(b"fwd");
        e.protocol_mut(1).send(b"rev");
        let out = e
            .run_until(40_000, |e| {
                !e.protocol(0).inbox().is_empty() && !e.protocol(1).inbox().is_empty()
            })
            .unwrap();
        assert!(out.satisfied);
        assert_eq!(e.protocol(1).inbox()[0], b"fwd".to_vec());
        assert_eq!(e.protocol(0).inbox()[0], b"rev".to_vec());
    }

    #[test]
    fn pair_silent_when_idle() {
        let mut e = pair_engine(config(8, true), 23);
        e.run(100).unwrap();
        assert_eq!(e.trace().path_length(0), 0.0);
        assert_eq!(e.trace().path_length(1), 0.0);
        assert!(e.protocol(0).is_drained());
    }

    #[test]
    fn pair_wrong_cohort_freezes() {
        let cfg = config(4, false);
        let mut e = Engine::builder()
            .positions([
                Point::new(0.0, 0.0),
                Point::new(8.0, 0.0),
                Point::new(4.0, 6.0),
            ])
            .protocols([Paced2::new(cfg), Paced2::new(cfg), Paced2::new(cfg)])
            .build()
            .unwrap();
        e.protocol_mut(0).send(b"nope");
        e.run(60).unwrap();
        for i in 0..3 {
            assert_eq!(e.trace().path_length(i), 0.0, "robot {i} moved");
        }
    }

    #[test]
    fn pair_distance_never_decreases() {
        let mut e = pair_engine(config(16, true), 24);
        e.protocol_mut(0).send(&[0xAA, 0x55]);
        e.protocol_mut(1).send(&[0x0F, 0xF0]);
        let d0 = e.positions()[0].distance(e.positions()[1]);
        for _ in 0..2_000 {
            e.step().unwrap();
            let d = e.positions()[0].distance(e.positions()[1]);
            assert!(d >= d0 - 1e-9, "robots approached: {d} < {d0}");
        }
    }

    /// The tentpole claim: the paced channel survives the adversarial
    /// schedule × fault cells where the activation-parity protocols
    /// deliver nothing.
    #[test]
    fn pair_delivers_under_adversarial_schedules_and_faults() {
        let schedules = [
            ScheduleSpec::LaggingReceiver { max_gap: 8 },
            ScheduleSpec::Bursty {
                seed: 0x0AD5_CEDD,
                burst_len: 3,
                lull_len: 5,
            },
            ScheduleSpec::WorstCaseFair { max_gap: 6 },
        ];
        let plans = [
            FaultSpec::Dropout { prob: 0.1 },
            FaultSpec::NonRigid {
                delta: 0.35,
                prob: 0.5,
            },
        ];
        let mut delivered = 0u32;
        let mut cells = 0u32;
        for schedule in &schedules {
            for plan in &plans {
                for seed in 1..=4u64 {
                    cells += 1;
                    let fault_plan = plan.plan(0xA1 ^ seed);
                    let cfg = config(8, true);
                    let mut e = Engine::builder()
                        .positions([Point::new(0.0, 0.0), Point::new(14.0, 0.0)])
                        .protocols([Paced2::new(cfg), Paced2::new(cfg)])
                        .schedule(WakeAllFirst::new(schedule.build_faulted(2, &fault_plan)))
                        .frame_seed(0xFA01 ^ seed)
                        .record_trace(false)
                        .build()
                        .unwrap();
                    e.step().unwrap();
                    e.set_fault_plan(fault_plan);
                    e.protocol_mut(0).send(b"adv");
                    let out = e
                        .run_until(40_000, |e| {
                            e.protocol(1).inbox().iter().any(|m| m == &b"adv".to_vec())
                        })
                        .unwrap();
                    delivered += u32::from(out.satisfied);
                }
            }
        }
        // The legacy sync protocols score 0/24 on this exact matrix.
        assert!(
            delivered >= cells * 3 / 4,
            "paced channel too lossy: {delivered}/{cells}"
        );
    }

    fn ring_engine(
        n: usize,
        caps: Capabilities,
        proto: impl Fn() -> PacedSwarm,
        seed: u64,
    ) -> Engine<PacedSwarm> {
        let positions: Vec<Point> = (0..n)
            .map(|k| {
                let theta = std::f64::consts::TAU * (k as f64) / (n as f64);
                let r = 10.0 + (k as f64) * 0.1;
                Point::new(r * theta.sin(), r * theta.cos())
            })
            .collect();
        Engine::builder()
            .positions(positions)
            .protocols((0..n).map(|_| proto()))
            .capabilities(caps)
            .schedule(Synchronous)
            .frame_seed(seed)
            .build()
            .unwrap()
    }

    fn label_of(e: &Engine<PacedSwarm>, sender: usize, target: usize) -> usize {
        let g = e.protocol(sender).geometry().expect("preprocessed");
        let world_home = e.trace().initial()[target];
        let local_home = e.frames()[sender].to_local(world_home);
        let home_idx = (0..g.cohort())
            .find(|&h| g.home(h).approx_eq(local_home))
            .expect("home present");
        g.label_for(0, home_idx)
    }

    #[test]
    fn swarm_delivery_and_overhearing() {
        let mut e = ring_engine(
            5,
            Capabilities::anonymous_with_direction(),
            || PacedSwarm::anonymous_with_direction(config(8, true)),
            31,
        );
        e.step().unwrap();
        let label = label_of(&e, 0, 3);
        e.protocol_mut(0).send_label(label, b"hello 3");
        let out = e
            .run_until(40_000, |e| {
                e.protocol(3)
                    .inbox()
                    .iter()
                    .any(|m| m.payload == b"hello 3")
            })
            .unwrap();
        assert!(out.satisfied);
        // Redundancy: bystanders decoded the traffic too.
        for observer in [1usize, 2, 4] {
            assert!(
                e.protocol(observer)
                    .overheard()
                    .iter()
                    .any(|m| m.payload == b"hello 3"),
                "robot {observer} missed the traffic"
            );
        }
        assert_eq!(e.protocol(3).fec_rejected(), 0);
    }

    #[test]
    fn swarm_broadcast_reaches_all() {
        let mut e = ring_engine(
            4,
            Capabilities::anonymous_with_direction(),
            || PacedSwarm::anonymous_with_direction(config(4, false)),
            32,
        );
        e.step().unwrap();
        e.protocol_mut(2).send_broadcast(b"to all");
        let out = e
            .run_until(60_000, |e| {
                (0..4)
                    .filter(|&i| i != 2)
                    .all(|i| e.protocol(i).inbox().iter().any(|m| m.payload == b"to all"))
            })
            .unwrap();
        assert!(out.satisfied, "broadcast not delivered to everyone");
    }

    #[test]
    fn swarm_routed_by_id() {
        let mut e = ring_engine(
            4,
            Capabilities::identified_with_direction(),
            || PacedSwarm::routed(config(8, true)),
            33,
        );
        e.step().unwrap();
        let target_id = e.ids().unwrap()[2];
        e.protocol_mut(0).send_id(target_id, b"for id");
        let out = e
            .run_until(40_000, |e| !e.protocol(2).inbox().is_empty())
            .unwrap();
        assert!(out.satisfied);
        assert_eq!(e.protocol(2).inbox()[0].payload, b"for id");
    }

    #[test]
    fn swarm_chirality_only() {
        let mut e = ring_engine(
            5,
            Capabilities::anonymous(),
            || PacedSwarm::anonymous(config(8, true)),
            34,
        );
        e.step().unwrap();
        let label = label_of(&e, 2, 0);
        e.protocol_mut(2).send_label(label, b"sec naming");
        let out = e
            .run_until(40_000, |e| {
                e.protocol(0)
                    .inbox()
                    .iter()
                    .any(|m| m.payload == b"sec naming")
            })
            .unwrap();
        assert!(out.satisfied);
    }

    #[test]
    fn swarm_stays_inside_granulars() {
        let mut e = ring_engine(
            5,
            Capabilities::anonymous_with_direction(),
            || PacedSwarm::anonymous_with_direction(config(16, true)),
            35,
        );
        e.step().unwrap();
        let label = label_of(&e, 0, 2);
        e.protocol_mut(0).send_label(label, &[0xAB, 0xCD]);
        let homes = e.trace().initial().to_vec();
        let radii: Vec<f64> = (0..5)
            .map(|i| {
                (0..5)
                    .filter(|&j| j != i)
                    .map(|j| homes[i].distance(homes[j]))
                    .fold(f64::INFINITY, f64::min)
                    / 2.0
            })
            .collect();
        for _ in 0..2_000 {
            e.step().unwrap();
            for i in 0..5 {
                let d = homes[i].distance(e.positions()[i]);
                assert!(d <= radii[i] + 1e-9, "robot {i} left its granular");
            }
        }
    }

    #[test]
    fn swarm_adversarial_bystander_crash_still_delivers() {
        // A *bystander* crash freezes one robot; the paced channel between
        // the two live endpoints keeps working (sync-swarm crash cells are
        // structurally zero under the parity protocols).
        let schedule = ScheduleSpec::LaggingReceiver { max_gap: 8 };
        let plan = FaultSpec::Crash {
            robot: 1,
            time: 35,
            delta: 0.5,
            prob: 0.25,
        };
        let fault_plan = plan.plan(0xB0_02 ^ 0x5EED);
        let n = 3;
        let positions: Vec<Point> = (0..n)
            .map(|k| {
                let theta = std::f64::consts::TAU * (k as f64) / (n as f64);
                let r = 18.0 + (k as f64) * 0.1;
                Point::new(r * theta.sin(), r * theta.cos())
            })
            .collect();
        let cfg = config(8, true);
        let mut e = Engine::builder()
            .positions(positions)
            .protocols((0..n).map(|_| PacedSwarm::anonymous_with_direction(cfg)))
            .capabilities(Capabilities::anonymous_with_direction())
            .schedule(WakeAllFirst::new(schedule.build_faulted(n, &fault_plan)))
            .frame_seed(0xB0_02)
            .record_trace(false)
            .build()
            .unwrap();
        e.step().unwrap();
        e.set_fault_plan(fault_plan);
        let label = label_of(&e, 0, 2);
        e.protocol_mut(0).send_label(label, b"adv");
        let out = e
            .run_until(40_000, |e| {
                e.protocol(2).inbox().iter().any(|m| m.payload == b"adv")
            })
            .unwrap();
        assert!(out.satisfied, "bystander crash must not kill the channel");
    }

    #[test]
    fn config_validation() {
        assert!(PacedConfig::new(3, 10, true).is_err());
        assert!(PacedConfig::new(0, 10, false).is_err());
        assert!(PacedConfig::new(8, 0, false).is_err());
        let c = PacedConfig::new(8, 10, true).unwrap();
        assert_eq!(c.alphabet().bits_per_symbol(), 3);
        assert_eq!(c.dwell(), 10);
        assert!(c.has_fec());
    }

    #[test]
    fn transient_silence_does_not_tear_down_a_frame() {
        let cfg = config(4, false);
        let mut sink = SymbolSink::new(&cfg);
        let mut tracker = RunTracker::default();
        tracker.observe(
            &mut sink,
            Observation::Symbol {
                parity: 0,
                level: 1,
            },
        );
        tracker.observe(
            &mut sink,
            Observation::Symbol {
                parity: 1,
                level: 2,
            },
        );
        assert!(sink.dirty());
        // A short sub-threshold stall mid-transition: no reset.
        for _ in 0..(SILENCE_RESET_RUN - 1) {
            tracker.observe(&mut sink, Observation::Silence);
        }
        assert_eq!(sink.rejected, 0);
        assert!(sink.dirty());
        // A symbol resumes the frame and clears the silence run.
        tracker.observe(
            &mut sink,
            Observation::Symbol {
                parity: 0,
                level: 3,
            },
        );
        for _ in 0..(SILENCE_RESET_RUN - 1) {
            tracker.observe(&mut sink, Observation::Silence);
        }
        assert_eq!(sink.rejected, 0);
        // Sustained silence finally rejects the abandoned frame and
        // re-arms.
        tracker.observe(&mut sink, Observation::Silence);
        assert_eq!(sink.rejected, 1);
        assert!(!sink.dirty());
        assert_eq!(tracker.index, 0);
    }

    #[test]
    fn tracker_inserts_parity_erasure_for_missed_first_symbol() {
        let cfg = config(4, true);
        // Build a valid symbol stream, then replay it with the opening
        // symbol dropped: the side-parity skew reveals the miss and FEC
        // absorbs the erasure.
        let symbols = cfg.symbols_for(b"x");
        let mut sink = SymbolSink::new(&cfg);
        let mut tracker = RunTracker::default();
        let mut message = None;
        for (i, &s) in symbols.iter().enumerate().skip(1) {
            let obs = Observation::Symbol {
                parity: (i % 2) as u8,
                level: s,
            };
            if let Some(m) = tracker.observe(&mut sink, obs) {
                message = Some(m);
            }
        }
        // Terminator flip commits the last data symbol.
        let term = Observation::Symbol {
            parity: (symbols.len() % 2) as u8,
            level: cfg.terminator_level(),
        };
        if let Some(m) = tracker.observe(&mut sink, term) {
            message = Some(m);
        }
        assert_eq!(message, Some(b"x".to_vec()));
        assert_eq!(sink.corrected, 1);
        assert_eq!(sink.rejected, 0);
    }
}
