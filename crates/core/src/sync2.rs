//! Protocol P1 (§3.1, Fig. 1): synchronous coding with two robots.
//!
//! Time alternates between **signal** instants and **return** instants.
//! On a signal instant, a robot with a bit to send steps sideways: to send
//! `0` it moves to its *right* with respect to the direction toward its
//! peer, to send `1` to its left (with shared chirality both robots agree
//! on right/left). On the return instant it steps back home. A robot with
//! nothing to send stays put — the protocol is *silent*.
//!
//! Decoding is symmetric: on a return instant (when the peer's signal
//! position is visible in the snapshot) the observer projects the peer's
//! displacement on the peer's right-hand direction and reads the bit.
//!
//! Since both robots move perpendicular to the line between their homes,
//! their distance never decreases — collision-free without any granular
//! machinery.

use stigmergy_coding::bits::BitQueue;
use stigmergy_coding::framing::{encode_frame, FrameDecoder};
use stigmergy_coding::Bit;
use stigmergy_geometry::{Point, Tolerance, Vec2};
use stigmergy_robots::{MovementProtocol, View};

/// The two-robot synchronous movement-coding protocol.
#[derive(Debug, Clone, Default)]
pub struct Sync2 {
    counter: u64,
    home: Option<Point>,
    peer_home: Option<Point>,
    // Homes are fixed after the first activation, so both right-hand
    // directions are too — computed once there, not per signal/decode.
    my_right: Option<Vec2>,
    peer_right: Option<Vec2>,
    lateral_step: f64,
    outgoing: BitQueue,
    decoder: FrameDecoder,
    inbox: Vec<Vec<u8>>,
    decoded_bits: Vec<Bit>,
    signals_sent: u64,
}

impl Sync2 {
    /// Creates an idle protocol instance.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues a message for the peer.
    pub fn send(&mut self, payload: &[u8]) {
        self.outgoing.enqueue(&encode_frame(payload));
    }

    /// Queues raw bits, bypassing framing — the peer will *decode* the
    /// bits but complete no message until a well-formed frame arrives.
    /// Diagnostics and figure reproductions only.
    pub fn send_raw(&mut self, bits: &stigmergy_coding::BitString) {
        self.outgoing.enqueue(bits);
    }

    /// Messages received so far, in order.
    #[must_use]
    pub fn inbox(&self) -> &[Vec<u8>] {
        &self.inbox
    }

    /// Raw bits decoded so far (diagnostics / Fig. 1 reproduction).
    #[must_use]
    pub fn decoded_bits(&self) -> &[Bit] {
        &self.decoded_bits
    }

    /// Whether all queued bits have been sent.
    #[must_use]
    pub fn is_drained(&self) -> bool {
        self.outgoing.is_empty()
    }

    /// Number of signal moves made.
    #[must_use]
    pub fn signals_sent(&self) -> u64 {
        self.signals_sent
    }

    /// The peer's right-hand direction as seen from `peer_home` facing
    /// `my_home` — the direction a peer's `0` displacement points to.
    fn peer_right(&self) -> Option<Vec2> {
        self.peer_right
    }

    /// My right-hand direction facing the peer.
    fn my_right(&self) -> Option<Vec2> {
        self.my_right
    }

    fn decode_peer(&mut self, peer_pos: Point) {
        let (Some(peer_home), Some(right)) = (self.peer_home, self.peer_right()) else {
            return;
        };
        let disp = peer_pos - peer_home;
        let tol = Tolerance::default();
        if tol.zero(disp.norm()) {
            return; // silence
        }
        let bit = Bit::from_bool(disp.dot(right) < 0.0); // right = 0, left = 1
        self.decoded_bits.push(bit);
        if let Some(msg) = self.decoder.push_bit(bit) {
            self.inbox.push(msg);
        }
    }
}

impl MovementProtocol for Sync2 {
    fn on_activate(&mut self, view: &View) -> Point {
        let c = self.counter;
        self.counter += 1;

        if self.home.is_none() {
            // Sync2 is the two-robot protocol: with any other cohort size
            // the "direction given by the peer" is ill-defined, so stay
            // put (the swarm protocols handle n > 2).
            if view.cohort() != 2 {
                return view.own_position();
            }
            // First activation = t0 in the synchronous model: both robots
            // are at their homes.
            self.home = Some(view.own_position());
            let peer = view.others().first().map(|o| o.position);
            self.peer_home = peer;
            if let (Some(h), Some(p)) = (self.home, peer) {
                // A quarter of the separation keeps signals unambiguous and
                // well within any sane σ; still capped by σ below.
                self.lateral_step = (h.distance(p) / 4.0).min(view.sigma());
                self.my_right = (p - h).normalized().ok().map(Vec2::perp_cw);
                self.peer_right = (h - p).normalized().ok().map(Vec2::perp_cw);
            }
        }
        let (Some(home), Some(_)) = (self.home, self.peer_home) else {
            return view.own_position();
        };

        if c.is_multiple_of(2) {
            // Signal instant.
            let Some(bit) = self.outgoing.dequeue() else {
                return home; // silent
            };
            self.signals_sent += 1;
            let right = self.my_right().expect("homes are distinct");
            let dir = if bit.as_bool() { -right } else { right };
            home + dir * self.lateral_step
        } else {
            // Return instant; the snapshot shows the peer's signal
            // position — decode it first.
            if let Some(peer) = view.others().first() {
                self.decode_peer(peer.position);
            }
            home
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stigmergy_geometry::Point;
    use stigmergy_robots::Engine;
    use stigmergy_scheduler::Synchronous;

    fn engine(seed: u64) -> Engine<Sync2> {
        Engine::builder()
            .positions([Point::new(0.0, 0.0), Point::new(8.0, 0.0)])
            .protocols([Sync2::new(), Sync2::new()])
            .schedule(Synchronous)
            .frame_seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn one_way_message_delivery() {
        let mut e = engine(1);
        e.protocol_mut(0).send(b"hi");
        e.run_until(500, |e| !e.protocol(1).inbox().is_empty())
            .unwrap();
        assert_eq!(e.protocol(1).inbox(), &[b"hi".to_vec()]);
        assert!(e.protocol(0).is_drained());
    }

    #[test]
    fn duplex_chat() {
        let mut e = engine(2);
        e.protocol_mut(0).send(b"ping");
        e.protocol_mut(1).send(b"pong!");
        e.run_until(800, |e| {
            !e.protocol(0).inbox().is_empty() && !e.protocol(1).inbox().is_empty()
        })
        .unwrap();
        assert_eq!(e.protocol(1).inbox(), &[b"ping".to_vec()]);
        assert_eq!(e.protocol(0).inbox(), &[b"pong!".to_vec()]);
    }

    #[test]
    fn multiple_messages_in_order() {
        let mut e = engine(3);
        e.protocol_mut(0).send(b"one");
        e.protocol_mut(0).send(b"two");
        e.protocol_mut(0).send(b"three");
        e.run_until(2000, |e| e.protocol(1).inbox().len() == 3)
            .unwrap();
        assert_eq!(
            e.protocol(1).inbox(),
            &[b"one".to_vec(), b"two".to_vec(), b"three".to_vec()]
        );
    }

    #[test]
    fn silent_when_idle() {
        let mut e = engine(4);
        e.run(50).unwrap();
        // Nobody moved: the protocol is silent.
        assert_eq!(e.trace().path_length(0), 0.0);
        assert_eq!(e.trace().path_length(1), 0.0);
        assert_eq!(e.protocol(0).signals_sent(), 0);
    }

    #[test]
    fn robots_always_return_home() {
        let mut e = engine(5);
        e.protocol_mut(0).send(b"zigzag");
        let homes: Vec<Point> = e.positions().to_vec();
        for _ in 0..100 {
            e.step().unwrap();
            e.step().unwrap();
            // After every (signal, return) pair both robots are home.
            assert!(e.positions()[0].approx_eq(homes[0]));
            assert!(e.positions()[1].approx_eq(homes[1]));
        }
    }

    #[test]
    fn distance_never_decreases_below_initial() {
        let mut e = engine(6);
        e.protocol_mut(0).send(&[0xAA, 0x55]);
        e.protocol_mut(1).send(&[0xFF, 0x00]);
        let d0 = e.positions()[0].distance(e.positions()[1]);
        for _ in 0..400 {
            e.step().unwrap();
            let d = e.positions()[0].distance(e.positions()[1]);
            assert!(d >= d0 - 1e-9, "robots approached: {d} < {d0}");
        }
    }

    #[test]
    fn works_under_random_frames_and_scales() {
        // The protocol must be frame-invariant: rotated/scaled private
        // frames cannot corrupt the bits.
        for seed in 0..10u64 {
            let mut e = engine(1000 + seed);
            e.protocol_mut(0).send(b"R");
            e.protocol_mut(1).send(b"L");
            let out = e
                .run_until(600, |e| {
                    !e.protocol(0).inbox().is_empty() && !e.protocol(1).inbox().is_empty()
                })
                .unwrap();
            assert!(out.satisfied, "seed {seed} failed to deliver");
            assert_eq!(e.protocol(1).inbox()[0], b"R".to_vec());
            assert_eq!(e.protocol(0).inbox()[0], b"L".to_vec());
        }
    }

    #[test]
    fn fig1_bit_pattern() {
        // Reproduce Fig. 1: the sender's very first signal for bit 0 is on
        // its right w.r.t. the peer; for bit 1 on its left. With identity
        // frames, robot 0 at origin facing +x: right = -y.
        let mut e = Engine::builder()
            .positions([Point::new(0.0, 0.0), Point::new(8.0, 0.0)])
            .protocols([Sync2::new(), Sync2::new()])
            .unit_frames()
            .build()
            .unwrap();
        // Frame a raw pattern: first bit of the length prefix of b"" is 0 —
        // instead drive single bits through the queue directly.
        e.protocol_mut(0)
            .send_raw(&stigmergy_coding::BitString::parse("01").unwrap());
        e.step().unwrap(); // signal 0
        assert!(e.positions()[0].y < 0.0, "bit 0 goes right (south)");
        e.step().unwrap(); // return
        assert!(e.positions()[0].approx_eq(Point::ORIGIN));
        e.step().unwrap(); // signal 1
        assert!(e.positions()[0].y > 0.0, "bit 1 goes left (north)");
        // And the peer decoded exactly 01.
        e.step().unwrap();
        assert_eq!(e.protocol(1).decoded_bits(), &[Bit::Zero, Bit::One]);
    }

    #[test]
    fn wrong_cohort_size_stays_put() {
        // Three robots running Sync2: everyone safely freezes instead of
        // mis-signalling.
        let mut e = Engine::builder()
            .positions([
                Point::new(0.0, 0.0),
                Point::new(8.0, 0.0),
                Point::new(4.0, 6.0),
            ])
            .protocols([Sync2::new(), Sync2::new(), Sync2::new()])
            .unit_frames()
            .build()
            .unwrap();
        e.protocol_mut(0).send(b"nope");
        e.run(40).unwrap();
        for i in 0..3 {
            assert_eq!(e.trace().path_length(i), 0.0, "robot {i} moved");
        }
        assert!(e.protocol(1).inbox().is_empty());
    }

    #[test]
    fn lateral_step_respects_sigma() {
        let mut e = Engine::builder()
            .positions([Point::new(0.0, 0.0), Point::new(8.0, 0.0)])
            .protocols([Sync2::new(), Sync2::new()])
            .unit_frames()
            .sigma(0.5) // far below d0/4 = 2
            .build()
            .unwrap();
        e.protocol_mut(0).send(b"\xF0");
        e.run_until(200, |e| !e.protocol(1).inbox().is_empty())
            .unwrap();
        assert_eq!(e.protocol(1).inbox()[0], b"\xF0".to_vec());
    }
}
