//! Implicit-acknowledgement bookkeeping (Lemma 4.1 / Corollary 4.2).
//!
//! The asynchronous protocols never stop moving and never get explicit
//! acks. Instead they rely on the paper's key lemma: *if robot `r` keeps
//! moving in one direction and observes that `r′`'s position changed twice,
//! then `r′` must have observed `r`'s motion at least once.* A sender
//! therefore holds each signal until it has counted **two position
//! changes** from every receiver since the signal began.
//!
//! [`ChangeTracker`] does that counting: it remembers the last observed
//! position of every peer and how many changes have been seen since the
//! last [`ChangeTracker::reset`] (= since the current movement stint
//! began).

use serde::{Deserialize, Serialize};
use stigmergy_geometry::Point;

/// Counts observed position changes per peer since the last reset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChangeTracker {
    last: Vec<Option<Point>>,
    counts: Vec<u32>,
}

impl ChangeTracker {
    /// Creates a tracker over `n` peers (index the peers however the caller
    /// likes — home indices in practice).
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            last: vec![None; n],
            counts: vec![0; n],
        }
    }

    /// Number of peers tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the tracker tracks nobody.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Records an observation of peer `i` at `pos`.
    ///
    /// A *change* is any difference from the previously observed position
    /// (exact comparison — in the model robots that move do change their
    /// coordinates; tolerance-based comparison would let a adversarially
    /// tiny move go unnoticed, which the paper's Remark 4.3 forbids).
    ///
    /// Returns `true` if this observation was a change.
    pub fn observe(&mut self, i: usize, pos: Point) -> bool {
        let changed = match self.last[i] {
            Some(prev) => prev != pos,
            // First observation after construction: no change yet —
            // we have nothing to compare against.
            None => false,
        };
        if changed {
            self.counts[i] += 1;
        }
        self.last[i] = Some(pos);
        changed
    }

    /// Changes counted for peer `i` since the last reset.
    #[must_use]
    pub fn count(&self, i: usize) -> u32 {
        self.counts[i]
    }

    /// Whether peer `i` has changed at least `k` times since the reset.
    #[must_use]
    pub fn changed_at_least(&self, i: usize, k: u32) -> bool {
        self.counts[i] >= k
    }

    /// Whether **every** peer except `exclude` has changed at least `k`
    /// times — the §4.2 sending condition ("until it observes that the
    /// position of every robot changed twice").
    #[must_use]
    pub fn all_changed_at_least(&self, k: u32, exclude: Option<usize>) -> bool {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(i, _)| Some(i) != exclude)
            .all(|(_, &c)| c >= k)
    }

    /// Whether every peer *not* listed in `excluded` has changed at least
    /// `k` times since the reset.
    ///
    /// This is the crash-aware form of [`ChangeTracker::all_changed_at_least`]:
    /// a crash-stopped robot never moves again, so a sender that keeps
    /// waiting on its double-change would hold an excursion forever. A
    /// failure detector (the algorithm driver, which sees fault events)
    /// reports crashed peers and the sender drops them from the
    /// acknowledgement condition. Lemma 4.1 still holds pairwise for every
    /// live peer.
    #[must_use]
    pub fn all_changed_at_least_except(&self, k: u32, excluded: &[usize]) -> bool {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(i, _)| !excluded.contains(&i))
            .all(|(_, &c)| c >= k)
    }

    /// Resets all change counts (keeps the last observed positions, so the
    /// next stint compares against current reality, not stale data).
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
    }

    /// The last observed position of peer `i`.
    #[must_use]
    pub fn last_position(&self, i: usize) -> Option<Point> {
        self.last[i]
    }
}

/// A bounded retransmission schedule with exponential backoff.
///
/// The movement protocols' implicit acks ([`ChangeTracker`]) guarantee
/// receipt only while every robot keeps getting activated and observing.
/// Under injected faults (crash-stops, observation dropouts) a signal
/// can stall, so the hardened session layer re-sends: attempt `k` gets a
/// step budget of `initial_budget × backoff_factor^k`, and after
/// `max_attempts` failed attempts the sender gives up on the movement
/// channel and degrades to its secondary channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetransmitPolicy {
    max_attempts: u32,
    initial_budget: u64,
    backoff_factor: u32,
}

impl Default for RetransmitPolicy {
    /// Three attempts with budgets 2 000 / 4 000 / 8 000 instants.
    fn default() -> Self {
        Self::new(3, 2_000, 2)
    }
}

impl RetransmitPolicy {
    /// Creates a policy of `max_attempts` attempts, the first with
    /// `initial_budget` instants and each later one multiplied by
    /// `backoff_factor`.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    #[must_use]
    pub fn new(max_attempts: u32, initial_budget: u64, backoff_factor: u32) -> Self {
        assert!(max_attempts > 0, "need at least one attempt");
        assert!(initial_budget > 0, "budget must be positive");
        assert!(backoff_factor > 0, "backoff factor must be positive");
        Self {
            max_attempts,
            initial_budget,
            backoff_factor,
        }
    }

    /// Number of attempts before degrading.
    #[must_use]
    pub fn max_attempts(&self) -> u32 {
        self.max_attempts
    }

    /// The step budget of attempt `attempt` (0-based), saturating.
    #[must_use]
    pub fn budget_for(&self, attempt: u32) -> u64 {
        let factor = u64::from(self.backoff_factor).saturating_pow(attempt);
        self.initial_budget.saturating_mul(factor)
    }

    /// The total step budget across all attempts, saturating.
    #[must_use]
    pub fn total_budget(&self) -> u64 {
        (0..self.max_attempts).fold(0u64, |acc, k| acc.saturating_add(self.budget_for(k)))
    }
}

/// How many correction events saturate an [`AdaptiveBudget`].
///
/// Six pressure points halve the movement budgets six times (a 64×
/// reduction), which is already "effectively immediate failover" for
/// every policy in the workspace; deeper shifts would only lose the
/// ability to recover quickly once the channel cleans up.
pub const MAX_PRESSURE: u32 = 6;

/// A [`RetransmitPolicy`] that adapts to forward-error-correction
/// feedback from the secondary channel.
///
/// The hardened session spends movement instants before degrading to
/// wireless. When the wireless FEC reports that it has been *correcting*
/// recent frames, the secondary path is evidently both needed and
/// working, so burning full movement budgets first is wasted time: each
/// correction event raises a pressure level that **halves** every
/// movement budget. An *uncorrectable* block is worse — the noise
/// exceeds the correction radius — so it escalates pressure straight to
/// [`MAX_PRESSURE`], collapsing the schedule to a single minimal
/// movement attempt before failover. Clean (uncorrected) deliveries
/// decay pressure one point at a time, restoring the configured budgets
/// once the channel behaves again.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdaptiveBudget {
    policy: RetransmitPolicy,
    pressure: u32,
}

impl AdaptiveBudget {
    /// Wraps `policy` with zero initial pressure (budgets unchanged).
    #[must_use]
    pub fn new(policy: RetransmitPolicy) -> Self {
        Self {
            policy,
            pressure: 0,
        }
    }

    /// The underlying static policy.
    #[must_use]
    pub fn policy(&self) -> RetransmitPolicy {
        self.policy
    }

    /// Current pressure level in `0..=MAX_PRESSURE`.
    #[must_use]
    pub fn pressure(&self) -> u32 {
        self.pressure
    }

    /// Records a delivery the FEC had to repair (`symbols` > 0 symbol
    /// corrections): one pressure point per event.
    pub fn record_corrected(&mut self, symbols: u64) {
        if symbols > 0 {
            self.pressure = (self.pressure + 1).min(MAX_PRESSURE);
        }
    }

    /// Records a block beyond the correction radius: pressure jumps to
    /// [`MAX_PRESSURE`], so the next send escalates to wireless failover
    /// after a single minimal movement attempt.
    pub fn record_uncorrectable(&mut self) {
        self.pressure = MAX_PRESSURE;
    }

    /// Records a clean delivery (no corrections needed): pressure decays
    /// one point.
    pub fn record_clean(&mut self) {
        self.pressure = self.pressure.saturating_sub(1);
    }

    /// The adapted step budget of attempt `attempt` (0-based): the
    /// policy's budget halved once per pressure point, never below 1.
    #[must_use]
    pub fn budget_for(&self, attempt: u32) -> u64 {
        (self.policy.budget_for(attempt) >> self.pressure).max(1)
    }

    /// The adapted attempt count: the policy's, collapsing to a single
    /// attempt at full pressure (escalation).
    #[must_use]
    pub fn max_attempts(&self) -> u32 {
        if self.pressure >= MAX_PRESSURE {
            1
        } else {
            self.policy.max_attempts()
        }
    }
}

#[cfg(test)]
mod adaptive_tests {
    use super::*;

    #[test]
    fn zero_pressure_matches_the_policy() {
        let a = AdaptiveBudget::new(RetransmitPolicy::new(3, 2_000, 2));
        assert_eq!(a.pressure(), 0);
        assert_eq!(a.budget_for(0), 2_000);
        assert_eq!(a.budget_for(2), 8_000);
        assert_eq!(a.max_attempts(), 3);
    }

    #[test]
    fn corrections_halve_budgets_and_decay_restores_them() {
        let mut a = AdaptiveBudget::new(RetransmitPolicy::new(3, 2_000, 2));
        a.record_corrected(1);
        a.record_corrected(5);
        assert_eq!(a.pressure(), 2);
        assert_eq!(a.budget_for(0), 500);
        assert_eq!(a.max_attempts(), 3, "still below escalation");
        a.record_clean();
        assert_eq!(a.pressure(), 1);
        assert_eq!(a.budget_for(0), 1_000);
        a.record_clean();
        a.record_clean();
        assert_eq!(a.pressure(), 0, "decay saturates at zero");
    }

    #[test]
    fn clean_deliveries_do_not_raise_pressure() {
        let mut a = AdaptiveBudget::new(RetransmitPolicy::default());
        a.record_corrected(0);
        assert_eq!(a.pressure(), 0, "zero corrections is a clean event");
    }

    #[test]
    fn uncorrectable_escalates_to_single_minimal_attempt() {
        let mut a = AdaptiveBudget::new(RetransmitPolicy::new(3, 64, 2));
        a.record_uncorrectable();
        assert_eq!(a.pressure(), MAX_PRESSURE);
        assert_eq!(a.max_attempts(), 1);
        assert_eq!(a.budget_for(0), 1, "64 >> 6 floors at 1");
        // Saturating: more corrections cannot push past the cap.
        a.record_corrected(1);
        assert_eq!(a.pressure(), MAX_PRESSURE);
    }
}

#[cfg(test)]
mod policy_tests {
    use super::*;

    #[test]
    fn budgets_back_off_exponentially() {
        let p = RetransmitPolicy::new(4, 100, 3);
        assert_eq!(p.budget_for(0), 100);
        assert_eq!(p.budget_for(1), 300);
        assert_eq!(p.budget_for(2), 900);
        assert_eq!(p.budget_for(3), 2_700);
        assert_eq!(p.total_budget(), 4_000);
        assert_eq!(p.max_attempts(), 4);
    }

    #[test]
    fn factor_one_is_constant_budget() {
        let p = RetransmitPolicy::new(3, 50, 1);
        assert_eq!(p.budget_for(2), 50);
        assert_eq!(p.total_budget(), 150);
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        let p = RetransmitPolicy::new(200, u64::MAX / 2, 2);
        assert_eq!(p.budget_for(150), u64::MAX);
        assert_eq!(p.total_budget(), u64::MAX);
    }

    #[test]
    fn default_is_bounded() {
        let p = RetransmitPolicy::default();
        assert_eq!(p.max_attempts(), 3);
        assert_eq!(p.total_budget(), 2_000 + 4_000 + 8_000);
    }

    #[test]
    #[should_panic(expected = "at least one attempt")]
    fn zero_attempts_rejected() {
        let _ = RetransmitPolicy::new(0, 1, 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_is_not_a_change() {
        let mut t = ChangeTracker::new(2);
        assert!(!t.observe(0, Point::new(1.0, 1.0)));
        assert_eq!(t.count(0), 0);
        assert_eq!(t.last_position(0), Some(Point::new(1.0, 1.0)));
        assert_eq!(t.last_position(1), None);
    }

    #[test]
    fn counts_changes() {
        let mut t = ChangeTracker::new(1);
        t.observe(0, Point::new(0.0, 0.0));
        assert!(t.observe(0, Point::new(0.0, 1.0)));
        assert!(!t.observe(0, Point::new(0.0, 1.0))); // unchanged
        assert!(t.observe(0, Point::new(0.0, 2.0)));
        assert_eq!(t.count(0), 2);
        assert!(t.changed_at_least(0, 2));
        assert!(!t.changed_at_least(0, 3));
    }

    #[test]
    fn tiny_moves_still_count() {
        // Exact comparison: any coordinate difference is a change.
        let mut t = ChangeTracker::new(1);
        t.observe(0, Point::new(1.0, 1.0));
        assert!(t.observe(0, Point::new(1.0 + 1e-14, 1.0)));
        assert_eq!(t.count(0), 1);
    }

    #[test]
    fn all_changed_with_exclusion() {
        let mut t = ChangeTracker::new(3);
        for i in 0..3 {
            t.observe(i, Point::new(i as f64, 0.0));
        }
        // Peers 1 and 2 change twice; peer 0 (self) never does.
        for step in 1..=2 {
            for i in 1..3 {
                t.observe(i, Point::new(i as f64, step as f64));
            }
        }
        assert!(t.all_changed_at_least(2, Some(0)));
        assert!(!t.all_changed_at_least(2, None));
        assert!(!t.all_changed_at_least(3, Some(0)));
    }

    #[test]
    fn exclusion_set_ignores_frozen_peers() {
        let mut t = ChangeTracker::new(3);
        for i in 0..3 {
            t.observe(i, Point::new(i as f64, 0.0));
        }
        // Peer 2 is crash-stopped: it never changes again. Peer 1 keeps
        // moving.
        for step in 1..=2 {
            t.observe(1, Point::new(1.0, step as f64));
            t.observe(2, Point::new(2.0, 0.0));
        }
        // Waiting on everyone wedges…
        assert!(!t.all_changed_at_least(2, Some(0)));
        // …but excluding the crashed peer unblocks the stint.
        assert!(t.all_changed_at_least_except(2, &[0, 2]));
        assert!(!t.all_changed_at_least_except(3, &[0, 2]));
        // The single-exclusion form is the `&[i]` special case.
        assert_eq!(
            t.all_changed_at_least(2, Some(0)),
            t.all_changed_at_least_except(2, &[0])
        );
    }

    #[test]
    fn reset_keeps_positions() {
        let mut t = ChangeTracker::new(1);
        t.observe(0, Point::new(0.0, 0.0));
        t.observe(0, Point::new(1.0, 0.0));
        assert_eq!(t.count(0), 1);
        t.reset();
        assert_eq!(t.count(0), 0);
        // Re-observing the same position after reset is NOT a change…
        assert!(!t.observe(0, Point::new(1.0, 0.0)));
        // …but a new one is.
        assert!(t.observe(0, Point::new(2.0, 0.0)));
    }

    #[test]
    fn sizes() {
        let t = ChangeTracker::new(4);
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        assert!(ChangeTracker::new(0).is_empty());
    }
}
