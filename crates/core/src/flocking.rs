//! Flocking composition (§5).
//!
//! "The robots may decide to flock in a certain direction, subtracting the
//! agreed upon global flocking movement in order to preserve the relative
//! movements used for communication." [`Flocking`] realizes that remark as
//! a protocol combinator: the whole swarm translates by a common velocity
//! `v` per instant while chatting. Before delegating to the inner
//! protocol, the wrapper shifts the observed configuration back by the
//! accumulated flock displacement — the inner protocol sees a stationary
//! swarm — and then adds the next instant's displacement to the returned
//! target.
//!
//! The composition is *synchronous-only*: the displacement is `t·v`, and
//! counting instants requires being active at every one of them.

use crate::session::SwarmProtocol;
use crate::SwarmGeometry;
use stigmergy_geometry::{Point, Vec2};
use stigmergy_robots::{MovementProtocol, View};

/// A synchronous protocol riding a flocking swarm.
///
/// The engine's motion cap must leave headroom for the drift: every
/// instant's move is `excursion + v`, and a σ-truncated move would fall
/// behind the agreed drift and silently corrupt decoding (debug builds
/// assert `|v| < σ`).
#[derive(Debug, Clone)]
pub struct Flocking<P> {
    inner: P,
    velocity: Vec2,
    instants: u64,
}

impl<P> Flocking<P> {
    /// Wraps `inner` with a per-instant flocking velocity, expressed in
    /// **this robot's local frame** (the swarm agrees on a world velocity;
    /// each robot knows it in its own coordinates).
    #[must_use]
    pub fn new(inner: P, velocity: Vec2) -> Self {
        Self {
            inner,
            velocity,
            instants: 0,
        }
    }

    /// The wrapped protocol.
    #[must_use]
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Mutable access to the wrapped protocol (to queue messages).
    pub fn inner_mut(&mut self) -> &mut P {
        &mut self.inner
    }

    /// The flocking velocity (local units per instant).
    #[must_use]
    pub fn velocity(&self) -> Vec2 {
        self.velocity
    }

    /// Instants elapsed so far.
    #[must_use]
    pub fn instants(&self) -> u64 {
        self.instants
    }
}

impl<P: MovementProtocol> MovementProtocol for Flocking<P> {
    fn on_activate(&mut self, view: &View) -> Point {
        // The composition is only sound if the σ cap can never truncate a
        // combined flock+excursion move: a truncated move would leave the
        // robot behind the agreed drift and desynchronize every decoder.
        // The engine's σ reaches us through the view (local units).
        debug_assert!(
            self.velocity.norm() < view.sigma(),
            "flocking velocity {} must stay below σ {} (excursions add more)",
            self.velocity.norm(),
            view.sigma()
        );
        // The swarm has drifted `instants·v` so far; normalize it away.
        let drift = self.velocity * (self.instants as f64);
        let normalized = view.translated(-drift);
        let target = self.inner.on_activate(&normalized);
        self.instants += 1;
        // Re-apply the drift, plus this instant's flocking move.
        target + self.velocity * (self.instants as f64)
    }
}

impl<P: SwarmProtocol> SwarmProtocol for Flocking<P> {
    fn queue_label(&mut self, label: usize, payload: &[u8]) {
        self.inner.queue_label(label, payload);
    }
    fn queue_broadcast(&mut self, payload: &[u8]) {
        self.inner.queue_broadcast(payload);
    }
    fn inbox_entries(&self) -> &[crate::decode::InboxEntry] {
        self.inner.inbox_entries()
    }
    fn swarm_geometry(&self) -> Option<&SwarmGeometry> {
        self.inner.swarm_geometry()
    }
    fn failure(&self) -> Option<&crate::CoreError> {
        self.inner.failure()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync2::Sync2;
    use crate::sync_swarm::SyncSwarm;
    use stigmergy_robots::{Capabilities, Engine};
    use stigmergy_scheduler::Synchronous;

    #[test]
    fn flocking_sync2_chat_while_moving() {
        // Identity frames: both robots share the world velocity directly.
        let v = Vec2::new(0.3, 0.1);
        let mut e = Engine::builder()
            .positions([Point::new(0.0, 0.0), Point::new(8.0, 0.0)])
            .protocols([
                Flocking::new(Sync2::new(), v),
                Flocking::new(Sync2::new(), v),
            ])
            .unit_frames()
            .schedule(Synchronous)
            .build()
            .unwrap();
        e.protocol_mut(0).inner_mut().send(b"on the move");
        let out = e
            .run_until(600, |e| !e.protocol(1).inner().inbox().is_empty())
            .unwrap();
        assert!(out.satisfied);
        assert_eq!(e.protocol(1).inner().inbox()[0], b"on the move".to_vec());
        // The swarm genuinely travelled.
        let t = e.trace().len() as f64;
        let expected = Point::new(0.0, 0.0) + v * t;
        assert!(
            e.positions()[0].distance(expected) < 1e-6,
            "robot 0 at {}, expected {expected}",
            e.positions()[0]
        );
    }

    #[test]
    fn flocking_swarm_delivery() {
        let v = Vec2::new(0.05, -0.02);
        let positions = [
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(5.0, 8.0),
        ];
        let mut e = Engine::builder()
            .positions(positions)
            .protocols((0..3).map(|_| Flocking::new(SyncSwarm::anonymous_with_direction(), v)))
            .capabilities(Capabilities::anonymous_with_direction())
            .unit_frames()
            .schedule(Synchronous)
            .build()
            .unwrap();
        // Warm-up so geometry exists; then address robot 2 by its label.
        e.step().unwrap();
        let g = e.protocol(0).inner().geometry().unwrap().clone();
        // Home of world robot 2 in robot 0's (identity) frame is its
        // initial position.
        let home2 = (0..3).find(|&h| g.home(h).approx_eq(positions[2])).unwrap();
        let label = g.label_for(0, home2);
        e.protocol_mut(0).inner_mut().send_label(label, b"flock");
        let out = e
            .run_until(2_000, |e| {
                e.protocol(2)
                    .inner()
                    .inbox()
                    .iter()
                    .any(|m| m.payload == b"flock")
            })
            .unwrap();
        assert!(out.satisfied);
        // And the whole swarm drifted together.
        let t = e.trace().len() as f64;
        for (i, &p0) in positions.iter().enumerate() {
            assert!(
                e.positions()[i].distance(p0 + v * t) < 1e-6,
                "robot {i} strayed"
            );
        }
    }

    #[test]
    fn zero_velocity_is_transparent() {
        let mut plain = Engine::builder()
            .positions([Point::new(0.0, 0.0), Point::new(8.0, 0.0)])
            .protocols([Sync2::new(), Sync2::new()])
            .unit_frames()
            .build()
            .unwrap();
        let mut flocked = Engine::builder()
            .positions([Point::new(0.0, 0.0), Point::new(8.0, 0.0)])
            .protocols([
                Flocking::new(Sync2::new(), Vec2::ZERO),
                Flocking::new(Sync2::new(), Vec2::ZERO),
            ])
            .unit_frames()
            .build()
            .unwrap();
        plain.protocol_mut(0).send(b"same");
        flocked.protocol_mut(0).inner_mut().send(b"same");
        for _ in 0..100 {
            plain.step().unwrap();
            flocked.step().unwrap();
            assert_eq!(plain.positions(), flocked.positions());
        }
        assert_eq!(
            plain.protocol(1).inbox(),
            flocked.protocol(1).inner().inbox()
        );
    }

    #[test]
    fn flocking_under_rotated_private_frames() {
        // The swarm agrees on a WORLD velocity; each robot expresses it in
        // its own frame. Frames are deterministic per seed, so a probe
        // engine reveals them first.
        let world_v = Vec2::new(0.04, -0.03);
        let positions = [
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(5.0, 8.0),
        ];
        let seed = 77u64;
        // Chirality-only: frames carry arbitrary rotations AND scales.
        let probe = Engine::builder()
            .positions(positions)
            .protocols((0..3).map(|_| Flocking::new(SyncSwarm::anonymous(), Vec2::ZERO)))
            .capabilities(Capabilities::anonymous())
            .frame_seed(seed)
            .build()
            .unwrap();
        assert!(
            probe.frames().iter().any(|f| f.rotation().abs() > 0.1),
            "frames should be genuinely rotated"
        );
        let local_vs: Vec<Vec2> = probe
            .frames()
            .iter()
            .map(|f| f.dir_to_local(world_v))
            .collect();
        let mut e = Engine::builder()
            .positions(positions)
            .protocols(
                local_vs
                    .iter()
                    .map(|&v| Flocking::new(SyncSwarm::anonymous(), v)),
            )
            .capabilities(Capabilities::anonymous())
            .frame_seed(seed)
            .build()
            .unwrap();
        e.step().unwrap();
        // Robot 2's label under the sender's SEC naming, from world homes.
        let label = crate::label_by_sec(e.trace().initial(), 0)
            .unwrap()
            .label_of(2)
            .unwrap();
        e.protocol_mut(0).inner_mut().send_label(label, b"rotated");
        let out = e
            .run_until(2_000, |e| {
                e.protocol(2)
                    .inner()
                    .inbox()
                    .iter()
                    .any(|m| m.payload == b"rotated")
            })
            .unwrap();
        assert!(out.satisfied);
        // The swarm drifted along the WORLD velocity despite every robot
        // computing in its own frame.
        let t = e.trace().len() as f64;
        for (i, &p0) in positions.iter().enumerate() {
            let ideal = p0 + world_v * t;
            assert!(
                e.positions()[i].distance(ideal) < 1e-6,
                "robot {i} strayed by {}",
                e.positions()[i].distance(ideal)
            );
        }
    }

    #[test]
    fn accessors() {
        let f = Flocking::new(Sync2::new(), Vec2::new(1.0, 0.0));
        assert_eq!(f.velocity(), Vec2::new(1.0, 0.0));
        assert_eq!(f.instants(), 0);
        assert!(f.inner().inbox().is_empty());
    }
}
