//! Self-stabilization for the synchronous protocols (§5).
//!
//! "It seems that, in our case, stabilization can be achieved in the
//! synchronous case by carefully adapting the protocols proposed in
//! Section 3; say by assuming a global clock (using GPS input) returning
//! to the initial location and (re)computing the preprocessing phase every
//! round timestamp." — §5, *Stabilization*.
//!
//! [`StabilizingSync`] realizes that sketch. Time is divided into
//! **epochs** of `period` instants (the global clock comes from the
//! engine's `global_clock` option — the paper's GPS assumption). At every
//! epoch boundary each robot discards *all* volatile protocol state and
//! re-runs the `t0` preprocessing from the current configuration. A robot
//! whose memory was corrupted by a transient fault (the classic
//! self-stabilization fault model of Dolev's book, the paper's ref. 9)
//! simply idles until the next boundary and then rejoins — the system
//! converges to correct behaviour within one epoch of the last fault.
//!
//! Identity must survive faults, so the wrapper uses the observable-ID
//! naming (§3.2): applications address robots by [`VisibleId`], and a
//! message interrupted by an epoch boundary is retransmitted from its
//! first bit in the next epoch (the receiver's partial frame died with
//! the old epoch, so no duplicates arise).

use crate::sync_swarm::SyncSwarm;
use std::collections::VecDeque;
use stigmergy_geometry::Point;
use stigmergy_robots::{MovementProtocol, View, VisibleId};

/// Self-stabilizing wrapper over the identified synchronous protocol.
#[derive(Debug, Clone)]
pub struct StabilizingSync {
    period: u64,
    inner: SyncSwarm,
    epoch: Option<u64>,
    epochs_started: u64,
    queue: VecDeque<(VisibleId, Vec<u8>)>,
    current: Option<(VisibleId, Vec<u8>)>,
    harvested: usize,
    inbox: Vec<(VisibleId, Vec<u8>)>,
}

impl StabilizingSync {
    /// Creates a wrapper with the given epoch length (instants).
    ///
    /// # Panics
    ///
    /// Panics unless `period` is even and at least 4 (an epoch must hold
    /// at least one signal/return pair after the preprocessing instant,
    /// and boundaries must land on signal instants so every robot is at
    /// its home position when geometry is recomputed).
    #[must_use]
    pub fn new(period: u64) -> Self {
        assert!(
            period >= 4 && period.is_multiple_of(2),
            "epoch period must be even and ≥ 4"
        );
        Self {
            period,
            inner: SyncSwarm::routed(),
            epoch: None,
            epochs_started: 0,
            queue: VecDeque::new(),
            current: None,
            harvested: 0,
            inbox: Vec::new(),
        }
    }

    /// Queues a message for the robot with visible ID `dest`.
    ///
    /// # Panics
    ///
    /// Panics if the framed message cannot fit within one epoch
    /// (`2 × frame_bits + 2 > period`): such a message would be
    /// retransmitted forever.
    pub fn send_id(&mut self, dest: VisibleId, payload: &[u8]) {
        let frame_bits = 16 + 8 * payload.len() as u64;
        assert!(
            2 * frame_bits + 2 <= self.period,
            "message of {frame_bits} frame bits cannot complete within an epoch of {}",
            self.period
        );
        self.queue.push_back((dest, payload.to_vec()));
    }

    /// Messages received, as `(sender_id, payload)`, across all epochs.
    #[must_use]
    pub fn inbox(&self) -> &[(VisibleId, Vec<u8>)] {
        &self.inbox
    }

    /// Epochs this instance has (re)initialized — diagnostics.
    #[must_use]
    pub fn epochs_started(&self) -> u64 {
        self.epochs_started
    }

    /// Whether all queued traffic has been transmitted.
    #[must_use]
    pub fn is_drained(&self) -> bool {
        self.queue.is_empty() && self.current.is_none()
    }

    /// The epoch length.
    #[must_use]
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Moves newly decoded inner-inbox entries into the cross-epoch inbox,
    /// translating home indices to stable IDs.
    fn harvest(&mut self) {
        let Some(g) = self.inner.geometry() else {
            return;
        };
        for e in &self.inner.inbox()[self.harvested..] {
            if let Some(id) = g.id_of(e.sender) {
                self.inbox.push((id, e.payload.clone()));
            }
        }
        self.harvested = self.inner.inbox().len();
    }

    /// Starts a fresh epoch: harvest, reset volatile state, retransmit the
    /// interrupted message (if any).
    fn begin_epoch(&mut self, epoch: u64) {
        self.harvest();
        self.inner = SyncSwarm::routed();
        self.harvested = 0;
        self.epoch = Some(epoch);
        self.epochs_started += 1;
        if let Some((dest, payload)) = self.current.clone() {
            self.inner.send_id(dest, &payload);
        }
    }
}

impl MovementProtocol for StabilizingSync {
    fn on_activate(&mut self, view: &View) -> Point {
        // The stabilization scheme is defined only with the global clock
        // (the paper's GPS assumption); without it, stay safely put.
        let Some(t) = view.time() else {
            return view.own_position();
        };
        let epoch = t / self.period;
        if self.epoch != Some(epoch) {
            if t % self.period == 0 {
                self.begin_epoch(epoch);
            } else {
                // Mid-epoch recovery (e.g. right after a memory fault):
                // idle until the boundary so the rebuilt geometry is
                // computed from an all-home configuration.
                return view.own_position();
            }
        }

        // Message lifecycle: an in-flight message is done once the inner
        // protocol has put all its bits on the wire (in the synchronous
        // setting every sent bit is decoded on the following instant).
        if self.current.is_some() && self.inner.is_drained() {
            self.current = None;
        }
        if self.current.is_none() && self.inner.is_drained() {
            // Only start a message that can finish before the boundary.
            if let Some((dest, payload)) = self.queue.front() {
                let frame_bits = 16 + 8 * payload.len() as u64;
                let remaining = self.period - (t % self.period);
                if 2 * frame_bits + 2 <= remaining {
                    let (dest, payload) = (*dest, payload.clone());
                    self.queue.pop_front();
                    self.inner.send_id(dest, &payload);
                    self.current = Some((dest, payload));
                }
            }
        }

        let target = self.inner.on_activate(view);
        self.harvest();
        target
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stigmergy_robots::{Capabilities, Engine};
    use stigmergy_scheduler::Synchronous;

    fn ring(n: usize) -> Vec<Point> {
        (0..n)
            .map(|k| {
                let theta = std::f64::consts::TAU * (k as f64) / (n as f64);
                let r = 20.0 + (k as f64) * 0.2;
                Point::new(r * theta.sin(), r * theta.cos())
            })
            .collect()
    }

    fn engine(n: usize, period: u64, seed: u64) -> Engine<StabilizingSync> {
        Engine::builder()
            .positions(ring(n))
            .protocols((0..n).map(|_| StabilizingSync::new(period)))
            .capabilities(Capabilities::identified_with_direction())
            .schedule(Synchronous)
            .global_clock()
            .frame_seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn basic_delivery_within_an_epoch() {
        let mut e = engine(4, 128, 1);
        let dest = e.ids().unwrap()[2];
        let me = e.ids().unwrap()[0];
        e.protocol_mut(0).send_id(dest, b"epoch");
        let out = e
            .run_until(2_000, |e| {
                e.protocol(2).inbox().contains(&(me, b"epoch".to_vec()))
            })
            .unwrap();
        assert!(out.satisfied);
    }

    #[test]
    fn interrupted_message_is_retransmitted_across_the_boundary() {
        // Period 64 holds only (64 − 2)/2 = 31 bits; an 8-bit payload is
        // a 24-bit frame = 48 instants + preprocessing. Queue it late in
        // the epoch so it cannot start until the next one.
        let mut e = engine(3, 64, 2);
        e.run(40).unwrap(); // deep into epoch 0
        let dest = e.ids().unwrap()[1];
        let me = e.ids().unwrap()[0];
        e.protocol_mut(0).send_id(dest, b"Z");
        let out = e
            .run_until(2_000, |e| {
                e.protocol(1).inbox().contains(&(me, b"Z".to_vec()))
            })
            .unwrap();
        assert!(out.satisfied);
        // It had to wait for epoch 1 (t ≥ 64) to even start.
        assert!(e.time() > 64);
    }

    #[test]
    fn memory_wipe_recovers_after_the_boundary() {
        let mut e = engine(4, 256, 3);
        e.run(10).unwrap();
        // Transient fault: robot 2 loses its entire volatile state
        // mid-epoch (Dolev-style memory corruption).
        *e.protocol_mut(2) = StabilizingSync::new(256);
        // It idles until the next boundary…
        e.run(5).unwrap();
        assert_eq!(e.trace().move_count(2), 0, "faulty robot must stay put");
        // Run past the boundary: the system has converged (the classic
        // self-stabilization guarantee covers behaviour *after* the last
        // fault's recovery, not messages sent while a robot is down).
        while e.time() < 256 {
            e.step().unwrap();
        }
        let dest = e.ids().unwrap()[2];
        let me = e.ids().unwrap()[0];
        e.protocol_mut(0).send_id(dest, b"recovered");
        let out = e
            .run_until(4_000, |e| {
                e.protocol(2).inbox().contains(&(me, b"recovered".to_vec()))
            })
            .unwrap();
        assert!(out.satisfied, "stabilization failed to recover");
        assert!(e.protocol(2).epochs_started() >= 1);
    }

    #[test]
    fn plain_protocol_breaks_under_the_same_fault() {
        // The control experiment: wipe a plain SyncSwarm mid-run while a
        // sender is mid-excursion; the wiped robot rebuilds geometry from
        // a non-home snapshot and never decodes the retried message.
        use crate::sync_swarm::SyncSwarm;
        let mut e = Engine::builder()
            .positions(ring(4))
            .protocols((0..4).map(|_| SyncSwarm::routed()))
            .capabilities(Capabilities::identified_with_direction())
            .schedule(Synchronous)
            .frame_seed(4)
            .build()
            .unwrap();
        e.step().unwrap();
        let dest2 = e.ids().unwrap()[2];
        // Keep robot 0 transmitting so the snapshot at the wipe instant
        // has an out-of-home robot.
        e.protocol_mut(0).send_id(dest2, &[0xAA; 8]);
        e.run(10).unwrap(); // 11 instants done: the next activation is
                            // t = 11, whose snapshot shows robot 0 mid-excursion — the fresh
                            // instance rebuilds geometry from a non-home configuration AND
                            // starts with misaligned signal/return parity.
        *e.protocol_mut(3) = SyncSwarm::routed();
        // A later message to robot 3 (whose geometry is now corrupt).
        let dest3 = e.ids().unwrap()[3];
        e.protocol_mut(1).send_id(dest3, b"lost");
        let out = e
            .run_until(2_000, |e| {
                e.protocol(3).inbox().iter().any(|m| m.payload == b"lost")
            })
            .unwrap();
        assert!(
            !out.satisfied,
            "expected the unstabilized protocol to lose the message"
        );
    }

    #[test]
    fn repeated_faults_every_epoch_still_converge() {
        let mut e = engine(3, 256, 5);
        let dest = e.ids().unwrap()[1];
        let me = e.ids().unwrap()[2];
        // Fault robot 0 three times, then send from robot 2.
        for _ in 0..3 {
            e.run(100).unwrap();
            *e.protocol_mut(0) = StabilizingSync::new(256);
        }
        e.protocol_mut(2).send_id(dest, b"still here");
        let out = e
            .run_until(4_000, |e| {
                e.protocol(1)
                    .inbox()
                    .contains(&(me, b"still here".to_vec()))
            })
            .unwrap();
        assert!(out.satisfied);
    }

    #[test]
    fn positional_fault_self_heals_by_homing() {
        // The other §5 fault flavour: a robot knocked to a new position
        // (engine-level teleport). The paper's phrase "returning to the
        // initial location" is literal here: every activation of the
        // synchronous protocol targets the robot's recorded home, so the
        // displaced robot walks straight back and messaging continues
        // without even waiting for an epoch boundary.
        let mut e = engine(4, 256, 11);
        e.run(10).unwrap();
        let original = e.positions()[2];
        e.displace_robot(2, stigmergy_geometry::Vec2::new(5.0, 7.0))
            .unwrap();
        assert!(e.positions()[2].distance(original) > 8.0);
        e.run(4).unwrap();
        assert!(
            e.positions()[2].distance(original) < 1e-6,
            "robot must home back after a positional fault"
        );
        let dest = e.ids().unwrap()[2];
        let me = e.ids().unwrap()[1];
        e.protocol_mut(1).send_id(dest, b"new home");
        let out = e
            .run_until(4_000, |e| {
                e.protocol(2).inbox().contains(&(me, b"new home".to_vec()))
            })
            .unwrap();
        assert!(out.satisfied);
    }

    #[test]
    fn without_global_clock_robots_stay_safe() {
        let mut e = Engine::builder()
            .positions(ring(3))
            .protocols((0..3).map(|_| StabilizingSync::new(64)))
            .capabilities(Capabilities::identified_with_direction())
            .schedule(Synchronous)
            .frame_seed(6)
            .build()
            .unwrap();
        let dest = e.ids().unwrap()[1];
        e.protocol_mut(0).send_id(dest, b"x");
        e.run(100).unwrap();
        // No clock ⇒ no epochs ⇒ nobody ever moves (safe no-op).
        for i in 0..3 {
            assert_eq!(e.trace().move_count(i), 0);
        }
        assert_eq!(e.protocol(0).epochs_started(), 0);
    }

    #[test]
    fn many_messages_across_many_epochs() {
        let mut e = engine(3, 64, 7);
        let ids: Vec<VisibleId> = e.ids().unwrap().to_vec();
        for k in 0..6u8 {
            e.protocol_mut(0).send_id(ids[1], &[k]);
        }
        let me = ids[0];
        let out = e
            .run_until(10_000, |e| e.protocol(1).inbox().len() >= 6)
            .unwrap();
        assert!(out.satisfied);
        // In order, all from robot 0.
        let got: Vec<(VisibleId, Vec<u8>)> = e.protocol(1).inbox().to_vec();
        for (k, (sender, payload)) in got.iter().enumerate().take(6) {
            assert_eq!(*sender, me);
            assert_eq!(payload, &vec![k as u8]);
        }
        // The run definitely crossed epoch boundaries.
        assert!(e.protocol(0).epochs_started() >= 2);
    }

    #[test]
    #[should_panic(expected = "even and ≥ 4")]
    fn odd_period_rejected() {
        let _ = StabilizingSync::new(7);
    }

    #[test]
    #[should_panic(expected = "cannot complete within an epoch")]
    fn oversized_message_rejected() {
        let mut s = StabilizingSync::new(16);
        s.send_id(VisibleId::new(1), &[0u8; 100]);
    }
}
