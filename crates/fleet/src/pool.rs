//! A hand-rolled worker pool.
//!
//! The offline-vendored constraint rules out rayon, so the pool is built
//! from the standard library alone: a [`JobQueue`] (`Mutex<VecDeque>` +
//! `Condvar`) feeds N scoped worker threads, and results flow back
//! through a bounded `mpsc::sync_channel` tagged with their job index.
//! [`run_indexed`] reassembles them in submission order, so the output
//! `Vec` is identical whatever interleaving the workers ran in — the
//! mechanical half of the fleet's determinism guarantee (the other half
//! is that each job is a pure function of its input).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Condvar, Mutex};
use std::thread;

/// A one-way cooperative cancellation flag.
///
/// The gateway arms one token per job; workers check it between sessions,
/// so cancellation never interrupts a session mid-flight — completed work
/// stays deterministic, pending work is simply not started. Tokens are
/// cheap, `Sync`, and usually shared via `Arc`.
#[derive(Debug, Default)]
pub struct CancelToken {
    flag: AtomicBool,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// A multi-producer multi-consumer FIFO of pending jobs.
///
/// Workers block on [`JobQueue::pop`] until a job arrives or the queue is
/// closed; closing wakes every sleeper so the pool drains and joins
/// cleanly.
#[derive(Debug)]
pub struct JobQueue<T> {
    state: Mutex<QueueState<T>>,
    ready: Condvar,
}

#[derive(Debug)]
struct QueueState<T> {
    jobs: VecDeque<T>,
    closed: bool,
}

impl<T> Default for JobQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> JobQueue<T> {
    /// Creates an empty, open queue.
    #[must_use]
    pub fn new() -> Self {
        Self {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Enqueues a job and wakes one waiting worker.
    ///
    /// # Panics
    ///
    /// Panics if the queue is already closed — pushing after close is a
    /// pool logic error, not a runtime condition.
    pub fn push(&self, job: T) {
        let mut state = self.state.lock().expect("queue poisoned");
        assert!(!state.closed, "push after close");
        state.jobs.push_back(job);
        drop(state);
        self.ready.notify_one();
    }

    /// Closes the queue: no further pushes, and every blocked or future
    /// [`JobQueue::pop`] returns `None` once the backlog drains.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.ready.notify_all();
    }

    /// Takes the next job, blocking while the queue is open but empty.
    /// Returns `None` when the queue is closed and drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("queue poisoned");
        }
    }

    /// Number of jobs currently waiting.
    #[must_use]
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").jobs.len()
    }

    /// Whether no jobs are waiting.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Runs `f` over `items` on `workers` threads, returning the results in
/// input order.
///
/// Work-stealing is by atomicity of the queue: an idle worker takes the
/// next pending item whatever its index, so an expensive item never
/// serializes the batch behind it. Results return through a bounded
/// channel (capacity `2 × workers`, enough that no worker blocks on a
/// full channel while the collector is slotting results) and land in
/// their submission slot, so the caller observes pure data-parallel
/// semantics: `run_indexed(items, w, f)` equals
/// `items.map(f)` for every `w ≥ 1`.
///
/// # Panics
///
/// Propagates a panic from any worker (after all threads are joined), and
/// panics if `workers == 0`.
pub fn run_indexed<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    run_indexed_observed(items, workers, f, |_, _| {}, &CancelToken::new())
        .expect("un-cancelled run completes every job")
}

/// How far an interrupted run got before it stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interrupted {
    /// Jobs that finished before the cancellation took effect.
    pub completed: usize,
    /// Jobs submitted in total.
    pub total: usize,
}

/// [`run_indexed`] with completion observation and cooperative
/// cancellation — the primitive under the gateway's streaming progress
/// and job cancellation.
///
/// `on_done(completed, total)` fires on the collector (calling) thread
/// after each job lands, with a monotonically increasing `completed`;
/// an un-cancelled run fires it exactly `items.len()` times, ending at
/// `(total, total)`. Workers check `cancel` between jobs: a job already
/// running completes normally (its result is kept and observed), jobs
/// not yet started are abandoned. The run returns `Ok` only if *every*
/// job completed — a cancellation that lands after the last job is not
/// an interruption.
///
/// # Errors
///
/// Returns [`Interrupted`] when cancellation stopped any job from
/// running.
///
/// # Panics
///
/// Propagates a panic from any worker (after all threads are joined), and
/// panics if `workers == 0`.
pub fn run_indexed_observed<T, R, F, P>(
    items: Vec<T>,
    workers: usize,
    f: F,
    mut on_done: P,
    cancel: &CancelToken,
) -> Result<Vec<R>, Interrupted>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
    P: FnMut(usize, usize),
{
    assert!(workers > 0, "need at least one worker");
    let n = items.len();
    let queue = JobQueue::new();
    for job in items.into_iter().enumerate() {
        queue.push(job);
    }
    queue.close();

    let (tx, rx) = mpsc::sync_channel::<(usize, R)>(workers * 2);
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let mut completed = 0usize;
    thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let queue = &queue;
            let f = &f;
            scope.spawn(move || {
                while !cancel.is_cancelled() {
                    let Some((index, job)) = queue.pop() else {
                        return;
                    };
                    // A send can only fail if the collector is gone, which
                    // means the scope is already unwinding; stop quietly.
                    if tx.send((index, f(job))).is_err() {
                        return;
                    }
                }
            });
        }
        drop(tx); // collector's rx ends when the last worker clone drops
        for (index, result) in rx {
            slots[index] = Some(result);
            completed += 1;
            on_done(completed, n);
        }
    });
    if completed == n {
        Ok(slots
            .into_iter()
            .map(|r| r.expect("worker delivered every job"))
            .collect())
    } else {
        Err(Interrupted {
            completed,
            total: n,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn queue_is_fifo() {
        let q = JobQueue::new();
        q.push(1);
        q.push(2);
        q.push(3);
        assert_eq!(q.len(), 3);
        q.close();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn close_wakes_blocked_workers() {
        let q: JobQueue<usize> = JobQueue::new();
        thread::scope(|scope| {
            let handles: Vec<_> = (0..4).map(|_| scope.spawn(|| q.pop())).collect();
            // Give the workers a moment to block, then release them.
            thread::yield_now();
            q.close();
            for h in handles {
                assert_eq!(h.join().unwrap(), None);
            }
        });
    }

    #[test]
    #[should_panic(expected = "push after close")]
    fn push_after_close_is_a_bug() {
        let q = JobQueue::new();
        q.close();
        q.push(1);
    }

    #[test]
    fn run_indexed_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        for workers in [1, 2, 8] {
            let out = run_indexed(items.clone(), workers, |x| x * x);
            let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
            assert_eq!(out, expect, "workers={workers}");
        }
    }

    #[test]
    fn run_indexed_uses_multiple_threads() {
        let concurrent = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let out = run_indexed((0..64).collect::<Vec<_>>(), 4, |x: usize| {
            let now = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            thread::yield_now();
            concurrent.fetch_sub(1, Ordering::SeqCst);
            x + 1
        });
        assert_eq!(out.len(), 64);
        // Not asserted > 1: on a single-core host the scheduler may never
        // overlap the workers. The pool ran and delivered either way.
        assert!(peak.load(Ordering::SeqCst) >= 1);
    }

    #[test]
    fn run_indexed_handles_empty_input() {
        let out: Vec<u32> = run_indexed(Vec::<u32>::new(), 3, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn run_indexed_more_workers_than_jobs() {
        let out = run_indexed(vec![7], 8, |x: i32| -x);
        assert_eq!(out, vec![-7]);
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            run_indexed(vec![0, 1, 2], 2, |x: i32| {
                assert!(x != 1, "boom");
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = run_indexed(vec![1], 0, |x: i32| x);
    }

    #[test]
    fn observer_sees_every_completion_in_order() {
        let mut seen = Vec::new();
        let out = run_indexed_observed(
            (0..10).collect::<Vec<_>>(),
            3,
            |x: u32| x * 2,
            |done, total| seen.push((done, total)),
            &CancelToken::new(),
        )
        .unwrap();
        assert_eq!(out, (0..10).map(|x| x * 2).collect::<Vec<_>>());
        assert_eq!(seen, (1..=10).map(|d| (d, 10)).collect::<Vec<_>>());
    }

    #[test]
    fn pre_cancelled_run_is_interrupted_immediately() {
        let token = CancelToken::new();
        token.cancel();
        assert!(token.is_cancelled());
        let err = run_indexed_observed(vec![1, 2, 3], 2, |x: i32| x, |_, _| {}, &token)
            .expect_err("cancelled before start");
        assert_eq!(err.total, 3);
        assert_eq!(err.completed, 0);
    }

    #[test]
    fn mid_run_cancellation_keeps_completed_prefix_work() {
        // One worker, cancel fired by the job itself after 2 completions:
        // the remaining jobs must be abandoned, the finished ones kept.
        let token = CancelToken::new();
        let err = run_indexed_observed(
            (0..100).collect::<Vec<_>>(),
            1,
            |x: u32| {
                if x == 1 {
                    token.cancel();
                }
                x
            },
            |_, _| {},
            &token,
        )
        .expect_err("cancelled mid-run");
        assert_eq!(err.total, 100);
        assert!(err.completed >= 2, "running jobs complete");
        assert!(err.completed < 100, "pending jobs are abandoned");
    }

    #[test]
    fn cancellation_after_last_job_is_not_an_interruption() {
        let token = CancelToken::new();
        let out = run_indexed_observed(
            vec![1, 2],
            1,
            |x: i32| x,
            |done, total| {
                if done == total {
                    token.cancel();
                }
            },
            &token,
        );
        assert_eq!(out.unwrap(), vec![1, 2]);
    }
}
