//! A hand-rolled work-stealing worker pool.
//!
//! The offline-vendored constraint rules out rayon, so the pool is built
//! from the standard library alone — but unlike the original central
//! `Mutex<VecDeque>` + `Condvar` queue (which serialized every job
//! hand-off on one lock and topped out *below* 1× on the 864-session
//! sweep), scheduling here is **lock-free**: each worker owns a
//! `Shard` — a contiguous range of job indices packed into one
//! `AtomicU64` — pops from its front, and when dry steals the back half
//! of a victim's remaining range. Results flow back through a bounded
//! `mpsc::sync_channel` tagged with their job index, and
//! [`run_indexed`] reassembles them in submission order, so the output
//! `Vec` is identical whatever interleaving or steal schedule the
//! workers ran under — the mechanical half of the fleet's determinism
//! guarantee (the other half is that each job is a pure function of its
//! input).
//!
//! # The steal protocol
//!
//! A shard packs `(head, tail)` as `head << 32 | tail`, describing the
//! unclaimed range `[head, tail)`:
//!
//! - **Owner pop**: CAS `(head, tail) → (head + 1, tail)`, claiming
//!   index `head`. Front-first keeps each worker walking its range in
//!   submission order (cache-friendly: neighbouring sessions share
//!   protocol setup).
//! - **Steal**: CAS `(head, tail) → (head, mid)` where
//!   `mid = head + floor((tail − head) / 2)`, claiming the never-empty
//!   back half-range `[mid, tail)`. The thief runs `mid` immediately and
//!   installs the remainder into its own (empty) shard, where it is
//!   itself stealable — so one overloaded shard redistributes in
//!   `O(log n)` steals instead of `O(n)` hand-offs.
//!
//! Every successful CAS permanently removes indices from circulation
//! and every installed range is a subrange of one just removed, so the
//! same packed value can never recur on a shard — the CAS loop is
//! ABA-free — and each index is claimed by exactly one worker: no lost
//! jobs, no duplicates, whatever the interleaving. The stress suite in
//! `tests/tests/fleet_stress.rs` hammers exactly these claims with
//! pathological work distributions.
//!
//! A worker with an empty shard scans victims round-robin starting at
//! its right neighbour; only after two consecutive full scans find
//! every shard empty does it exit. (Between a thief claiming a range
//! and installing it the range is invisible to scanners, so a scanner
//! can exit while work is still in flight — that work is owned by the
//! thief and still runs; the double scan merely narrows the window in
//! which a worker retires early and parallelism is left on the table.)
//!
//! The claim path takes no locks anywhere. Result *collection* uses
//! `mpsc` (a hand-off, not a scheduler), and `stiglint`'s `lock-free`
//! pass pins the distinction: this file must never reintroduce a
//! `Mutex`, `RwLock`, or `Condvar`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::thread;

/// A one-way cooperative cancellation flag.
///
/// The gateway arms one token per job; workers check it between sessions,
/// so cancellation never interrupts a session mid-flight — completed work
/// stays deterministic, pending work is simply not started. Tokens are
/// cheap, `Sync`, and usually shared via `Arc`.
#[derive(Debug, Default)]
pub struct CancelToken {
    flag: AtomicBool,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// One worker's unclaimed range, `(head, tail)` packed into a single
/// `AtomicU64` so pops and steals are single CAS operations. Padded to
/// a cache line so two workers' shards never share one (a steal misses
/// the victim's line once instead of ping-ponging it on every pop).
#[derive(Debug)]
#[repr(align(64))]
struct Shard {
    range: AtomicU64,
}

#[inline]
fn pack(head: u32, tail: u32) -> u64 {
    (u64::from(head) << 32) | u64::from(tail)
}

#[inline]
fn unpack(packed: u64) -> (u32, u32) {
    ((packed >> 32) as u32, packed as u32)
}

/// The shared scheduler state: one `Shard` per worker over a fixed
/// set of `n` job indices, split contiguously at construction so
/// results keep submission-order locality.
#[derive(Debug)]
pub struct StealScheduler {
    shards: Vec<Shard>,
}

impl StealScheduler {
    /// Splits `[0, n)` into `workers` contiguous shards (front shards
    /// get the remainder, so sizes differ by at most one).
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0` or `n` does not fit the 32-bit packed
    /// range representation.
    #[must_use]
    pub fn new(n: usize, workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        assert!(
            u32::try_from(n).is_ok(),
            "job count must fit the packed 32-bit range"
        );
        let n = n as u32;
        let w = workers as u32;
        let base = n / w;
        let extra = n % w;
        let mut start = 0u32;
        let shards = (0..w)
            .map(|i| {
                let len = base + u32::from(i < extra);
                let shard = Shard {
                    range: AtomicU64::new(pack(start, start + len)),
                };
                start += len;
                shard
            })
            .collect();
        Self { shards }
    }

    /// Number of shards (= workers).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.shards.len()
    }

    /// Claims the front index of `me`'s own shard, if any remains.
    #[must_use]
    pub fn pop_local(&self, me: usize) -> Option<usize> {
        let shard = &self.shards[me].range;
        let mut cur = shard.load(Ordering::Acquire);
        loop {
            let (head, tail) = unpack(cur);
            if head >= tail {
                return None;
            }
            match shard.compare_exchange_weak(
                cur,
                pack(head + 1, tail),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(head as usize),
                Err(now) => cur = now,
            }
        }
    }

    /// Claims the back half-range of `victim`'s shard. Returns the
    /// stolen `[mid, tail)` bounds, or `None` if the shard was empty.
    fn try_steal(&self, victim: usize) -> Option<(u32, u32)> {
        let shard = &self.shards[victim].range;
        let mut cur = shard.load(Ordering::Acquire);
        loop {
            let (head, tail) = unpack(cur);
            if head >= tail {
                return None;
            }
            // Victim keeps the floor half so the stolen back range
            // `[mid, tail)` is never empty: a 1-job shard is stolen
            // whole rather than left to a busy victim.
            let mid = head + (tail - head) / 2;
            match shard.compare_exchange_weak(
                cur,
                pack(head, mid),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((mid, tail)),
                Err(now) => cur = now,
            }
        }
    }

    /// Finds work for a dry worker: scans victims round-robin starting
    /// at the right neighbour, installs a stolen range into `me`'s own
    /// shard (which **must be empty** — drain it with [`Self::pop_local`]
    /// first, as the pool's `pop_local(me).or_else(|| steal_for(me))`
    /// loop does), and returns the first stolen index to run. Two
    /// consecutive empty scans mean the pool is drained (or all residual
    /// work is claimed and in flight): returns `None`.
    ///
    /// The empty-own-shard precondition is what makes the remainder
    /// install a plain store: nobody can CAS an empty shard, and only
    /// `me` installs into it. A steal-first caller would overwrite — and
    /// silently lose — whatever its shard still held, so debug builds
    /// assert the precondition.
    #[must_use]
    pub fn steal_for(&self, me: usize) -> Option<usize> {
        debug_assert!(
            {
                let (head, tail) = unpack(self.shards[me].range.load(Ordering::Acquire));
                head >= tail
            },
            "steal_for contract: worker {me}'s own shard must be drained before stealing — \
             installing a stolen range would overwrite and lose it"
        );
        let w = self.shards.len();
        for round in 0..2 {
            for offset in 1..w {
                let victim = (me + offset) % w;
                if let Some((lo, hi)) = self.try_steal(victim) {
                    if hi > lo + 1 {
                        // Own shard is empty and an empty shard cannot
                        // be CASed by thieves, so a plain store is safe.
                        self.shards[me]
                            .range
                            .store(pack(lo + 1, hi), Ordering::Release);
                    }
                    return Some(lo as usize);
                }
            }
            if round == 0 {
                thread::yield_now();
            }
        }
        None
    }

    /// Total unclaimed indices across all shards (racy snapshot; exact
    /// once workers have quiesced).
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let (head, tail) = unpack(s.range.load(Ordering::Acquire));
                (tail - head) as usize
            })
            .sum()
    }
}

/// Runs `f` over `items` on `workers` threads, returning the results in
/// input order.
///
/// Work distribution is sharded-with-stealing: each worker starts on a
/// contiguous slice of the input and steals half-ranges from busy
/// victims when dry, so an expensive item never serializes the batch
/// behind it and a pathological distribution (all the cost in one
/// shard) rebalances in `O(log n)` steals. Results return through a
/// bounded channel (capacity `2 × workers`, enough that no worker
/// blocks on a full channel while the collector is slotting results)
/// and land in their submission slot, so the caller observes pure
/// data-parallel semantics: `run_indexed(items, w, f)` equals
/// `items.iter().map(f)` for every `w ≥ 1`.
///
/// # Panics
///
/// Propagates a panic from any worker (after all threads are joined), and
/// panics if `workers == 0`.
pub fn run_indexed<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    run_indexed_observed(items, workers, f, |_, _| {}, &CancelToken::new())
        .expect("un-cancelled run completes every job")
}

/// How far an interrupted run got before it stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interrupted {
    /// Jobs that finished before the cancellation took effect.
    pub completed: usize,
    /// Jobs submitted in total.
    pub total: usize,
}

/// [`run_indexed`] with completion observation and cooperative
/// cancellation — the primitive under the gateway's streaming progress
/// and job cancellation.
///
/// `on_done(completed, total)` fires on the collector (calling) thread
/// after each job lands, with a monotonically increasing `completed`;
/// an un-cancelled run fires it exactly `items.len()` times, ending at
/// `(total, total)`. Workers check `cancel` between jobs: a job already
/// running completes normally (its result is kept and observed), jobs
/// not yet started are abandoned. The run returns `Ok` only if *every*
/// job completed — a cancellation that lands after the last job is not
/// an interruption.
///
/// # Errors
///
/// Returns [`Interrupted`] when cancellation stopped any job from
/// running.
///
/// # Panics
///
/// Propagates a panic from any worker (after all threads are joined), and
/// panics if `workers == 0`.
pub fn run_indexed_observed<T, R, F, P>(
    items: Vec<T>,
    workers: usize,
    f: F,
    mut on_done: P,
    cancel: &CancelToken,
) -> Result<Vec<R>, Interrupted>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
    P: FnMut(usize, usize),
{
    assert!(workers > 0, "need at least one worker");
    let n = items.len();
    let scheduler = StealScheduler::new(n, workers);

    let (tx, rx) = mpsc::sync_channel::<(usize, R)>(workers * 2);
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let mut completed = 0usize;
    thread::scope(|scope| {
        for me in 0..workers {
            let tx = tx.clone();
            let scheduler = &scheduler;
            let items = &items;
            let f = &f;
            scope.spawn(move || {
                while !cancel.is_cancelled() {
                    let Some(index) = scheduler.pop_local(me).or_else(|| scheduler.steal_for(me))
                    else {
                        return;
                    };
                    // A send can only fail if the collector is gone, which
                    // means the scope is already unwinding; stop quietly.
                    if tx.send((index, f(&items[index]))).is_err() {
                        return;
                    }
                }
            });
        }
        drop(tx); // collector's rx ends when the last worker clone drops
        for (index, result) in rx {
            slots[index] = Some(result);
            completed += 1;
            on_done(completed, n);
        }
    });
    if completed == n {
        Ok(slots
            .into_iter()
            .map(|r| r.expect("worker delivered every job"))
            .collect())
    } else {
        Err(Interrupted {
            completed,
            total: n,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn packing_round_trips() {
        for (h, t) in [(0, 0), (1, 7), (u32::MAX - 1, u32::MAX)] {
            assert_eq!(unpack(pack(h, t)), (h, t));
        }
    }

    #[test]
    fn shards_split_contiguously_and_cover_everything() {
        let s = StealScheduler::new(10, 3);
        assert_eq!(s.workers(), 3);
        assert_eq!(s.remaining(), 10);
        // Worker 0 gets 4 (remainder goes to the front), 1 and 2 get 3.
        let mine: Vec<usize> = std::iter::from_fn(|| s.pop_local(0)).collect();
        assert_eq!(mine, vec![0, 1, 2, 3]);
        let theirs: Vec<usize> = std::iter::from_fn(|| s.pop_local(1)).collect();
        assert_eq!(theirs, vec![4, 5, 6]);
        assert_eq!(s.remaining(), 3);
    }

    #[test]
    fn steal_takes_the_back_half_and_installs_the_rest() {
        let s = StealScheduler::new(8, 2);
        // Shard 1 owns [4, 8); drain shard 0 so worker 0 must steal.
        while s.pop_local(0).is_some() {}
        let got = s.steal_for(0).expect("victim has work");
        // Victim keeps ceil(4/2) = 2 → thief claims [6, 8), runs 6,
        // installs [7, 8) locally.
        assert_eq!(got, 6);
        assert_eq!(s.pop_local(0), Some(7));
        assert_eq!(s.pop_local(1), Some(4));
        assert_eq!(s.pop_local(1), Some(5));
        assert_eq!(s.remaining(), 0);
        assert!(s.steal_for(0).is_none(), "drained pool yields nothing");
    }

    #[test]
    fn every_index_is_claimed_exactly_once_under_contention() {
        // 4 threads all popping and stealing concurrently: the union of
        // claims must be exactly [0, n) with no duplicates.
        let n = 10_000;
        let s = StealScheduler::new(n, 4);
        let mut all: Vec<usize> = thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|me| {
                    let s = &s;
                    scope.spawn(move || {
                        let mut claimed = Vec::new();
                        while let Some(i) = s.pop_local(me).or_else(|| s.steal_for(me)) {
                            claimed.push(i);
                        }
                        claimed
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("claimer"))
                .collect()
        });
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>());
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn run_indexed_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        for workers in [1, 2, 8] {
            let out = run_indexed(items.clone(), workers, |x| x * x);
            let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
            assert_eq!(out, expect, "workers={workers}");
        }
    }

    #[test]
    fn run_indexed_uses_multiple_threads() {
        let concurrent = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let out = run_indexed((0..64).collect::<Vec<_>>(), 4, |x: &usize| {
            let now = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            thread::yield_now();
            concurrent.fetch_sub(1, Ordering::SeqCst);
            x + 1
        });
        assert_eq!(out.len(), 64);
        // Not asserted > 1: on a single-core host the scheduler may never
        // overlap the workers. The pool ran and delivered either way.
        assert!(peak.load(Ordering::SeqCst) >= 1);
    }

    #[test]
    fn run_indexed_handles_empty_input() {
        let out: Vec<u32> = run_indexed(Vec::<u32>::new(), 3, |x| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn run_indexed_more_workers_than_jobs() {
        let out = run_indexed(vec![7], 8, |x: &i32| -x);
        assert_eq!(out, vec![-7]);
    }

    #[test]
    fn skewed_distribution_is_rebalanced_by_stealing() {
        // All the cost lives in shard 0's contiguous range; the other
        // workers must steal it or the run serializes. Correctness (the
        // assertable half) is: complete, ordered, exact results.
        let n = 256usize;
        let items: Vec<u64> = (0..n as u64).collect();
        let out = run_indexed(items, 8, |&x| {
            let spins = if x < 32 { 20_000 } else { 1 };
            let mut acc = x;
            for _ in 0..spins {
                acc = acc.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(7);
            }
            acc ^ x
        });
        let expect: Vec<u64> = (0..n as u64)
            .map(|x| {
                let spins = if x < 32 { 20_000 } else { 1 };
                let mut acc = x;
                for _ in 0..spins {
                    acc = acc.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(7);
                }
                acc ^ x
            })
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            run_indexed(vec![0, 1, 2], 2, |x: &i32| {
                assert!(*x != 1, "boom");
                *x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = run_indexed(vec![1], 0, |x: &i32| *x);
    }

    #[test]
    fn observer_sees_every_completion_in_order() {
        let mut seen = Vec::new();
        let out = run_indexed_observed(
            (0..10).collect::<Vec<_>>(),
            3,
            |x: &u32| x * 2,
            |done, total| seen.push((done, total)),
            &CancelToken::new(),
        )
        .unwrap();
        assert_eq!(out, (0..10).map(|x| x * 2).collect::<Vec<_>>());
        assert_eq!(seen, (1..=10).map(|d| (d, 10)).collect::<Vec<_>>());
    }

    #[test]
    fn pre_cancelled_run_is_interrupted_immediately() {
        let token = CancelToken::new();
        token.cancel();
        assert!(token.is_cancelled());
        let err = run_indexed_observed(vec![1, 2, 3], 2, |x: &i32| *x, |_, _| {}, &token)
            .expect_err("cancelled before start");
        assert_eq!(err.total, 3);
        assert_eq!(err.completed, 0);
    }

    #[test]
    fn mid_run_cancellation_keeps_completed_prefix_work() {
        // One worker, cancel fired by the job itself after 2 completions:
        // the remaining jobs must be abandoned, the finished ones kept.
        let token = CancelToken::new();
        let err = run_indexed_observed(
            (0..100).collect::<Vec<_>>(),
            1,
            |x: &u32| {
                if *x == 1 {
                    token.cancel();
                }
                *x
            },
            |_, _| {},
            &token,
        )
        .expect_err("cancelled mid-run");
        assert_eq!(err.total, 100);
        assert!(err.completed >= 2, "running jobs complete");
        assert!(err.completed < 100, "pending jobs are abandoned");
    }

    #[test]
    fn cancellation_after_last_job_is_not_an_interruption() {
        let token = CancelToken::new();
        let out = run_indexed_observed(
            vec![1, 2],
            1,
            |x: &i32| *x,
            |done, total| {
                if done == total {
                    token.cancel();
                }
            },
            &token,
        );
        assert_eq!(out.unwrap(), vec![1, 2]);
    }
}
