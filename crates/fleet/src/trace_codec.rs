//! A compact, canonical byte encoding for traces.
//!
//! The vendored serde shim never serializes at runtime, so the fleet
//! carries its own codec. The encoding is canonical: positions are
//! written as the raw IEEE-754 bit patterns (`f64::to_bits`, little
//! endian), so two traces encode to the same bytes **iff** they are
//! bit-for-bit the same run — the representation the determinism
//! regression and golden-trace tests compare. The format is
//! versioned; goldens regenerate (`UPDATE_GOLDEN=1`) on a version bump.

use stigmergy_geometry::Point;
use stigmergy_robots::{FaultEvent, Trace};

/// Magic prefix of every encoded trace.
pub const MAGIC: &[u8; 4] = b"STRC";
/// Current format version.
pub const VERSION: u8 = 1;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_point(out: &mut Vec<u8>, p: Point) {
    put_u64(out, p.x.to_bits());
    put_u64(out, p.y.to_bits());
}

/// Encodes a trace to its canonical byte form.
///
/// Layout (all integers little endian):
/// `"STRC" | version u8 | n u32 | n initial points | step count u32 |`
/// per step `{ time u64 | activation bitmap (n bits, LSB-first bytes) |`
/// `position count u32 | points } | fault count u32 | tagged faults`.
#[must_use]
pub fn encode(trace: &Trace) -> Vec<u8> {
    let initial = trace.initial();
    let n = initial.len();
    let mut out = Vec::with_capacity(64 + trace.steps().len() * (16 + n * 16));
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    put_u32(&mut out, n as u32);
    for &p in initial {
        put_point(&mut out, p);
    }
    put_u32(&mut out, trace.steps().len() as u32);
    for step in trace.steps() {
        put_u64(&mut out, step.time);
        let mut bitmap = vec![0u8; n.div_ceil(8)];
        for i in step.active.iter() {
            bitmap[i / 8] |= 1 << (i % 8);
        }
        out.extend_from_slice(&bitmap);
        put_u32(&mut out, step.positions.len() as u32);
        for &p in &step.positions {
            put_point(&mut out, p);
        }
    }
    put_u32(&mut out, trace.faults().len() as u32);
    for fault in trace.faults() {
        match *fault {
            FaultEvent::CrashStop { time, robot } => {
                out.push(1);
                put_u64(&mut out, time);
                put_u32(&mut out, robot as u32);
            }
            FaultEvent::NonRigidMotion {
                time,
                robot,
                fraction,
            } => {
                out.push(2);
                put_u64(&mut out, time);
                put_u32(&mut out, robot as u32);
                put_u64(&mut out, fraction.to_bits());
            }
            FaultEvent::ObservationDropout {
                time,
                observer,
                observed,
            } => {
                out.push(3);
                put_u64(&mut out, time);
                put_u32(&mut out, observer as u32);
                put_u32(&mut out, observed as u32);
            }
        }
    }
    out
}

/// Encodes a trace as lowercase hex, wrapped at 64 characters per line —
/// the on-disk form of golden traces (diffable, no binary files in git).
#[must_use]
pub fn encode_hex(trace: &Trace) -> String {
    to_hex(&encode(trace))
}

/// Hex-formats already-encoded trace bytes in the golden-file layout
/// (64 chars per line, trailing newline).
#[must_use]
pub fn to_hex(bytes: &[u8]) -> String {
    let mut hex = String::with_capacity(bytes.len() * 2 + bytes.len() / 32 + 1);
    for (i, b) in bytes.iter().enumerate() {
        if i > 0 && i % 32 == 0 {
            hex.push('\n');
        }
        hex.push_str(&format!("{b:02x}"));
    }
    hex.push('\n');
    hex
}

/// FNV-1a 64-bit hash — a stable fingerprint for traces too large to keep
/// in memory per session (full-budget conformance runs).
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use stigmergy_geometry::Point;
    use stigmergy_robots::{Engine, MovementProtocol, View};
    use stigmergy_scheduler::{FaultPlan, RoundRobin};

    struct Walker;
    impl MovementProtocol for Walker {
        fn on_activate(&mut self, view: &View) -> Point {
            view.own_position() + stigmergy_geometry::Vec2::new(0.25, 0.125)
        }
    }

    fn sample_trace(seed: u64) -> Trace {
        let mut e = Engine::builder()
            .positions([Point::new(0.0, 0.0), Point::new(7.0, 0.0)])
            .protocols([Walker, Walker])
            .unit_frames()
            .schedule(RoundRobin)
            .sigma(1.0)
            .faults(FaultPlan::new(seed).non_rigid(0.5, 0.5))
            .build()
            .unwrap();
        e.run(12).unwrap();
        e.trace().clone()
    }

    #[test]
    fn header_and_determinism() {
        let bytes = encode(&sample_trace(5));
        assert_eq!(&bytes[..4], MAGIC);
        assert_eq!(bytes[4], VERSION);
        assert_eq!(bytes, encode(&sample_trace(5)), "same run, same bytes");
    }

    #[test]
    fn different_runs_encode_differently() {
        assert_ne!(encode(&sample_trace(5)), encode(&sample_trace(6)));
    }

    #[test]
    fn encoding_is_injective_on_positions() {
        // Two traces identical except one position bit differ in bytes:
        // codec must not round positions through text.
        let a = Trace::new(vec![Point::new(0.1, 0.0)]);
        let b = Trace::new(vec![Point::new(0.1 + f64::EPSILON, 0.0)]);
        assert_ne!(encode(&a), encode(&b));
    }

    #[test]
    fn hex_roundtrips_bytes() {
        let trace = sample_trace(9);
        let hex = encode_hex(&trace);
        assert!(hex.ends_with('\n'));
        let joined: String = hex.split_whitespace().collect();
        let decoded: Vec<u8> = (0..joined.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&joined[i..i + 2], 16).unwrap())
            .collect();
        assert_eq!(decoded, encode(&trace));
        assert!(hex.lines().all(|l| l.len() <= 64));
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171F73967E8);
    }

    #[test]
    fn activation_bitmap_survives_encoding() {
        // Round-robin on 2 robots: step t activates robot t % 2. The
        // bitmap byte sits right after the 8-byte time in each step
        // record; walk the steps and check it.
        let trace = sample_trace(5);
        let bytes = encode(&trace);
        let n = 2usize;
        let mut cursor = 4 + 1 + 4 + n * 16; // magic, version, n, initial
        cursor += 4; // step count
        for step in trace.steps() {
            cursor += 8; // time
            let bitmap = bytes[cursor];
            let expect: u8 = step.active.iter().map(|i| 1 << i).sum();
            assert_eq!(bitmap, expect, "t={}", step.time);
            cursor += 1; // bitmap (n=2 fits one byte)
            let count = u32::from_le_bytes(bytes[cursor..cursor + 4].try_into().unwrap()) as usize;
            cursor += 4 + count * 16;
        }
    }
}
