//! A compact, canonical byte encoding for traces.
//!
//! The vendored serde shim never serializes at runtime, so the fleet
//! carries its own codec. The encoding is canonical: positions are
//! written as the raw IEEE-754 bit patterns (`f64::to_bits`, little
//! endian), so two traces encode to the same bytes **iff** they are
//! bit-for-bit the same run — the representation the determinism
//! regression and golden-trace tests compare. The format is
//! versioned; goldens regenerate (`UPDATE_GOLDEN=1`) on a version bump.

use stigmergy_geometry::Point;
use stigmergy_robots::{FaultEvent, Trace, TraceEvent};
use stigmergy_scheduler::ActivationSet;

/// Magic prefix of every encoded trace.
pub const MAGIC: &[u8; 4] = b"STRC";
/// Current format version.
pub const VERSION: u8 = 1;

fn put_fault(out: &mut Vec<u8>, fault: &FaultEvent) {
    match *fault {
        FaultEvent::CrashStop { time, robot } => {
            out.push(1);
            put_u64(out, time);
            put_u32(out, robot as u32);
        }
        FaultEvent::NonRigidMotion {
            time,
            robot,
            fraction,
        } => {
            out.push(2);
            put_u64(out, time);
            put_u32(out, robot as u32);
            put_u64(out, fraction.to_bits());
        }
        FaultEvent::ObservationDropout {
            time,
            observer,
            observed,
        } => {
            out.push(3);
            put_u64(out, time);
            put_u32(out, observer as u32);
            put_u32(out, observed as u32);
        }
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_point(out: &mut Vec<u8>, p: Point) {
    put_u64(out, p.x.to_bits());
    put_u64(out, p.y.to_bits());
}

/// Encodes a trace to its canonical byte form.
///
/// Layout (all integers little endian):
/// `"STRC" | version u8 | n u32 | n initial points | step count u32 |`
/// per step `{ time u64 | activation bitmap (n bits, LSB-first bytes) |`
/// `position count u32 | points } | fault count u32 | tagged faults`.
#[must_use]
pub fn encode(trace: &Trace) -> Vec<u8> {
    let initial = trace.initial();
    let n = initial.len();
    let mut out = Vec::with_capacity(64 + trace.steps().len() * (16 + n * 16));
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    put_u32(&mut out, n as u32);
    for &p in initial {
        put_point(&mut out, p);
    }
    put_u32(&mut out, trace.steps().len() as u32);
    for step in trace.steps() {
        put_u64(&mut out, step.time);
        let mut bitmap = vec![0u8; n.div_ceil(8)];
        for i in step.active.iter() {
            bitmap[i / 8] |= 1 << (i % 8);
        }
        out.extend_from_slice(&bitmap);
        put_u32(&mut out, step.positions.len() as u32);
        for &p in &step.positions {
            put_point(&mut out, p);
        }
    }
    put_u32(&mut out, trace.faults().len() as u32);
    for fault in trace.faults() {
        put_fault(&mut out, fault);
    }
    out
}

/// An incremental encoder producing exactly the bytes of [`encode`],
/// without ever materializing a [`Trace`].
///
/// Feed it the engine's [`TraceEvent`] stream (via
/// [`stigmergy_robots::Engine::observe_trace`]) and it appends each step
/// to an arena buffer as the step happens — no per-step `Vec<Point>`
/// clones, no retained step records. Because the canonical layout puts
/// the step count *before* the step records (and the fault count before
/// the faults), the final byte string is assembled on demand by
/// [`TraceEncoder::to_bytes`]; [`TraceEncoder::encoded_len`] and
/// [`TraceEncoder::fingerprint`] answer without assembling.
///
/// Byte-identity with [`encode`] is pinned by tests below and by every
/// golden-trace file: a streaming run and a recorded run of the same
/// session must hash identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEncoder {
    /// `MAGIC | version | n | initial points` — fixed at construction.
    header: Vec<u8>,
    /// Concatenated step records (time, bitmap, count, points).
    steps: Vec<u8>,
    step_count: u32,
    /// Concatenated tagged fault records.
    faults: Vec<u8>,
    fault_count: u32,
    n: usize,
}

impl TraceEncoder {
    /// Starts an encoder from the initial configuration.
    #[must_use]
    pub fn new(initial: &[Point]) -> Self {
        let n = initial.len();
        let mut header = Vec::with_capacity(4 + 1 + 4 + n * 16);
        header.extend_from_slice(MAGIC);
        header.push(VERSION);
        put_u32(&mut header, n as u32);
        for &p in initial {
            put_point(&mut header, p);
        }
        Self {
            header,
            steps: Vec::new(),
            step_count: 0,
            faults: Vec::new(),
            fault_count: 0,
            n,
        }
    }

    /// Appends one instant's record.
    pub fn record_step(&mut self, time: u64, active: &ActivationSet, positions: &[Point]) {
        put_u64(&mut self.steps, time);
        let start = self.steps.len();
        self.steps.resize(start + self.n.div_ceil(8), 0);
        for i in active.iter() {
            self.steps[start + i / 8] |= 1 << (i % 8);
        }
        put_u32(&mut self.steps, positions.len() as u32);
        for &p in positions {
            put_point(&mut self.steps, p);
        }
        self.step_count += 1;
    }

    /// Appends one injected-fault record.
    pub fn record_fault(&mut self, fault: &FaultEvent) {
        put_fault(&mut self.faults, fault);
        self.fault_count += 1;
    }

    /// Routes an engine trace event to the matching record method.
    pub fn record_event(&mut self, event: &TraceEvent<'_>) {
        match *event {
            TraceEvent::Step {
                time,
                active,
                positions,
            } => self.record_step(time, active, positions),
            TraceEvent::Fault(fault) => self.record_fault(fault),
        }
    }

    /// Number of recorded instants.
    #[must_use]
    pub fn step_count(&self) -> u32 {
        self.step_count
    }

    /// Length of the assembled encoding, in bytes.
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        self.header.len() + 4 + self.steps.len() + 4 + self.faults.len()
    }

    /// FNV-1a 64 of the assembled encoding, computed without assembling.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut hash = fnv1a64_update(FNV_BASIS, &self.header);
        hash = fnv1a64_update(hash, &self.step_count.to_le_bytes());
        hash = fnv1a64_update(hash, &self.steps);
        hash = fnv1a64_update(hash, &self.fault_count.to_le_bytes());
        fnv1a64_update(hash, &self.faults)
    }

    /// Assembles the canonical byte string — equal to [`encode`] of the
    /// equivalent recorded trace.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        out.extend_from_slice(&self.header);
        put_u32(&mut out, self.step_count);
        out.extend_from_slice(&self.steps);
        put_u32(&mut out, self.fault_count);
        out.extend_from_slice(&self.faults);
        out
    }
}

/// Encodes a trace as lowercase hex, wrapped at 64 characters per line —
/// the on-disk form of golden traces (diffable, no binary files in git).
#[must_use]
pub fn encode_hex(trace: &Trace) -> String {
    to_hex(&encode(trace))
}

/// Hex-formats already-encoded trace bytes in the golden-file layout
/// (64 chars per line, trailing newline).
#[must_use]
pub fn to_hex(bytes: &[u8]) -> String {
    let mut hex = String::with_capacity(bytes.len() * 2 + bytes.len() / 32 + 1);
    for (i, b) in bytes.iter().enumerate() {
        if i > 0 && i % 32 == 0 {
            hex.push('\n');
        }
        hex.push_str(&format!("{b:02x}"));
    }
    hex.push('\n');
    hex
}

/// The FNV-1a 64-bit offset basis — the hash of the empty string.
pub const FNV_BASIS: u64 = 0xCBF2_9CE4_8422_2325;

/// FNV-1a 64-bit hash — a stable fingerprint for traces too large to keep
/// in memory per session (full-budget conformance runs).
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_update(FNV_BASIS, bytes)
}

/// Folds more bytes into a running FNV-1a 64 hash. Because FNV is a plain
/// left-to-right fold, `fnv1a64(ab) == fnv1a64_update(fnv1a64(a), b)` —
/// which is what lets [`TraceEncoder::fingerprint`] hash a segmented
/// encoding without concatenating it.
#[must_use]
pub fn fnv1a64_update(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use stigmergy_geometry::Point;
    use stigmergy_robots::{Engine, MovementProtocol, View};
    use stigmergy_scheduler::{FaultPlan, RoundRobin};

    struct Walker;
    impl MovementProtocol for Walker {
        fn on_activate(&mut self, view: &View) -> Point {
            view.own_position() + stigmergy_geometry::Vec2::new(0.25, 0.125)
        }
    }

    fn sample_trace(seed: u64) -> Trace {
        let mut e = Engine::builder()
            .positions([Point::new(0.0, 0.0), Point::new(7.0, 0.0)])
            .protocols([Walker, Walker])
            .unit_frames()
            .schedule(RoundRobin)
            .sigma(1.0)
            .faults(FaultPlan::new(seed).non_rigid(0.5, 0.5))
            .build()
            .unwrap();
        e.run(12).unwrap();
        e.trace().clone()
    }

    #[test]
    fn header_and_determinism() {
        let bytes = encode(&sample_trace(5));
        assert_eq!(&bytes[..4], MAGIC);
        assert_eq!(bytes[4], VERSION);
        assert_eq!(bytes, encode(&sample_trace(5)), "same run, same bytes");
    }

    #[test]
    fn different_runs_encode_differently() {
        assert_ne!(encode(&sample_trace(5)), encode(&sample_trace(6)));
    }

    #[test]
    fn encoding_is_injective_on_positions() {
        // Two traces identical except one position bit differ in bytes:
        // codec must not round positions through text.
        let a = Trace::new(vec![Point::new(0.1, 0.0)]);
        let b = Trace::new(vec![Point::new(0.1 + f64::EPSILON, 0.0)]);
        assert_ne!(encode(&a), encode(&b));
    }

    #[test]
    fn hex_roundtrips_bytes() {
        let trace = sample_trace(9);
        let hex = encode_hex(&trace);
        assert!(hex.ends_with('\n'));
        let joined: String = hex.split_whitespace().collect();
        let decoded: Vec<u8> = (0..joined.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&joined[i..i + 2], 16).unwrap())
            .collect();
        assert_eq!(decoded, encode(&trace));
        assert!(hex.lines().all(|l| l.len() <= 64));
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171F73967E8);
    }

    #[test]
    fn streaming_encoder_matches_batch_encode() {
        let trace = sample_trace(5);
        let mut enc = TraceEncoder::new(trace.initial());
        for step in trace.steps() {
            enc.record_step(step.time, &step.active, &step.positions);
        }
        for fault in trace.faults() {
            enc.record_fault(fault);
        }
        let expected = encode(&trace);
        assert_eq!(enc.to_bytes(), expected, "streaming bytes differ");
        assert_eq!(enc.encoded_len(), expected.len());
        assert_eq!(enc.fingerprint(), fnv1a64(&expected));
        assert_eq!(enc.step_count() as usize, trace.steps().len());
    }

    #[test]
    fn streaming_encoder_from_engine_observer_matches_recorded_trace() {
        use std::cell::RefCell;
        use std::rc::Rc;

        let build = |record: bool| {
            Engine::builder()
                .positions([Point::new(0.0, 0.0), Point::new(7.0, 0.0)])
                .protocols([Walker, Walker])
                .unit_frames()
                .schedule(RoundRobin)
                .sigma(1.0)
                .faults(FaultPlan::new(5).non_rigid(0.5, 0.5))
                .record_trace(record)
                .build()
                .unwrap()
        };
        // Streaming engine: no in-memory step records at all.
        let mut streaming = build(false);
        let enc = Rc::new(RefCell::new(TraceEncoder::new(streaming.positions())));
        let sink = Rc::clone(&enc);
        streaming.observe_trace(move |ev| sink.borrow_mut().record_event(&ev));
        streaming.run(12).unwrap();
        // Recorded engine: the legacy full-trace path.
        let mut recorded = build(true);
        recorded.run(12).unwrap();
        assert_eq!(enc.borrow().to_bytes(), encode(recorded.trace()));
        assert_eq!(
            enc.borrow().fingerprint(),
            fnv1a64(&encode(recorded.trace()))
        );
    }

    #[test]
    fn empty_encoder_matches_empty_trace() {
        let initial = vec![Point::new(1.0, -2.0)];
        let enc = TraceEncoder::new(&initial);
        let trace = Trace::new(initial);
        assert_eq!(enc.to_bytes(), encode(&trace));
        assert_eq!(enc.fingerprint(), fnv1a64(&encode(&trace)));
    }

    #[test]
    fn fnv_update_is_a_fold() {
        let bytes = b"deaf dumb chatting";
        for split in 0..=bytes.len() {
            let (a, b) = bytes.split_at(split);
            assert_eq!(fnv1a64_update(fnv1a64(a), b), fnv1a64(bytes));
        }
        assert_eq!(FNV_BASIS, fnv1a64(b""));
    }

    #[test]
    fn activation_bitmap_survives_encoding() {
        // Round-robin on 2 robots: step t activates robot t % 2. The
        // bitmap byte sits right after the 8-byte time in each step
        // record; walk the steps and check it.
        let trace = sample_trace(5);
        let bytes = encode(&trace);
        let n = 2usize;
        let mut cursor = 4 + 1 + 4 + n * 16; // magic, version, n, initial
        cursor += 4; // step count
        for step in trace.steps() {
            cursor += 8; // time
            let bitmap = bytes[cursor];
            let expect: u8 = step.active.iter().map(|i| 1 << i).sum();
            assert_eq!(bitmap, expect, "t={}", step.time);
            cursor += 1; // bitmap (n=2 fits one byte)
            let count = u32::from_le_bytes(bytes[cursor..cursor + 4].try_into().unwrap()) as usize;
            cursor += 4 + count * 16;
        }
    }
}
