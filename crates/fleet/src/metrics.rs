//! Lock-free fleet metrics: atomic counters and fixed-bucket histograms.
//!
//! Worker threads record into shared atomics with relaxed ordering; every
//! aggregate is a plain sum, so the totals are independent of recording
//! order — a batch run at any worker count snapshots to the same
//! [`MetricsSnapshot`]. Snapshots are plain data, compare with `==`,
//! [`MetricsSnapshot::merge`] by addition, and serialize themselves to
//! JSON by hand (the vendored serde shim never serializes at runtime).

use std::sync::atomic::{AtomicU64, Ordering};

/// A histogram over fixed, inclusive upper bucket bounds.
///
/// A sample lands in the first bucket whose bound is `>= sample`; samples
/// above the last bound land in the implicit overflow bucket. Bin counts,
/// the total count, and the sum are all atomics, so any number of threads
/// record concurrently without locks.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    bins: Vec<AtomicU64>, // one per bound, plus overflow
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// Creates a histogram over the given inclusive upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    #[must_use]
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must be strictly increasing"
        );
        Self {
            bounds: bounds.to_vec(),
            bins: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, sample: u64) {
        let bin = self
            .bounds
            .iter()
            .position(|&b| sample <= b)
            .unwrap_or(self.bounds.len());
        self.bins[bin].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(sample, Ordering::Relaxed);
    }

    /// A plain-data copy of the current state.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            bins: self
                .bins
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data image of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bucket bounds.
    pub bounds: Vec<u64>,
    /// Per-bucket counts; `bins[bounds.len()]` is the overflow bucket.
    pub bins: Vec<u64>,
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot over the given bounds.
    #[must_use]
    pub fn empty(bounds: &[u64]) -> Self {
        Self {
            bounds: bounds.to_vec(),
            bins: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
        }
    }

    /// Adds `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the bucket bounds differ — merging histograms over
    /// different bucketings is meaningless.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        assert_eq!(self.bounds, other.bounds, "histogram bounds differ");
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Mean sample value, or `None` before any sample.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Serializes the snapshot as a JSON object with a stable key order —
    /// shared by [`MetricsSnapshot::to_json`] and the gateway's latency
    /// metrics.
    #[must_use]
    pub fn to_json(&self) -> String {
        let list = |xs: &[u64]| xs.iter().map(u64::to_string).collect::<Vec<_>>().join(",");
        format!(
            "{{\"bounds\":[{}],\"bins\":[{}],\"count\":{},\"sum\":{}}}",
            list(&self.bounds),
            list(&self.bins),
            self.count,
            self.sum
        )
    }
}

/// Default bucket bounds for step-valued histograms (steps to delivery):
/// roughly ×4 per bucket, spanning a one-instant delivery to the longest
/// asynchronous budgets.
pub const STEP_BOUNDS: [u64; 8] = [64, 256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576];

/// Default bucket bounds for per-session activation counts.
pub const ACTIVATION_BOUNDS: [u64; 8] = [
    256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576, 4_194_304,
];

/// Default bucket bounds for small per-session counts (retransmissions,
/// faults injected).
pub const COUNT_BOUNDS: [u64; 8] = [0, 1, 2, 4, 8, 16, 64, 256];

/// Shared metrics sink for one batch run.
///
/// One instance is shared by every worker; recording is lock-free and
/// order-independent, so `workers = 1` and `workers = N` produce equal
/// [`MetricsSnapshot`]s for the same sessions.
#[derive(Debug)]
pub struct FleetMetrics {
    sessions: AtomicU64,
    delivered: AtomicU64,
    timed_out: AtomicU64,
    steps: AtomicU64,
    activations: AtomicU64,
    faults: AtomicU64,
    retransmissions: AtomicU64,
    corrupt: AtomicU64,
    delivered_bits: AtomicU64,
    fec_corrected: AtomicU64,
    fec_rejected: AtomicU64,
    algo_rounds: AtomicU64,
    algo_bits: AtomicU64,
    algo_decided: AtomicU64,
    steps_to_delivery: Histogram,
    activations_per_session: Histogram,
    faults_per_session: Histogram,
    retransmissions_per_session: Histogram,
    activations_to_decision: Histogram,
}

impl Default for FleetMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl FleetMetrics {
    /// Creates an empty sink with the default bucketing.
    #[must_use]
    pub fn new() -> Self {
        Self {
            sessions: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
            steps: AtomicU64::new(0),
            activations: AtomicU64::new(0),
            faults: AtomicU64::new(0),
            retransmissions: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            delivered_bits: AtomicU64::new(0),
            fec_corrected: AtomicU64::new(0),
            fec_rejected: AtomicU64::new(0),
            algo_rounds: AtomicU64::new(0),
            algo_bits: AtomicU64::new(0),
            algo_decided: AtomicU64::new(0),
            steps_to_delivery: Histogram::new(&STEP_BOUNDS),
            activations_per_session: Histogram::new(&ACTIVATION_BOUNDS),
            faults_per_session: Histogram::new(&COUNT_BOUNDS),
            retransmissions_per_session: Histogram::new(&COUNT_BOUNDS),
            activations_to_decision: Histogram::new(&ACTIVATION_BOUNDS),
        }
    }

    /// Records one finished session.
    pub fn record_session(&self, outcome: &SessionOutcome) {
        self.sessions.fetch_add(1, Ordering::Relaxed);
        if outcome.delivered {
            self.delivered.fetch_add(1, Ordering::Relaxed);
            self.steps_to_delivery.record(outcome.steps_to_delivery);
        } else {
            self.timed_out.fetch_add(1, Ordering::Relaxed);
        }
        self.steps.fetch_add(outcome.steps, Ordering::Relaxed);
        self.activations
            .fetch_add(outcome.activations, Ordering::Relaxed);
        self.faults.fetch_add(outcome.faults, Ordering::Relaxed);
        self.retransmissions
            .fetch_add(outcome.retransmissions, Ordering::Relaxed);
        self.corrupt.fetch_add(outcome.corrupt, Ordering::Relaxed);
        self.delivered_bits
            .fetch_add(outcome.delivered_bits, Ordering::Relaxed);
        self.fec_corrected
            .fetch_add(outcome.fec_corrected, Ordering::Relaxed);
        self.fec_rejected
            .fetch_add(outcome.fec_rejected, Ordering::Relaxed);
        self.algo_rounds
            .fetch_add(outcome.algo_rounds, Ordering::Relaxed);
        self.algo_bits
            .fetch_add(outcome.algo_bits, Ordering::Relaxed);
        if outcome.algo_decided {
            self.algo_decided.fetch_add(1, Ordering::Relaxed);
            self.activations_to_decision
                .record(outcome.activations_to_decision);
        }
        self.activations_per_session.record(outcome.activations);
        self.faults_per_session.record(outcome.faults);
        self.retransmissions_per_session
            .record(outcome.retransmissions);
    }

    /// A plain-data copy of the current totals.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            sessions: self.sessions.load(Ordering::Relaxed),
            delivered: self.delivered.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            steps: self.steps.load(Ordering::Relaxed),
            activations: self.activations.load(Ordering::Relaxed),
            faults: self.faults.load(Ordering::Relaxed),
            retransmissions: self.retransmissions.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            delivered_bits: self.delivered_bits.load(Ordering::Relaxed),
            fec_corrected: self.fec_corrected.load(Ordering::Relaxed),
            fec_rejected: self.fec_rejected.load(Ordering::Relaxed),
            algo_rounds: self.algo_rounds.load(Ordering::Relaxed),
            algo_bits: self.algo_bits.load(Ordering::Relaxed),
            algo_decided: self.algo_decided.load(Ordering::Relaxed),
            steps_to_delivery: self.steps_to_delivery.snapshot(),
            activations_per_session: self.activations_per_session.snapshot(),
            faults_per_session: self.faults_per_session.snapshot(),
            retransmissions_per_session: self.retransmissions_per_session.snapshot(),
            activations_to_decision: self.activations_to_decision.snapshot(),
        }
    }
}

/// What one session contributes to the metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionOutcome {
    /// Whether the payload(s) arrived within budget.
    pub delivered: bool,
    /// Steps until delivery (recorded only when `delivered`).
    pub steps_to_delivery: u64,
    /// Total instants executed.
    pub steps: u64,
    /// Total robot activations.
    pub activations: u64,
    /// Faults injected by the plan.
    pub faults: u64,
    /// Retransmissions issued (hardened sessions).
    pub retransmissions: u64,
    /// Corrupted payloads surfaced to an inbox (must stay 0).
    pub corrupt: u64,
    /// Payload bits delivered end to end (8 per payload byte when the
    /// session delivered; 0 otherwise and for algorithm sessions, whose
    /// traffic is already counted in `algo_bits`).
    pub delivered_bits: u64,
    /// Symbol corrections the session's FEC performed (paced protocols
    /// and the hardened secondary channel; 0 elsewhere).
    pub fec_corrected: u64,
    /// FEC blocks rejected as beyond the correction radius.
    pub fec_rejected: u64,
    /// Algorithm rounds executed (algorithm sessions; max over robots).
    pub algo_rounds: u64,
    /// Algorithm traffic in channel bits (16-bit header + 8 per byte,
    /// summed over every frame any robot enqueued).
    pub algo_bits: u64,
    /// Whether every live robot's algorithm stack reached a terminal
    /// status within budget (algorithm sessions only).
    pub algo_decided: bool,
    /// Engine activations consumed when the last live robot reached its
    /// decision (recorded only when `algo_decided`).
    pub activations_to_decision: u64,
}

/// Plain-data image of a [`FleetMetrics`] sink.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Sessions recorded.
    pub sessions: u64,
    /// Sessions that delivered.
    pub delivered: u64,
    /// Sessions that did not deliver.
    pub timed_out: u64,
    /// Total instants across all sessions.
    pub steps: u64,
    /// Total activations across all sessions.
    pub activations: u64,
    /// Total faults injected.
    pub faults: u64,
    /// Total retransmissions.
    pub retransmissions: u64,
    /// Total corrupted deliveries (must stay 0).
    pub corrupt: u64,
    /// Total payload bits delivered end to end.
    pub delivered_bits: u64,
    /// Total FEC symbol corrections.
    pub fec_corrected: u64,
    /// Total FEC blocks rejected as uncorrectable.
    pub fec_rejected: u64,
    /// Total algorithm rounds across algorithm sessions.
    pub algo_rounds: u64,
    /// Total algorithm traffic in channel bits.
    pub algo_bits: u64,
    /// Algorithm sessions whose every live robot reached a decision.
    pub algo_decided: u64,
    /// Histogram of steps-to-delivery over delivered sessions.
    pub steps_to_delivery: HistogramSnapshot,
    /// Histogram of activations per session.
    pub activations_per_session: HistogramSnapshot,
    /// Histogram of faults injected per session.
    pub faults_per_session: HistogramSnapshot,
    /// Histogram of retransmissions per session.
    pub retransmissions_per_session: HistogramSnapshot,
    /// Histogram of activations-to-decision over decided algorithm
    /// sessions.
    pub activations_to_decision: HistogramSnapshot,
}

impl MetricsSnapshot {
    /// An all-zero snapshot with the default bucketing.
    #[must_use]
    pub fn empty() -> Self {
        FleetMetrics::new().snapshot()
    }

    /// Adds `other` into `self` — the per-worker → global merge.
    ///
    /// Merging is commutative and associative (every field is a plain
    /// `u64` sum, including each histogram bin), so folding per-session
    /// or per-worker snapshots in *any* steal order yields the same
    /// totals — the property `tests/tests/properties.rs` pins with a
    /// permutation proptest down to the JSON bytes.
    ///
    /// # Panics
    ///
    /// Panics if histogram bucketings differ.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        self.sessions += other.sessions;
        self.delivered += other.delivered;
        self.timed_out += other.timed_out;
        self.steps += other.steps;
        self.activations += other.activations;
        self.faults += other.faults;
        self.retransmissions += other.retransmissions;
        self.corrupt += other.corrupt;
        self.delivered_bits += other.delivered_bits;
        self.fec_corrected += other.fec_corrected;
        self.fec_rejected += other.fec_rejected;
        self.algo_rounds += other.algo_rounds;
        self.algo_bits += other.algo_bits;
        self.algo_decided += other.algo_decided;
        self.steps_to_delivery.merge(&other.steps_to_delivery);
        self.activations_per_session
            .merge(&other.activations_per_session);
        self.faults_per_session.merge(&other.faults_per_session);
        self.retransmissions_per_session
            .merge(&other.retransmissions_per_session);
        self.activations_to_decision
            .merge(&other.activations_to_decision);
    }

    /// Folds any number of snapshots into one, in iteration order —
    /// which, by [`MetricsSnapshot::merge`]'s commutativity, does not
    /// matter: any permutation of `parts` produces byte-identical JSON.
    ///
    /// # Panics
    ///
    /// Panics if histogram bucketings differ between parts.
    #[must_use]
    pub fn merge_all<'a, I>(parts: I) -> Self
    where
        I: IntoIterator<Item = &'a MetricsSnapshot>,
    {
        let mut out = Self::empty();
        for part in parts {
            out.merge(part);
        }
        out
    }

    /// Delivered sessions per million sessions — the fleet's delivery
    /// rate as an exact integer (no float drift across platforms). Zero
    /// before any session.
    #[must_use]
    pub fn delivered_rate_ppm(&self) -> u64 {
        (self.delivered * 1_000_000)
            .checked_div(self.sessions)
            .unwrap_or(0)
    }

    /// Engine instants spent per payload bit delivered end to end —
    /// the channel's inverse effective bitrate, rounded down. Zero when
    /// nothing was delivered (so the ratio is monotone-comparable in
    /// baselines: lower is better once bits flow).
    #[must_use]
    pub fn steps_per_delivered_bit(&self) -> u64 {
        self.steps.checked_div(self.delivered_bits).unwrap_or(0)
    }

    /// Serializes the snapshot as a JSON object with a stable key order,
    /// so equal snapshots produce byte-equal JSON (the property the CI
    /// smoke job diffs on).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"sessions\":{},\"delivered\":{},\"timed_out\":{},",
                "\"steps\":{},\"activations\":{},\"faults\":{},",
                "\"retransmissions\":{},\"corrupt\":{},",
                "\"delivered_bits\":{},\"fec_corrected\":{},\"fec_rejected\":{},",
                "\"algo_rounds\":{},\"algo_bits\":{},\"algo_decided\":{},",
                "\"steps_to_delivery\":{},\"activations_per_session\":{},",
                "\"faults_per_session\":{},\"retransmissions_per_session\":{},",
                "\"activations_to_decision\":{}}}"
            ),
            self.sessions,
            self.delivered,
            self.timed_out,
            self.steps,
            self.activations,
            self.faults,
            self.retransmissions,
            self.corrupt,
            self.delivered_bits,
            self.fec_corrected,
            self.fec_rejected,
            self.algo_rounds,
            self.algo_bits,
            self.algo_decided,
            self.steps_to_delivery.to_json(),
            self.activations_per_session.to_json(),
            self.faults_per_session.to_json(),
            self.retransmissions_per_session.to_json(),
            self.activations_to_decision.to_json(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn histogram_buckets_by_inclusive_upper_bound() {
        let h = Histogram::new(&[10, 100]);
        h.record(0);
        h.record(10); // inclusive: still first bucket
        h.record(11);
        h.record(100);
        h.record(101); // overflow
        let s = h.snapshot();
        assert_eq!(s.bins, vec![2, 2, 1]);
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 222);
        assert_eq!(s.mean(), Some(44.4));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_rejected() {
        let _ = Histogram::new(&[10, 10]);
    }

    #[test]
    #[should_panic(expected = "at least one bound")]
    fn empty_bounds_rejected() {
        let _ = Histogram::new(&[]);
    }

    #[test]
    fn snapshot_merge_is_addition() {
        let mut a = HistogramSnapshot::empty(&[5, 50]);
        let h = Histogram::new(&[5, 50]);
        h.record(3);
        h.record(30);
        a.merge(&h.snapshot());
        a.merge(&h.snapshot());
        assert_eq!(a.bins, vec![2, 2, 0]);
        assert_eq!(a.count, 4);
        assert_eq!(a.sum, 66);
    }

    #[test]
    #[should_panic(expected = "bounds differ")]
    fn merge_rejects_different_bucketings() {
        let mut a = HistogramSnapshot::empty(&[1]);
        a.merge(&HistogramSnapshot::empty(&[2]));
    }

    fn outcome(i: u64) -> SessionOutcome {
        SessionOutcome {
            delivered: !i.is_multiple_of(3),
            steps_to_delivery: i * 17 % 2_000,
            steps: i * 19,
            activations: i * 23,
            faults: i % 7,
            retransmissions: i % 4,
            corrupt: 0,
            delivered_bits: if i.is_multiple_of(3) { 0 } else { 24 },
            fec_corrected: i % 5,
            fec_rejected: i % 2,
            algo_rounds: i % 3,
            algo_bits: i * 11 % 500,
            algo_decided: i.is_multiple_of(4),
            activations_to_decision: i * 13 % 1_000,
        }
    }

    #[test]
    fn concurrent_recording_equals_serial() {
        let serial = FleetMetrics::new();
        for i in 0..200 {
            serial.record_session(&outcome(i));
        }
        let shared = FleetMetrics::new();
        thread::scope(|scope| {
            for chunk in 0..4 {
                let shared = &shared;
                scope.spawn(move || {
                    for i in (chunk * 50)..((chunk + 1) * 50) {
                        shared.record_session(&outcome(i));
                    }
                });
            }
        });
        assert_eq!(serial.snapshot(), shared.snapshot());
    }

    #[test]
    fn snapshot_totals_are_consistent() {
        let m = FleetMetrics::new();
        for i in 0..50 {
            m.record_session(&outcome(i));
        }
        let s = m.snapshot();
        assert_eq!(s.sessions, 50);
        assert_eq!(s.delivered + s.timed_out, s.sessions);
        assert_eq!(s.steps_to_delivery.count, s.delivered);
        assert_eq!(s.activations_per_session.count, s.sessions);
        assert_eq!(s.activations_per_session.sum, s.activations);
        assert_eq!(s.faults_per_session.sum, s.faults);
        assert_eq!(s.retransmissions_per_session.sum, s.retransmissions);
        assert_eq!(s.activations_to_decision.count, s.algo_decided);
        assert_eq!(s.algo_rounds, (0..50).map(|i| i % 3).sum::<u64>());
        assert_eq!(s.algo_bits, (0..50).map(|i| i * 11 % 500).sum::<u64>());
        assert_eq!(
            s.algo_decided,
            (0..50).filter(|i| i % 4 == 0).count() as u64
        );
        assert_eq!(s.delivered_bits, s.delivered * 24);
        assert_eq!(s.fec_corrected, (0..50).map(|i| i % 5).sum::<u64>());
        assert_eq!(s.fec_rejected, (0..50).map(|i| i % 2).sum::<u64>());
        assert_eq!(s.delivered_rate_ppm(), s.delivered * 1_000_000 / 50);
        assert_eq!(s.steps_per_delivered_bit(), s.steps / s.delivered_bits);
    }

    #[test]
    fn derived_rates_are_zero_before_any_delivery() {
        let empty = MetricsSnapshot::empty();
        assert_eq!(empty.delivered_rate_ppm(), 0);
        assert_eq!(empty.steps_per_delivered_bit(), 0);
        let m = FleetMetrics::new();
        m.record_session(&SessionOutcome {
            steps: 500,
            ..SessionOutcome::default()
        });
        let s = m.snapshot();
        assert_eq!(s.delivered_rate_ppm(), 0, "nothing delivered");
        assert_eq!(s.steps_per_delivered_bit(), 0, "no bits, no ratio");
    }

    #[test]
    fn json_is_stable_and_reflects_totals() {
        let m = FleetMetrics::new();
        m.record_session(&SessionOutcome {
            delivered: true,
            steps_to_delivery: 12,
            steps: 40,
            activations: 80,
            faults: 2,
            retransmissions: 1,
            corrupt: 0,
            delivered_bits: 24,
            fec_corrected: 2,
            fec_rejected: 1,
            algo_rounds: 3,
            algo_bits: 112,
            algo_decided: true,
            activations_to_decision: 64,
        });
        let json = m.snapshot().to_json();
        assert_eq!(json, m.snapshot().to_json(), "stable across calls");
        assert!(json.starts_with("{\"sessions\":1,\"delivered\":1,"));
        assert!(json.contains("\"activations\":80"));
        assert!(json.contains("\"bounds\":[64,256,"));
        assert!(json.contains(
            "\"corrupt\":0,\"delivered_bits\":24,\"fec_corrected\":2,\"fec_rejected\":1,"
        ));
        assert!(json.contains("\"algo_rounds\":3,\"algo_bits\":112,\"algo_decided\":1,"));
        assert!(json.contains("\"activations_to_decision\":{\"bounds\":[256,"));
    }

    #[test]
    fn merged_worker_snapshots_equal_shared_sink() {
        let shared = FleetMetrics::new();
        let workers: Vec<FleetMetrics> = (0..3).map(|_| FleetMetrics::new()).collect();
        for i in 0..90 {
            shared.record_session(&outcome(i));
            workers[(i % 3) as usize].record_session(&outcome(i));
        }
        let mut merged = MetricsSnapshot::empty();
        for w in &workers {
            merged.merge(&w.snapshot());
        }
        assert_eq!(merged, shared.snapshot());
    }
}
