//! Batch execution: a [`BatchSpec`] fans out into sessions, the pool runs
//! them on N workers, and each session comes back as a [`RunReport`].
//!
//! Determinism contract: a session is a pure function of its
//! [`SessionSpec`] — schedules and fault plans are built from Send-safe
//! specs *inside* the worker, every RNG is seeded from the spec, and the
//! pool returns reports in submission order — so `workers = 1` and
//! `workers = N` produce identical report vectors, byte-identical encoded
//! traces, and equal metrics snapshots. The conformance matrix from the
//! adversarial suite ships as [`BatchSpec::conformance_matrix`], with the
//! same cohorts, schedules, plans, and budgets as the hand-rolled loops
//! it replaces.

use crate::metrics::{FleetMetrics, MetricsSnapshot, SessionOutcome};
use crate::pool::{run_indexed_observed, CancelToken};
use crate::trace_codec::{encode, fnv1a64, TraceEncoder};
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;
use std::time::Duration;
use std::time::Instant;
use stigmergy::ack::RetransmitPolicy;
use stigmergy::async2::{Async2, DriftPolicy};
use stigmergy::async_n::AsyncSwarm;
use stigmergy::backup::Wireless;
use stigmergy::paced::{Paced2, PacedConfig, PacedSwarm};
use stigmergy::session::HardenedSession;
use stigmergy::sync2::Sync2;
use stigmergy::sync_swarm::SyncSwarm;
use stigmergy::{election_signature, label_by_id, label_by_lex, label_by_sec};
use stigmergy_algo::{
    agreement, election, flood, AgreementSession, ElectionSession, FloodSession, NodeStack,
    Outgoing, Status,
};
use stigmergy_geometry::{Point, Vec2};
use stigmergy_robots::engine::DEFAULT_COLLISION_EPS;
use stigmergy_robots::{Capabilities, Engine, MovementProtocol};
use stigmergy_scheduler::rng::SplitMix64;
use stigmergy_scheduler::{AlgorithmSpec, CodingSpec, FaultSpec, ScheduleSpec, WakeAllFirst};

/// Payload every batch session sends, unless overridden.
pub const DEFAULT_PAYLOAD: &[u8] = b"adv";

/// The protocol a session exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolKind {
    /// §3 two-robot synchronous chat.
    Sync2,
    /// §4 two-robot asynchronous chat.
    Async2,
    /// §3 swarm, identified robots (ById naming).
    SyncSwarmRouted,
    /// §3 swarm, anonymous with sense of direction (ByLex naming).
    SyncSwarmLex,
    /// §3 swarm, fully anonymous (BySec naming).
    SyncSwarmSec,
    /// §4 swarm, fully anonymous.
    AsyncSwarm,
    /// Hardened session: movement-first with retransmission and a
    /// CRC-protected wireless secondary. Runs its own internal
    /// synchronous network, so the session's `ScheduleSpec` is unused.
    Hardened,
}

/// The six paper protocols of the conformance matrix, in the order the
/// adversarial suite historically ran them.
pub const CONFORMANCE: [ProtocolKind; 6] = [
    ProtocolKind::Sync2,
    ProtocolKind::Async2,
    ProtocolKind::SyncSwarmRouted,
    ProtocolKind::SyncSwarmLex,
    ProtocolKind::SyncSwarmSec,
    ProtocolKind::AsyncSwarm,
];

impl ProtocolKind {
    /// A short name for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::Sync2 => "sync2",
            ProtocolKind::Async2 => "async2",
            ProtocolKind::SyncSwarmRouted => "sync-swarm-routed",
            ProtocolKind::SyncSwarmLex => "sync-swarm-lex",
            ProtocolKind::SyncSwarmSec => "sync-swarm-sec",
            ProtocolKind::AsyncSwarm => "async-swarm",
            ProtocolKind::Hardened => "hardened",
        }
    }

    /// The default step budget, matching the adversarial suite's.
    #[must_use]
    pub fn default_budget(self) -> u64 {
        match self {
            ProtocolKind::Sync2
            | ProtocolKind::SyncSwarmRouted
            | ProtocolKind::SyncSwarmLex
            | ProtocolKind::SyncSwarmSec => 40_000,
            ProtocolKind::Async2 => 600_000,
            ProtocolKind::AsyncSwarm => 800_000,
            // Budget per retransmission attempt; the policy does backoff.
            ProtocolKind::Hardened => 4_000,
        }
    }

    /// The protocol's wire tag — one byte, stable across releases, used
    /// by the gateway's `BatchSpec` encoding.
    #[must_use]
    pub fn wire_code(self) -> u8 {
        match self {
            ProtocolKind::Sync2 => 0,
            ProtocolKind::Async2 => 1,
            ProtocolKind::SyncSwarmRouted => 2,
            ProtocolKind::SyncSwarmLex => 3,
            ProtocolKind::SyncSwarmSec => 4,
            ProtocolKind::AsyncSwarm => 5,
            ProtocolKind::Hardened => 6,
        }
    }

    /// Decodes a [`ProtocolKind::wire_code`] tag.
    #[must_use]
    pub fn from_wire_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => ProtocolKind::Sync2,
            1 => ProtocolKind::Async2,
            2 => ProtocolKind::SyncSwarmRouted,
            3 => ProtocolKind::SyncSwarmLex,
            4 => ProtocolKind::SyncSwarmSec,
            5 => ProtocolKind::AsyncSwarm,
            6 => ProtocolKind::Hardened,
            _ => return None,
        })
    }

    fn tag(self) -> u64 {
        match self {
            ProtocolKind::Sync2 => 0xFA01,
            ProtocolKind::Async2 => 0xFA02,
            ProtocolKind::SyncSwarmRouted => 0xB0_01,
            ProtocolKind::SyncSwarmLex => 0xB0_02,
            ProtocolKind::SyncSwarmSec => 0xB0_03,
            ProtocolKind::AsyncSwarm => 0xB0_04,
            ProtocolKind::Hardened => 0xB0_05,
        }
    }
}

/// The irregular ring the swarm sessions start from — same construction
/// as the integration-test helper, so fleet-driven conformance runs the
/// exact cohorts the hand-rolled loops did.
#[must_use]
pub fn ring(n: usize, radius: f64) -> Vec<Point> {
    (0..n)
        .map(|k| {
            let theta = std::f64::consts::TAU * (k as f64) / (n as f64);
            let r = radius * (1.0 + 0.03 * (k as f64 + 1.0) / (n as f64));
            let dir = Vec2::from_bearing(theta);
            Point::new(r * dir.x, r * dir.y)
        })
        .collect()
}

fn pair_positions() -> Vec<Point> {
    vec![Point::new(0.0, 0.0), Point::new(14.0, 0.0)]
}

/// A whole sweep: the cross product of protocols × schedules × plans ×
/// seeds, plus the knobs shared by every session.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchSpec {
    /// Protocols to exercise.
    pub protocols: Vec<ProtocolKind>,
    /// Distributed algorithms to run over the async-swarm transport
    /// (each expands into its own sessions after the protocol block).
    pub algorithms: Vec<AlgorithmSpec>,
    /// Activation schedules (each wrapped in `WakeAllFirst`).
    pub schedules: Vec<ScheduleSpec>,
    /// Fault plans.
    pub plans: Vec<FaultSpec>,
    /// Per-session seeds: each seed derives the frame seed and the fault
    /// plan seed for its session.
    pub seeds: Vec<u64>,
    /// Swarm cohort size.
    pub cohort: usize,
    /// Payload to send.
    pub payload: Vec<u8>,
    /// The channel coding every synchronous session runs under.
    /// [`CodingSpec::Binary`] reproduces the historical one-bit-per-
    /// excursion protocols byte for byte; multi-level and FEC codings
    /// instantiate the paced protocols instead. Asynchronous protocols
    /// ignore this knob — their zone-entry decoding carries no magnitude.
    pub coding: CodingSpec,
    /// Optional ceiling on every session's step budget — determinism
    /// tests run the full matrix at a small cap so whole traces fit in
    /// memory.
    pub budget_cap: Option<u64>,
    /// Whether reports retain the full encoded trace (`RunReport::trace`)
    /// or only its hash.
    pub keep_traces: bool,
}

impl BatchSpec {
    /// The adversarial suite's conformance matrix over the given seeds:
    /// 6 protocols × 3 adversarial-but-legal schedules × 3 fault plans,
    /// with the historical cohort, payload, and budgets.
    #[must_use]
    pub fn conformance_matrix(seeds: Vec<u64>) -> Self {
        Self {
            protocols: CONFORMANCE.to_vec(),
            algorithms: Vec::new(),
            schedules: vec![
                // The message's receiver is the starved victim.
                ScheduleSpec::LaggingReceiver { max_gap: 8 },
                ScheduleSpec::Bursty {
                    seed: 0x0AD5_CEDD,
                    burst_len: 3,
                    lull_len: 5,
                },
                ScheduleSpec::WorstCaseFair { max_gap: 6 },
            ],
            plans: vec![
                FaultSpec::NonRigid {
                    delta: 0.35,
                    prob: 0.5,
                },
                FaultSpec::Dropout { prob: 0.1 },
                // Robot 1 crash-stops mid-run: the receiver in a pair, an
                // essential bystander in a swarm, so senders stall.
                FaultSpec::Crash {
                    robot: 1,
                    time: 35,
                    delta: 0.5,
                    prob: 0.25,
                },
            ],
            seeds,
            cohort: 3,
            payload: DEFAULT_PAYLOAD.to_vec(),
            // The paced multi-symbol channel with FEC: the synchronous
            // protocols survive the adversarial schedules and fault plans
            // the binary channel loses every cell of (the delivered-rate
            // ratchet in CI pins the gain).
            coding: CodingSpec::Fec {
                levels: 8,
                dwell: 10,
            },
            budget_cap: None,
            keep_traces: false,
        }
    }

    /// The algorithm conformance matrix over the given seeds: the three
    /// distributed algorithms × a fair schedule with and without the
    /// crash-filtering wrapper × a benign-ish and a crash-stop fault
    /// plan. Every cell must terminate with consistent decisions among
    /// the non-crashed robots.
    #[must_use]
    pub fn algorithm_matrix(seeds: Vec<u64>) -> Self {
        Self {
            protocols: Vec::new(),
            algorithms: vec![
                AlgorithmSpec::Flood { initiator: 0 },
                AlgorithmSpec::Election,
                AlgorithmSpec::Agreement { inputs: 0b101 },
            ],
            schedules: vec![
                ScheduleSpec::WorstCaseFair { max_gap: 6 },
                ScheduleSpec::CrashFiltered {
                    inner: Box::new(ScheduleSpec::WorstCaseFair { max_gap: 6 }),
                },
            ],
            plans: vec![
                FaultSpec::NonRigid {
                    delta: 0.35,
                    prob: 0.5,
                },
                // Robot 1 crash-stops before any frame can complete
                // (the shortest algorithm frame is 32 bits > 35
                // instants), so every algorithm must decide among the
                // survivors.
                FaultSpec::Crash {
                    robot: 1,
                    time: 35,
                    delta: 0.5,
                    prob: 0.25,
                },
            ],
            seeds,
            cohort: 3,
            payload: DEFAULT_PAYLOAD.to_vec(),
            // Algorithms ride the asynchronous transport, which has no
            // magnitude channel; binary keeps their traces pinned.
            coding: CodingSpec::Binary,
            budget_cap: None,
            keep_traces: false,
        }
    }

    /// Expands the cross product into individual session specs, in the
    /// canonical order: protocol-major (then schedule, plan, seed),
    /// followed by the algorithm block in the same inner order.
    #[must_use]
    pub fn sessions(&self) -> Vec<SessionSpec> {
        let mut out = Vec::with_capacity(
            (self.protocols.len() + self.algorithms.len())
                * self.schedules.len()
                * self.plans.len()
                * self.seeds.len(),
        );
        let mut push_block = |protocol: ProtocolKind, algorithm: Option<AlgorithmSpec>| {
            for schedule in &self.schedules {
                for plan in &self.plans {
                    for &seed in &self.seeds {
                        out.push(SessionSpec {
                            protocol,
                            algorithm,
                            schedule: schedule.clone(),
                            plan: plan.clone(),
                            seed,
                            cohort: self.cohort,
                            payload: self.payload.clone(),
                            coding: if algorithm.is_some() {
                                CodingSpec::Binary
                            } else {
                                self.coding
                            },
                            budget_cap: self.budget_cap,
                            keep_trace: self.keep_traces,
                        });
                    }
                }
            }
        };
        for &protocol in &self.protocols {
            push_block(protocol, None);
        }
        for &algorithm in &self.algorithms {
            // Algorithms ride the §4 anonymous swarm transport.
            push_block(ProtocolKind::AsyncSwarm, Some(algorithm));
        }
        out
    }
}

/// Everything one session needs — plain data, `Send`, built inside the
/// worker that runs it.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSpec {
    /// The protocol under test.
    pub protocol: ProtocolKind,
    /// The distributed algorithm to run over it, if any. Set only with
    /// [`ProtocolKind::AsyncSwarm`], whose channel the algorithm driver
    /// speaks.
    pub algorithm: Option<AlgorithmSpec>,
    /// The activation schedule (wrapped in `WakeAllFirst` at build time).
    pub schedule: ScheduleSpec,
    /// The fault plan.
    pub plan: FaultSpec,
    /// The session seed; frame and plan seeds derive from it.
    pub seed: u64,
    /// Swarm cohort size (pairs ignore this).
    pub cohort: usize,
    /// Payload to send.
    pub payload: Vec<u8>,
    /// The channel coding (synchronous protocols only — see
    /// [`BatchSpec::coding`]).
    pub coding: CodingSpec,
    /// Optional budget ceiling.
    pub budget_cap: Option<u64>,
    /// Whether to retain the encoded trace in the report.
    pub keep_trace: bool,
}

impl SessionSpec {
    /// Frame-generation seed: the protocol's historical base perturbed by
    /// the session seed (seed 0 reproduces the adversarial suite's fixed
    /// frames exactly). Algorithm sessions fold in a per-algorithm tag so
    /// the three algorithms never share frames.
    #[must_use]
    pub fn frame_seed(&self) -> u64 {
        let tag = match self.algorithm {
            Some(AlgorithmSpec::Flood { .. }) => 0xA1_60_01,
            Some(AlgorithmSpec::Election) => 0xA1_60_02,
            Some(AlgorithmSpec::Agreement { .. }) => 0xA1_60_03,
            None => self.protocol.tag(),
        };
        if self.seed == 0 {
            tag
        } else {
            SplitMix64::new(tag ^ self.seed).next_u64()
        }
    }

    /// Fault-plan seed, mirroring the adversarial suite's `seed ^ 0x5EED`
    /// derivation from the frame seed.
    #[must_use]
    pub fn plan_seed(&self) -> u64 {
        match self.protocol {
            // The pair runners historically used fixed plan seeds.
            ProtocolKind::Sync2 => 0xA1 ^ self.seed,
            ProtocolKind::Async2 => 0xA2 ^ self.seed,
            _ => self.frame_seed() ^ 0x5EED,
        }
    }

    /// The effective step budget: the protocol default, capped for crash
    /// plans (which can only time out, so a full budget is waste) and by
    /// the spec's explicit ceiling. Algorithm sessions get per-algorithm
    /// budgets instead and are exempt from the crash cap — crash-stop is
    /// exactly the regime they must *terminate* under, not time out.
    #[must_use]
    pub fn budget(&self) -> u64 {
        let mut budget = match self.algorithm {
            Some(AlgorithmSpec::Flood { .. }) => 600_000,
            Some(AlgorithmSpec::Election) => 900_000,
            Some(AlgorithmSpec::Agreement { .. }) => 1_200_000,
            None => {
                let mut budget = self.protocol.default_budget();
                if self.plan.crashes() {
                    budget = budget.min(20_000);
                }
                budget
            }
        };
        if let Some(cap) = self.budget_cap {
            budget = budget.min(cap);
        }
        budget
    }
}

/// What came back from one session.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Protocol name.
    pub protocol: &'static str,
    /// Algorithm name, for algorithm sessions.
    pub algorithm: Option<&'static str>,
    /// Schedule name.
    pub schedule: &'static str,
    /// Fault plan name.
    pub plan: &'static str,
    /// The session seed.
    pub seed: u64,
    /// Whether the payload arrived within budget.
    pub delivered: bool,
    /// Instants executed (including the preprocessing instant).
    pub steps: u64,
    /// Instants from queueing to delivery, when delivered.
    pub steps_to_delivery: Option<u64>,
    /// Total robot activations.
    pub activations: u64,
    /// Activations that moved a robot.
    pub moves: u64,
    /// Faults injected.
    pub faults: u64,
    /// Retransmissions issued (hardened sessions; 0 elsewhere).
    pub retransmissions: u64,
    /// Inbox entries that did not match the sent payload (must be 0:
    /// detect-or-reject end to end).
    pub corrupt: u64,
    /// Payload bits delivered end to end (0 when undelivered, and for
    /// algorithm sessions, whose traffic `algo.bits` counts).
    pub delivered_bits: u64,
    /// FEC symbol corrections (paced protocols; hardened secondary).
    pub fec_corrected: u64,
    /// FEC blocks rejected as beyond the correction radius.
    pub fec_rejected: u64,
    /// Smallest pairwise distance over the recorded trace.
    pub min_distance: f64,
    /// Encoded trace length in bytes.
    pub trace_len: usize,
    /// FNV-1a 64 of the encoded trace.
    pub trace_hash: u64,
    /// The encoded trace itself, when `keep_trace` was set.
    pub trace: Option<Vec<u8>>,
    /// Algorithm counters, for algorithm sessions.
    pub algo: Option<AlgoOutcome>,
    /// A model violation (collision, degenerate naming), if the session
    /// died. Invariant sessions must report `None`.
    pub error: Option<String>,
}

/// What a distributed-algorithm session measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlgoOutcome {
    /// Protocol rounds executed (1 for flood and election; the highest
    /// FloodSet round any live robot reached for agreement).
    pub rounds: u64,
    /// Channel cost of every frame enqueued, in bits: 16 header bits
    /// plus 8 per payload byte (`bits(L) = 16 + 8L`).
    pub bits: u64,
    /// Engine activations consumed when the last live robot reached a
    /// terminal status, if the run terminated in budget.
    pub activations_to_decision: Option<u64>,
    /// The common decision value, when every live robot decided (flood:
    /// the initiator's coverage count; election: the winning signature;
    /// agreement: the agreed bit).
    pub decision: Option<u64>,
    /// Whether the algorithm *rejected* the configuration (e.g. a
    /// symmetric election) — terminal, but not a decision.
    pub rejected: bool,
}

impl RunReport {
    /// The report of a session whose worker closure panicked: zero work
    /// counters, no trace, and the panic message preserved as the
    /// session's `error`. Panic containment is per session — one
    /// poisoned spec fails its own `RunReport` while the rest of the
    /// batch (and the pool) carries on — and stays deterministic: the
    /// same spec panics with the same message at every worker count.
    #[must_use]
    pub fn poisoned(spec: &SessionSpec, message: &str) -> Self {
        Self {
            protocol: spec.protocol.name(),
            algorithm: spec.algorithm.map(|a| a.name()),
            schedule: spec.schedule.name(),
            plan: spec.plan.name(),
            seed: spec.seed,
            delivered: false,
            steps: 0,
            steps_to_delivery: None,
            activations: 0,
            moves: 0,
            faults: 0,
            retransmissions: 0,
            corrupt: 0,
            delivered_bits: 0,
            fec_corrected: 0,
            fec_rejected: 0,
            min_distance: f64::INFINITY,
            trace_len: 0,
            trace_hash: fnv1a64(&[]),
            trace: None,
            algo: None,
            error: Some(format!("session panicked: {message}")),
        }
    }

    fn outcome(&self) -> SessionOutcome {
        SessionOutcome {
            delivered: self.delivered,
            steps_to_delivery: self.steps_to_delivery.unwrap_or(0),
            steps: self.steps,
            activations: self.activations,
            faults: self.faults,
            retransmissions: self.retransmissions,
            corrupt: self.corrupt,
            delivered_bits: self.delivered_bits,
            fec_corrected: self.fec_corrected,
            fec_rejected: self.fec_rejected,
            algo_rounds: self.algo.map_or(0, |a| a.rounds),
            algo_bits: self.algo.map_or(0, |a| a.bits),
            algo_decided: self
                .algo
                .is_some_and(|a| a.activations_to_decision.is_some()),
            activations_to_decision: self
                .algo
                .and_then(|a| a.activations_to_decision)
                .unwrap_or(0),
        }
    }
}

/// A finished batch: per-session reports (in spec order), merged metrics,
/// and wall-clock accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// One report per session, in [`BatchSpec::sessions`] order.
    pub runs: Vec<RunReport>,
    /// Metrics aggregated across all sessions.
    pub metrics: MetricsSnapshot,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock time for the whole batch.
    pub wall: Duration,
}

impl BatchReport {
    /// Reports for one protocol.
    pub fn for_protocol<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a RunReport> {
        self.runs.iter().filter(move |r| r.protocol == name)
    }
}

/// Runs every session of `spec` on `workers` threads.
///
/// # Panics
///
/// Panics if `workers == 0`, or if a worker thread panics.
#[must_use]
pub fn run_batch(spec: &BatchSpec, workers: usize) -> BatchReport {
    run_batch_with(spec, workers, |_| {}, &CancelToken::new())
        .expect("un-cancelled batch runs to completion")
}

/// Where a batch stands, as reported to a progress observer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Progress {
    /// Sessions finished so far.
    pub completed: usize,
    /// Sessions in the batch.
    pub total: usize,
}

/// A batch stopped by its [`CancelToken`] before every session ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchInterrupted {
    /// Sessions that finished before cancellation took effect.
    pub completed: usize,
    /// Sessions the spec expanded to.
    pub total: usize,
}

impl std::fmt::Display for BatchInterrupted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "batch cancelled after {} of {} sessions",
            self.completed, self.total
        )
    }
}

impl std::error::Error for BatchInterrupted {}

/// [`run_batch`] with streaming progress and cooperative cancellation —
/// the entry point the gateway serves jobs through.
///
/// `on_progress` fires on the calling thread after every finished
/// session, with `completed` strictly increasing; an un-cancelled batch
/// fires it exactly `spec.sessions().len()` times. Cancellation is
/// checked between sessions only, so every session that *did* run is the
/// same pure function of its spec as under [`run_batch`] — a job that
/// completes despite a late cancel request is byte-identical to one that
/// was never cancelled.
///
/// # Errors
///
/// Returns [`BatchInterrupted`] when `cancel` stopped any session from
/// running.
///
/// # Panics
///
/// Panics if `workers == 0`, or if a worker thread panics.
pub fn run_batch_with<F>(
    spec: &BatchSpec,
    workers: usize,
    mut on_progress: F,
    cancel: &CancelToken,
) -> Result<BatchReport, BatchInterrupted>
where
    F: FnMut(Progress),
{
    #[allow(clippy::disallowed_methods)]
    // stiglint: allow(determinism) -- feeds only the `wall` duration of BatchReport, never traces, fingerprints, or metrics
    let start = Instant::now();
    let metrics = FleetMetrics::new();
    let sessions = spec.sessions();
    let runs = run_indexed_observed(
        sessions,
        workers,
        |session| {
            let report = run_session_contained(session);
            metrics.record_session(&report.outcome());
            report
        },
        |completed, total| on_progress(Progress { completed, total }),
        cancel,
    )
    .map_err(|i| BatchInterrupted {
        completed: i.completed,
        total: i.total,
    })?;
    Ok(BatchReport {
        runs,
        metrics: metrics.snapshot(),
        workers,
        wall: start.elapsed(),
    })
}

/// [`run_session`] with panic containment: a panic anywhere inside the
/// session (a degenerate spec tripping a constructor `expect`, an engine
/// invariant assertion) is caught and converted into
/// [`RunReport::poisoned`] instead of unwinding through the worker pool.
/// One poisoned chunk fails its own report; the batch completes.
#[must_use]
pub fn run_session_contained(spec: &SessionSpec) -> RunReport {
    catch_unwind(AssertUnwindSafe(|| run_session(spec)))
        .unwrap_or_else(|payload| RunReport::poisoned(spec, &panic_message(payload.as_ref())))
}

/// Renders a panic payload as text. `panic!`/`assert!`/`expect` payloads
/// are `&str` or `String`; both forms are deterministic for a given
/// spec, which keeps poisoned reports byte-identical across worker
/// counts.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one session to completion. Pure: same spec, same report (modulo
/// nothing — even the trace bytes are pinned by the spec).
#[must_use]
pub fn run_session(spec: &SessionSpec) -> RunReport {
    if let Some(algorithm) = spec.algorithm {
        return run_algo_session(spec, algorithm);
    }
    let paced = paced_config(spec.coding);
    match (spec.protocol, paced) {
        (ProtocolKind::Sync2, Some(cfg)) => run_pair(spec, move || Paced2::new(cfg), Paced2::inbox),
        (ProtocolKind::Sync2, None) => run_pair(spec, Sync2::new, Sync2::inbox),
        (ProtocolKind::Async2, _) => {
            run_pair(spec, || Async2::new(DriftPolicy::Diverge), Async2::inbox)
        }
        (ProtocolKind::SyncSwarmRouted, Some(cfg)) => run_swarm(
            spec,
            move || PacedSwarm::routed(cfg),
            Capabilities::identified_with_direction(),
            |e, to| label_by_id(e.ids().unwrap()).unwrap().label_of(to),
        ),
        (ProtocolKind::SyncSwarmRouted, None) => run_swarm(
            spec,
            SyncSwarm::routed,
            Capabilities::identified_with_direction(),
            |e, to| label_by_id(e.ids().unwrap()).unwrap().label_of(to),
        ),
        (ProtocolKind::SyncSwarmLex, Some(cfg)) => run_swarm(
            spec,
            move || PacedSwarm::anonymous_with_direction(cfg),
            Capabilities::anonymous_with_direction(),
            |e, to| label_by_lex(e.trace().initial()).unwrap().label_of(to),
        ),
        (ProtocolKind::SyncSwarmLex, None) => run_swarm(
            spec,
            SyncSwarm::anonymous_with_direction,
            Capabilities::anonymous_with_direction(),
            |e, to| label_by_lex(e.trace().initial()).unwrap().label_of(to),
        ),
        (ProtocolKind::SyncSwarmSec, Some(cfg)) => run_swarm(
            spec,
            move || PacedSwarm::anonymous(cfg),
            Capabilities::anonymous(),
            |e, to| label_by_sec(e.trace().initial(), 0).unwrap().label_of(to),
        ),
        (ProtocolKind::SyncSwarmSec, None) => run_swarm(
            spec,
            SyncSwarm::anonymous,
            Capabilities::anonymous(),
            |e, to| label_by_sec(e.trace().initial(), 0).unwrap().label_of(to),
        ),
        (ProtocolKind::AsyncSwarm, _) => run_swarm(
            spec,
            AsyncSwarm::anonymous,
            Capabilities::anonymous(),
            |e, to| label_by_sec(e.trace().initial(), 0).unwrap().label_of(to),
        ),
        (ProtocolKind::Hardened, _) => run_hardened(spec),
    }
}

/// Translates a [`CodingSpec`] into the paced channel's config — `None`
/// for binary, which keeps the historical protocols (and their traces)
/// untouched.
///
/// # Panics
///
/// Panics on an invalid spec (non-power-of-two levels, zero dwell);
/// `run_session_contained` turns that into a poisoned report.
fn paced_config(coding: CodingSpec) -> Option<PacedConfig> {
    let (levels, dwell, fec) = match coding {
        CodingSpec::Binary => return None,
        CodingSpec::MultiLevel { levels, dwell } => (levels, dwell, false),
        CodingSpec::Fec { levels, dwell } => (levels, dwell, true),
    };
    Some(
        PacedConfig::new(usize::from(levels), u32::from(dwell), fec)
            .expect("coding spec with valid levels and dwell"),
    )
}

/// Shared engine-driving shape, mirroring the adversarial suite: one
/// benign preprocessing instant, arm the fault plan, queue the message,
/// run to delivery or budget exhaustion. `corrupt_of` counts inbox
/// entries that differ from the sent payload — detect-or-reject demands
/// it stays 0.
///
/// Sessions run on the streaming trace path: the engine records no step
/// history (see [`run_pair`]/[`run_swarm`]); a [`TraceEncoder`] attached
/// as trace observer produces the canonical bytes incrementally, and the
/// collision margin comes from the engine's streaming minimum. Both are
/// bit-identical to the legacy record-then-encode path — the golden-trace
/// suite compares these bytes against goldens generated before the
/// rewrite.
fn drive<P, Q, D, C, FE>(
    spec: &SessionSpec,
    mut engine: Engine<P>,
    queue: Q,
    delivered: D,
    corrupt_of: C,
    fec_of: FE,
) -> RunReport
where
    P: MovementProtocol + 'static,
    Q: FnOnce(&mut Engine<P>),
    D: Fn(&Engine<P>) -> bool,
    C: Fn(&Engine<P>) -> u64,
    FE: Fn(&Engine<P>) -> (u64, u64),
{
    let encoder = Rc::new(RefCell::new(TraceEncoder::new(engine.positions())));
    let sink = Rc::clone(&encoder);
    engine.observe_trace(move |ev| sink.borrow_mut().record_event(&ev));
    let mut error = None;
    let mut satisfied = false;
    let mut steps_to_delivery = None;
    if let Err(e) = engine.step() {
        error = Some(e.to_string());
    } else {
        engine.set_fault_plan(spec.plan.plan(spec.plan_seed()));
        queue(&mut engine);
        match engine.run_until(spec.budget(), |e| delivered(e)) {
            Ok(out) => {
                satisfied = out.satisfied;
                if out.satisfied {
                    steps_to_delivery = Some(out.steps_taken);
                }
            }
            Err(e) => error = Some(e.to_string()),
        }
    }
    let corrupt = corrupt_of(&engine);
    let fec = fec_of(&engine);
    let encoder = encoder.borrow();
    finish(
        spec,
        &engine,
        &encoder,
        satisfied,
        steps_to_delivery,
        0,
        corrupt,
        fec,
        error,
    )
}

/// Builds the report from a finished engine: counters, the streamed trace
/// encoding, and the collision invariant check.
#[allow(clippy::too_many_arguments)]
fn finish<P: MovementProtocol>(
    spec: &SessionSpec,
    engine: &Engine<P>,
    encoder: &TraceEncoder,
    delivered: bool,
    steps_to_delivery: Option<u64>,
    retransmissions: u64,
    corrupt: u64,
    fec: (u64, u64),
    mut error: Option<String>,
) -> RunReport {
    let stats = engine.stats();
    let min_distance = engine.min_pairwise_distance();
    if error.is_none() && min_distance < DEFAULT_COLLISION_EPS {
        error = Some(format!(
            "collision invariant violated: min distance {min_distance}"
        ));
    }
    RunReport {
        protocol: spec.protocol.name(),
        algorithm: spec.algorithm.map(|a| a.name()),
        schedule: spec.schedule.name(),
        plan: spec.plan.name(),
        seed: spec.seed,
        delivered,
        steps: stats.steps,
        steps_to_delivery,
        activations: stats.activations,
        moves: stats.moves,
        faults: stats.faults_injected,
        retransmissions,
        corrupt,
        delivered_bits: delivered_payload_bits(spec, delivered),
        fec_corrected: fec.0,
        fec_rejected: fec.1,
        min_distance,
        trace_len: encoder.encoded_len(),
        trace_hash: encoder.fingerprint(),
        trace: spec.keep_trace.then(|| encoder.to_bytes()),
        algo: None,
        error,
    }
}

/// The payload bits a delivered session moved end to end. Algorithm
/// sessions report 0 here — their traffic is metered in `algo.bits`.
fn delivered_payload_bits(spec: &SessionSpec, delivered: bool) -> u64 {
    if delivered && spec.algorithm.is_none() {
        8 * spec.payload.len() as u64
    } else {
        0
    }
}

fn run_pair<P, F, I>(spec: &SessionSpec, make: F, inbox: I) -> RunReport
where
    P: MovementProtocol + PairProto + 'static,
    F: Fn() -> P,
    I: Fn(&P) -> &[Vec<u8>],
{
    let engine = Engine::builder()
        .positions(pair_positions())
        .protocols([make(), make()])
        // `build_faulted` arms crash-aware wrappers (`CrashFiltered`)
        // with this session's plan; plain schedules ignore the plan and
        // build exactly as before.
        .schedule(WakeAllFirst::new(
            spec.schedule
                .build_faulted(2, &spec.plan.plan(spec.plan_seed())),
        ))
        .frame_seed(spec.frame_seed())
        // The observer installed by `drive` streams the trace; keeping
        // step records in memory too would double the cost for nothing.
        .record_trace(false)
        .build()
        .expect("pair configuration is always valid");
    let payload = spec.payload.clone();
    drive(
        spec,
        engine,
        |e| e.protocol_mut(0).send_payload(&payload),
        |e| inbox(e.protocol(1)).iter().any(|m| m == &spec.payload),
        |e| {
            inbox(e.protocol(1))
                .iter()
                .filter(|m| *m != &spec.payload)
                .count() as u64
        },
        |e| {
            let (a, b) = (e.protocol(0).fec_stats(), e.protocol(1).fec_stats());
            (a.0 + b.0, a.1 + b.1)
        },
    )
}

fn run_swarm<P, F, L>(spec: &SessionSpec, make: F, caps: Capabilities, label_of: L) -> RunReport
where
    P: MovementProtocol + SwarmProto + 'static,
    F: Fn() -> P,
    L: Fn(&Engine<P>, usize) -> Option<usize>,
{
    let n = spec.cohort;
    let receiver = n - 1;
    let engine = Engine::builder()
        .positions(ring(n, 18.0))
        .protocols((0..n).map(|_| make()))
        .capabilities(caps)
        .schedule(WakeAllFirst::new(
            spec.schedule
                .build_faulted(n, &spec.plan.plan(spec.plan_seed())),
        ))
        .frame_seed(spec.frame_seed())
        // Streamed by the observer in `drive`; the trace keeps only the
        // initial configuration (the `label_by_*` closures read it).
        .record_trace(false)
        .build()
        .expect("ring configuration is always valid");
    let payload = spec.payload.clone();
    drive(
        spec,
        engine,
        |e| {
            // Receiver = engine index n−1, addressed by whatever naming
            // the capability set affords.
            let label = label_of(e, receiver).expect("receiver must be nameable");
            e.protocol_mut(0).send_to(label, &payload);
        },
        |e| {
            e.protocol(receiver)
                .payloads()
                .iter()
                .any(|p| p == &spec.payload)
        },
        |e| {
            e.protocol(receiver)
                .payloads()
                .iter()
                .filter(|p| *p != &spec.payload)
                .count() as u64
        },
        |e| {
            (0..n).fold((0, 0), |(c, r), i| {
                let (ci, ri) = e.protocol(i).fec_stats();
                (c + ci, r + ri)
            })
        },
    )
}

fn run_hardened(spec: &SessionSpec) -> RunReport {
    let plan = spec.plan.plan(spec.plan_seed());
    let policy = RetransmitPolicy::new(3, spec.budget().max(1), 2);
    let mut session = HardenedSession::with_faults(
        ring(spec.cohort, 18.0),
        spec.frame_seed(),
        policy,
        Wireless::reliable(spec.frame_seed()),
        plan,
    )
    .expect("ring configuration is always valid");
    let receiver = spec.cohort - 1;
    let (delivered, error) = match session.send(0, receiver, &spec.payload) {
        Ok(_) => (true, None),
        Err(stigmergy::CoreError::Timeout { .. }) => (false, None),
        Err(e) => (false, Some(e.to_string())),
    };
    let stats = session.stats();
    let report = session.report();
    let trace = session.network().engine().trace();
    let min_distance = trace.min_pairwise_distance();
    let bytes = encode(trace);
    let corrupt = session
        .inbox(receiver)
        .iter()
        .filter(|(_, p)| p != &spec.payload)
        .count() as u64;
    RunReport {
        protocol: spec.protocol.name(),
        algorithm: None,
        schedule: spec.schedule.name(),
        plan: spec.plan.name(),
        seed: spec.seed,
        delivered,
        steps_to_delivery: delivered.then_some(stats.movement_steps),
        steps: report.steps,
        activations: report.activations,
        moves: report.moves,
        faults: report.faults_injected,
        retransmissions: stats.retransmissions,
        corrupt,
        delivered_bits: delivered_payload_bits(spec, delivered),
        fec_corrected: stats.fec_corrected,
        fec_rejected: stats.fec_rejected,
        min_distance,
        trace_len: bytes.len(),
        trace_hash: fnv1a64(&bytes),
        trace: spec.keep_trace.then_some(bytes),
        algo: None,
        error,
    }
}

/// Queues a stack's outgoing frames on robot `i`'s protocol and returns
/// their channel cost in bits: `bits(L) = 16 + 8L` per frame (16-bit
/// header plus 8 bits per payload byte, one excursion per bit).
fn enqueue_frames(
    engine: &mut Engine<AsyncSwarm>,
    i: usize,
    labels: &[usize],
    out: Vec<Outgoing>,
) -> u64 {
    let mut bits = 0;
    for msg in out {
        bits += 16 + 8 * msg.body().len() as u64;
        match msg {
            Outgoing::Broadcast { body } => engine.protocol_mut(i).send_broadcast(&body),
            Outgoing::Unicast { peer, body } => {
                engine.protocol_mut(i).send_label(labels[peer], &body);
            }
        }
    }
    bits
}

/// Drives one distributed-algorithm session over the async-swarm
/// movement channel.
///
/// The driver is the glue `DESIGN.md` §13 specifies: it builds each
/// robot's [`NodeStack`], translates engine indices into each robot's
/// local home indices, pumps delivered inbox frames into the stacks, and
/// acts as the perfect failure detector — when the fault plan's
/// crash-stop instant has passed, every surviving robot gets `suspect`
/// (unwedging the §4.2 implicit-ack rule) and `on_crash` (unwedging the
/// algorithm), in fixed robot order. The run ends when every live
/// robot's stack is terminal, or the budget expires.
#[allow(clippy::too_many_lines)]
fn run_algo_session(spec: &SessionSpec, algorithm: AlgorithmSpec) -> RunReport {
    let n = spec.cohort;
    assert!(
        (2..=64).contains(&n),
        "algorithm sessions need a cohort in 2..=64, got {n}"
    );
    if let AlgorithmSpec::Flood { initiator } = algorithm {
        assert!(
            initiator < n,
            "flood initiator {initiator} outside cohort {n}"
        );
    }
    let plan = spec.plan.plan(spec.plan_seed());
    let mut engine = Engine::builder()
        .positions(ring(n, 18.0))
        .protocols((0..n).map(|_| AsyncSwarm::anonymous()))
        .capabilities(Capabilities::anonymous())
        .schedule(WakeAllFirst::new(spec.schedule.build_faulted(n, &plan)))
        .frame_seed(spec.frame_seed())
        .record_trace(false)
        .build()
        .expect("ring configuration is always valid");
    let encoder = Rc::new(RefCell::new(TraceEncoder::new(engine.positions())));
    let sink = Rc::clone(&encoder);
    engine.observe_trace(move |ev| sink.borrow_mut().record_event(&ev));

    let mut error: Option<String> = None;
    let mut algo = AlgoOutcome {
        rounds: 0,
        bits: 0,
        activations_to_decision: None,
        decision: None,
        rejected: false,
    };
    let mut delivered = false;
    let mut steps_to_delivery = None;
    let mut corrupt = 0u64;

    'run: {
        // One benign preprocessing instant (geometries build), then arm
        // the fault plan — the same shape as `drive`.
        if let Err(e) = engine.step() {
            error = Some(e.to_string());
            break 'run;
        }
        engine.set_fault_plan(plan.clone());

        // Identity maps: `home[i][j]` is engine robot `j` as a home index
        // of robot `i`'s geometry; `labels[i][h]` addresses home `h` for
        // unicast sends from `i`.
        let initial: Vec<Point> = engine.trace().initial().to_vec();
        let mut home = vec![vec![0usize; n]; n];
        let mut labels = vec![vec![0usize; n]; n];
        for i in 0..n {
            let Some(g) = engine.protocol(i).geometry() else {
                error = Some(format!("robot {i}: degenerate configuration, no geometry"));
                break 'run;
            };
            for (j, &world) in initial.iter().enumerate() {
                if i == j {
                    continue; // home[i][i] = 0, self
                }
                let local = engine.frames()[i].to_local(world);
                let Some(h) = (0..g.cohort()).find(|&h| g.home(h).approx_eq(local)) else {
                    error = Some(format!("robot {i}: robot {j} not among its homes"));
                    break 'run;
                };
                home[i][j] = h;
            }
            for (h, label) in labels[i].iter_mut().enumerate() {
                *label = g.label_for(0, h);
            }
        }

        // One stack per robot. All robots must agree on `max_rounds`; it
        // derives from the plan's crash budget (`f + 1` FloodSet rounds).
        let max_rounds = plan.crash_stops().len() as u64 + 1;
        let proto_id = match algorithm {
            AlgorithmSpec::Flood { .. } => flood::PROTOCOL_ID,
            AlgorithmSpec::Election => election::PROTOCOL_ID,
            AlgorithmSpec::Agreement { .. } => agreement::PROTOCOL_ID,
        };
        let mut stacks: Vec<NodeStack> = Vec::with_capacity(n);
        for (i, home_i) in home.iter().enumerate() {
            let session: Box<dyn stigmergy_algo::Session> = match algorithm {
                AlgorithmSpec::Flood { initiator } if i == initiator => {
                    Box::new(FloodSession::initiator(spec.payload.clone(), n))
                }
                AlgorithmSpec::Flood { initiator } => {
                    Box::new(FloodSession::follower(home_i[initiator]))
                }
                AlgorithmSpec::Election => {
                    // The election signature is similarity-invariant, so
                    // computing it from the world-frame snapshot equals
                    // each robot's own local-frame computation. Truncation
                    // to the 32-bit wire width preserves symmetry ties.
                    match election_signature(&initial, i) {
                        Ok(sig) => Box::new(ElectionSession::new(sig as u32, n)),
                        Err(e) => {
                            error = Some(format!("election signature: {e}"));
                            break 'run;
                        }
                    }
                }
                AlgorithmSpec::Agreement { inputs } => {
                    Box::new(AgreementSession::new((inputs >> i) & 1 == 1, n, max_rounds))
                }
            };
            let mut stack = NodeStack::new();
            stack.register(proto_id, session);
            stacks.push(stack);
        }
        for i in 0..n {
            let out = stacks[i].start();
            algo.bits += enqueue_frames(&mut engine, i, &labels[i], out);
        }

        // The pump loop: step, strike newly-crashed robots, route fresh
        // inbox frames, check termination.
        let crash_list: Vec<(usize, u64)> = {
            let mut list = plan.crash_stops().to_vec();
            list.sort_unstable_by_key(|&(robot, time)| (time, robot));
            list
        };
        let mut live = vec![true; n];
        let mut notified = vec![false; n];
        let mut cursor = vec![0usize; n];
        let budget = spec.budget();
        let mut taken = 0u64;
        while taken < budget {
            if let Err(e) = engine.step() {
                error = Some(e.to_string());
                break 'run;
            }
            taken += 1;
            let now = engine.stats().steps;
            for &(robot, when) in &crash_list {
                // `steps` counts executed instants, so `now > when` means
                // instant `when` — where the engine froze the robot — has
                // already run: the detector never accuses a live robot.
                if notified[robot] || now <= when {
                    continue;
                }
                notified[robot] = true;
                live[robot] = false;
                for i in 0..n {
                    if i == robot || !live[i] {
                        continue;
                    }
                    let h = home[i][robot];
                    engine.protocol_mut(i).suspect(h);
                    let out = stacks[i].on_crash(h);
                    algo.bits += enqueue_frames(&mut engine, i, &labels[i], out);
                }
            }
            for i in 0..n {
                if !live[i] {
                    continue;
                }
                let fresh: Vec<(usize, Vec<u8>)> = engine.protocol(i).inbox()[cursor[i]..]
                    .iter()
                    .map(|m| (m.sender, m.payload.clone()))
                    .collect();
                cursor[i] += fresh.len();
                for (sender, payload) in fresh {
                    let out = stacks[i].on_frame(sender, &payload);
                    algo.bits += enqueue_frames(&mut engine, i, &labels[i], out);
                }
            }
            if (0..n)
                .filter(|&i| live[i])
                .all(|i| stacks[i].all_terminal())
            {
                steps_to_delivery = Some(taken);
                algo.activations_to_decision = Some(engine.stats().activations);
                break;
            }
        }

        if algo.activations_to_decision.is_none() {
            break 'run; // timed out: counters stand, no decision
        }

        // Decision extraction. Frames that failed demux count as corrupt
        // (a garbled frame cannot carry a registered protocol id).
        let mut statuses = Vec::with_capacity(n);
        for (i, stack) in stacks.iter().enumerate() {
            corrupt += stack.unroutable();
            if !live[i] {
                continue;
            }
            algo.rounds = algo.rounds.max(stack.rounds_of(proto_id).unwrap_or(1));
            statuses.push(stack.status_of(proto_id).expect("session registered"));
        }
        algo.rejected = statuses.iter().any(|s| matches!(s, Status::Rejected(_)));
        match algorithm {
            AlgorithmSpec::Flood { initiator } => {
                // The initiator's coverage count is the session decision
                // (followers decide 1). A crashed initiator leaves the
                // followers rejecting: terminal, but no decision.
                if live[initiator] {
                    algo.decision = stacks[initiator]
                        .status_of(proto_id)
                        .and_then(|s| s.decision());
                }
            }
            AlgorithmSpec::Election | AlgorithmSpec::Agreement { .. } => {
                // Every live robot must land on the same terminal status —
                // the agreement property itself for FloodSet, and the
                // common-knowledge property for election (identical
                // electorates see the same unique-or-tied minimum).
                let first = statuses.first().copied();
                if statuses.iter().any(|s| Some(*s) != first) {
                    error = Some(format!(
                        "split decision: live robots disagree ({statuses:?})"
                    ));
                } else {
                    algo.decision = first.and_then(|s| s.decision());
                }
            }
        }
        // "Delivered" for an algorithm session = terminated with a
        // consistent decision (a rejection terminates but delivers no
        // decision, mirroring undelivered payloads).
        delivered = error.is_none() && algo.decision.is_some();
        if !delivered {
            steps_to_delivery = None;
        }
    }

    let encoder = encoder.borrow();
    let mut report = finish(
        spec,
        &engine,
        &encoder,
        delivered,
        steps_to_delivery,
        0,
        corrupt,
        (0, 0),
        error,
    );
    report.algo = Some(algo);
    report
}

/// Uniform access to the pair protocols' send queue.
trait PairProto {
    fn send_payload(&mut self, payload: &[u8]);
    /// `(corrected, rejected)` FEC counters; protocols without a coded
    /// channel report zeros.
    fn fec_stats(&self) -> (u64, u64) {
        (0, 0)
    }
}

impl PairProto for Sync2 {
    fn send_payload(&mut self, payload: &[u8]) {
        self.send(payload);
    }
}

impl PairProto for Async2 {
    fn send_payload(&mut self, payload: &[u8]) {
        self.send(payload);
    }
}

impl PairProto for Paced2 {
    fn send_payload(&mut self, payload: &[u8]) {
        self.send(payload);
    }

    fn fec_stats(&self) -> (u64, u64) {
        (self.fec_corrected(), self.fec_rejected())
    }
}

/// Uniform access to the swarm protocols' queues and inboxes.
trait SwarmProto {
    fn send_to(&mut self, label: usize, payload: &[u8]);
    fn payloads(&self) -> Vec<Vec<u8>>;
    /// `(corrected, rejected)` FEC counters; protocols without a coded
    /// channel report zeros.
    fn fec_stats(&self) -> (u64, u64) {
        (0, 0)
    }
}

impl SwarmProto for SyncSwarm {
    fn send_to(&mut self, label: usize, payload: &[u8]) {
        self.send_label(label, payload);
    }

    fn payloads(&self) -> Vec<Vec<u8>> {
        self.inbox().iter().map(|m| m.payload.clone()).collect()
    }
}

impl SwarmProto for AsyncSwarm {
    fn send_to(&mut self, label: usize, payload: &[u8]) {
        self.send_label(label, payload);
    }

    fn payloads(&self) -> Vec<Vec<u8>> {
        self.inbox().iter().map(|m| m.payload.clone()).collect()
    }
}

impl SwarmProto for PacedSwarm {
    fn send_to(&mut self, label: usize, payload: &[u8]) {
        self.send_label(label, payload);
    }

    fn payloads(&self) -> Vec<Vec<u8>> {
        self.inbox().iter().map(|m| m.payload.clone()).collect()
    }

    fn fec_stats(&self) -> (u64, u64) {
        (self.fec_corrected(), self.fec_rejected())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> BatchSpec {
        BatchSpec {
            budget_cap: Some(1_500),
            keep_traces: true,
            ..BatchSpec::conformance_matrix(vec![0, 1])
        }
    }

    #[test]
    fn sessions_expand_the_full_cross_product() {
        let spec = tiny_spec();
        let sessions = spec.sessions();
        assert_eq!(sessions.len(), 6 * 3 * 3 * 2);
        // Protocol-major order: first block is all sync2.
        assert!(sessions[..18]
            .iter()
            .all(|s| s.protocol == ProtocolKind::Sync2));
        assert_eq!(sessions[0].seed, 0);
        assert_eq!(sessions[1].seed, 1);
    }

    #[test]
    fn seed_zero_reproduces_historical_frame_seeds() {
        let spec = SessionSpec {
            protocol: ProtocolKind::Sync2,
            algorithm: None,
            schedule: ScheduleSpec::Synchronous,
            plan: FaultSpec::Benign,
            seed: 0,
            cohort: 3,
            payload: DEFAULT_PAYLOAD.to_vec(),
            budget_cap: None,
            keep_trace: false,
            coding: CodingSpec::Binary,
        };
        assert_eq!(spec.frame_seed(), 0xFA01);
        assert_eq!(spec.plan_seed(), 0xA1);
    }

    #[test]
    fn crash_plans_get_capped_budgets() {
        let mut spec = tiny_spec().sessions().pop().unwrap();
        spec.protocol = ProtocolKind::AsyncSwarm;
        spec.budget_cap = None;
        spec.plan = FaultSpec::Crash {
            robot: 1,
            time: 35,
            delta: 0.5,
            prob: 0.25,
        };
        assert_eq!(spec.budget(), 20_000);
        spec.plan = FaultSpec::Benign;
        assert_eq!(spec.budget(), 800_000);
        spec.budget_cap = Some(100);
        assert_eq!(spec.budget(), 100);
    }

    #[test]
    fn single_session_is_reproducible() {
        let spec = SessionSpec {
            protocol: ProtocolKind::SyncSwarmLex,
            algorithm: None,
            schedule: ScheduleSpec::Bursty {
                seed: 0x0AD5_CEDD,
                burst_len: 3,
                lull_len: 5,
            },
            plan: FaultSpec::NonRigid {
                delta: 0.35,
                prob: 0.5,
            },
            seed: 7,
            cohort: 3,
            payload: DEFAULT_PAYLOAD.to_vec(),
            budget_cap: Some(2_000),
            keep_trace: true,
            coding: CodingSpec::Binary,
        };
        let a = run_session(&spec);
        let b = run_session(&spec);
        assert_eq!(a, b);
        assert!(a.trace.is_some());
        assert!(a.error.is_none());
        assert!(a.faults > 0, "non-rigid plan at p=0.5 must fire");
    }

    #[test]
    fn batch_report_aggregates_all_sessions() {
        let spec = BatchSpec {
            protocols: vec![ProtocolKind::Sync2, ProtocolKind::SyncSwarmLex],
            algorithms: vec![],
            schedules: vec![ScheduleSpec::WorstCaseFair { max_gap: 6 }],
            plans: vec![FaultSpec::Benign],
            seeds: vec![0, 1, 2],
            cohort: 3,
            payload: DEFAULT_PAYLOAD.to_vec(),
            budget_cap: Some(3_000),
            keep_traces: false,
            coding: CodingSpec::Binary,
        };
        let report = run_batch(&spec, 2);
        assert_eq!(report.runs.len(), 6);
        assert_eq!(report.metrics.sessions, 6);
        assert_eq!(report.workers, 2);
        assert_eq!(
            report.metrics.steps,
            report.runs.iter().map(|r| r.steps).sum::<u64>()
        );
        assert_eq!(report.for_protocol("sync2").count(), 3);
        assert!(report.runs.iter().all(|r| r.error.is_none()));
        assert!(report.runs.iter().all(|r| r.trace.is_none()));
        assert!(report.runs.iter().all(|r| r.trace_len > 0));
    }

    #[test]
    fn observed_batch_equals_plain_batch_and_streams_progress() {
        let spec = BatchSpec {
            budget_cap: Some(500),
            ..BatchSpec::conformance_matrix(vec![0])
        };
        let plain = run_batch(&spec, 2);
        let mut progress = Vec::new();
        let observed = run_batch_with(&spec, 2, |p| progress.push(p), &CancelToken::new()).unwrap();
        assert_eq!(plain.runs, observed.runs);
        assert_eq!(plain.metrics, observed.metrics);
        let total = spec.sessions().len();
        assert_eq!(progress.len(), total, "one event per session");
        assert_eq!(
            progress.last(),
            Some(&Progress {
                completed: total,
                total
            })
        );
        assert!(progress.windows(2).all(|w| w[0].completed < w[1].completed));
    }

    #[test]
    fn cancelled_batch_reports_interruption() {
        let spec = BatchSpec {
            budget_cap: Some(500),
            ..BatchSpec::conformance_matrix(vec![0])
        };
        let token = CancelToken::new();
        token.cancel();
        let err = run_batch_with(&spec, 2, |_| {}, &token).expect_err("pre-cancelled");
        assert_eq!(err.completed, 0);
        assert_eq!(err.total, spec.sessions().len());
        assert!(err.to_string().contains("cancelled after 0 of"));
    }

    #[test]
    fn wire_codes_round_trip_and_cover_every_protocol() {
        let mut all = CONFORMANCE.to_vec();
        all.push(ProtocolKind::Hardened);
        for kind in all {
            assert_eq!(ProtocolKind::from_wire_code(kind.wire_code()), Some(kind));
        }
        assert_eq!(ProtocolKind::from_wire_code(7), None);
    }

    #[test]
    fn poisoned_session_is_contained_and_deterministic() {
        // cohort = 0 trips a constructor invariant inside run_session
        // (empty ring) in every build profile; the containment wrapper
        // must turn the panic into a failed report, not an unwind.
        let spec = SessionSpec {
            protocol: ProtocolKind::SyncSwarmSec,
            algorithm: None,
            schedule: ScheduleSpec::Synchronous,
            plan: FaultSpec::Benign,
            seed: 0,
            cohort: 0,
            payload: DEFAULT_PAYLOAD.to_vec(),
            budget_cap: None,
            keep_trace: false,
            coding: CodingSpec::Binary,
        };
        let report = run_session_contained(&spec);
        let error = report.error.as_deref().expect("poisoned report errors");
        assert!(error.starts_with("session panicked:"), "{error}");
        assert!(!report.delivered);
        assert_eq!(report.steps, 0);
        assert_eq!(report.trace_len, 0);
        assert_eq!(
            run_session_contained(&spec),
            report,
            "poisoned reports replay byte-identically"
        );
    }

    #[test]
    fn panic_messages_render_str_string_and_other() {
        let a: Box<dyn std::any::Any + Send> = Box::new("boom");
        let b: Box<dyn std::any::Any + Send> = Box::new(String::from("owned boom"));
        let c: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert_eq!(panic_message(a.as_ref()), "boom");
        assert_eq!(panic_message(b.as_ref()), "owned boom");
        assert_eq!(panic_message(c.as_ref()), "non-string panic payload");
    }

    #[test]
    fn hardened_sessions_deliver_and_count_retransmissions() {
        let spec = SessionSpec {
            protocol: ProtocolKind::Hardened,
            algorithm: None,
            schedule: ScheduleSpec::Synchronous, // unused by hardened
            plan: FaultSpec::Benign,
            seed: 3,
            cohort: 3,
            payload: b"hardened".to_vec(),
            budget_cap: None,
            keep_trace: false,
            coding: CodingSpec::Binary,
        };
        let report = run_session(&spec);
        assert!(report.delivered);
        assert!(report.error.is_none());
        assert_eq!(report.corrupt, 0);
        assert_eq!(run_session(&spec), report, "hardened runs replay too");
    }

    fn paced_spec(coding: CodingSpec) -> SessionSpec {
        SessionSpec {
            protocol: ProtocolKind::Sync2,
            algorithm: None,
            schedule: ScheduleSpec::LaggingReceiver { max_gap: 8 },
            plan: FaultSpec::NonRigid {
                delta: 0.35,
                prob: 0.5,
            },
            seed: 0,
            cohort: 3,
            payload: b"adv".to_vec(),
            budget_cap: None,
            keep_trace: false,
            coding,
        }
    }

    #[test]
    fn paced_sync_pair_delivers_where_legacy_times_out() {
        // The adversarial cell that zeroes every legacy sync protocol:
        // lagging receiver plus non-rigid movement. The paced coding
        // layer's dwell/terminator framing survives it.
        let legacy = run_session(&paced_spec(CodingSpec::Binary));
        assert!(!legacy.delivered, "legacy sync2 should still time out");
        let paced = run_session(&paced_spec(CodingSpec::Fec {
            levels: 8,
            dwell: 10,
        }));
        assert!(paced.delivered, "paced sync2 must get the payload through");
        assert!(paced.error.is_none());
        assert_eq!(paced.corrupt, 0, "detect-or-reject holds under coding");
        assert_eq!(paced.delivered_bits, 24, "3 payload bytes delivered");
    }

    #[test]
    fn paced_sessions_replay_byte_identically() {
        let spec = SessionSpec {
            keep_trace: true,
            ..paced_spec(CodingSpec::MultiLevel {
                levels: 4,
                dwell: 10,
            })
        };
        let a = run_session(&spec);
        let b = run_session(&spec);
        assert_eq!(a, b, "paced runs replay byte-identically");
        assert!(a.trace.is_some());
    }

    #[test]
    fn invalid_coding_spec_is_poisoned_not_fatal() {
        // 3 levels is not a power of two: `PacedConfig::new` rejects it,
        // and the containment wrapper turns the panic into a report.
        let spec = paced_spec(CodingSpec::MultiLevel {
            levels: 3,
            dwell: 10,
        });
        let report = run_session_contained(&spec);
        let error = report.error.as_deref().expect("poisoned report errors");
        assert!(error.starts_with("session panicked:"), "{error}");
        assert!(!report.delivered);
    }

    #[test]
    fn worker_count_is_invisible_for_coded_batches() {
        // A k>2 batch must fingerprint identically whether one worker or
        // four drive it — the steal schedule cannot leak into coded runs.
        let spec = BatchSpec {
            protocols: vec![ProtocolKind::Sync2, ProtocolKind::SyncSwarmLex],
            algorithms: vec![],
            schedules: vec![ScheduleSpec::LaggingReceiver { max_gap: 8 }],
            plans: vec![FaultSpec::Dropout { prob: 0.1 }],
            seeds: vec![0, 1],
            cohort: 3,
            payload: b"adv".to_vec(),
            budget_cap: Some(50_000),
            keep_traces: false,
            coding: CodingSpec::Fec {
                levels: 8,
                dwell: 10,
            },
        };
        let serial = run_batch(&spec, 1);
        let pooled = run_batch(&spec, 4);
        assert_eq!(serial.runs, pooled.runs);
        assert_eq!(serial.metrics, pooled.metrics);
        assert!(serial
            .runs
            .iter()
            .zip(pooled.runs.iter())
            .all(|(a, b)| a.trace_hash == b.trace_hash));
    }

    fn algo_spec(algorithm: AlgorithmSpec, plan: FaultSpec) -> SessionSpec {
        SessionSpec {
            protocol: ProtocolKind::AsyncSwarm,
            algorithm: Some(algorithm),
            schedule: ScheduleSpec::WorstCaseFair { max_gap: 6 },
            plan,
            seed: 1,
            cohort: 3,
            payload: b"adv".to_vec(),
            budget_cap: None,
            keep_trace: false,
            coding: CodingSpec::Binary,
        }
    }

    #[test]
    fn algorithm_matrix_expands_algorithm_sessions() {
        let spec = BatchSpec::algorithm_matrix(vec![0, 1]);
        let sessions = spec.sessions();
        assert_eq!(sessions.len(), 3 * 2 * 2 * 2);
        assert!(sessions
            .iter()
            .all(|s| s.protocol == ProtocolKind::AsyncSwarm && s.algorithm.is_some()));
        // Algorithm-major order, same inner order as protocol blocks.
        assert!(sessions[..8]
            .iter()
            .all(|s| matches!(s.algorithm, Some(AlgorithmSpec::Flood { initiator: 0 }))));
    }

    #[test]
    fn algorithm_budgets_are_exempt_from_the_crash_cap() {
        let crash = FaultSpec::Crash {
            robot: 1,
            time: 35,
            delta: 0.5,
            prob: 0.25,
        };
        let spec = algo_spec(AlgorithmSpec::Election, crash);
        assert_eq!(spec.budget(), 900_000, "crash cap must not strangle algos");
        assert_eq!(
            algo_spec(AlgorithmSpec::Flood { initiator: 0 }, FaultSpec::Benign).budget(),
            600_000
        );
        assert_eq!(
            algo_spec(AlgorithmSpec::Agreement { inputs: 0 }, FaultSpec::Benign).budget(),
            1_200_000
        );
    }

    #[test]
    fn flood_session_covers_the_cohort_and_reproduces() {
        let spec = algo_spec(AlgorithmSpec::Flood { initiator: 0 }, FaultSpec::Benign);
        let report = run_session(&spec);
        assert!(report.error.is_none(), "{:?}", report.error);
        assert!(report.delivered);
        let algo = report.algo.as_ref().expect("algo outcome populated");
        assert_eq!(algo.decision, Some(3), "full coverage of a 3-cohort");
        assert!(!algo.rejected);
        assert!(algo.bits > 0);
        assert!(algo.activations_to_decision.is_some());
        assert_eq!(
            run_session(&spec),
            report,
            "algo runs replay byte-identically"
        );
    }

    #[test]
    fn election_session_elects_one_leader() {
        let spec = algo_spec(
            AlgorithmSpec::Election,
            FaultSpec::NonRigid {
                delta: 0.35,
                prob: 0.5,
            },
        );
        let report = run_session(&spec);
        assert!(report.error.is_none(), "{:?}", report.error);
        assert!(report.delivered);
        let algo = report.algo.as_ref().expect("algo outcome populated");
        assert!(
            algo.decision.is_some(),
            "ring cohort has distinct signatures"
        );
        assert!(!algo.rejected);
    }

    #[test]
    fn agreement_decides_among_survivors_of_a_crash() {
        let crash = FaultSpec::Crash {
            robot: 1,
            time: 35,
            delta: 0.5,
            prob: 0.25,
        };
        let spec = SessionSpec {
            schedule: ScheduleSpec::CrashFiltered {
                inner: Box::new(ScheduleSpec::WorstCaseFair { max_gap: 6 }),
            },
            ..algo_spec(AlgorithmSpec::Agreement { inputs: 0b101 }, crash)
        };
        let report = run_session(&spec);
        assert!(report.error.is_none(), "{:?}", report.error);
        assert!(report.delivered);
        let algo = report.algo.as_ref().expect("algo outcome populated");
        // Robot 1 (input 0) crash-stops before its first vote frame can
        // complete, so the AND fold over the survivors (inputs 1, 1)
        // decides `true`.
        assert_eq!(algo.decision, Some(1));
        assert!(algo.rounds >= 1);
        assert_eq!(run_session(&spec), report);
    }
}
