//! Parallel batch runtime for protocol sweeps.
//!
//! The paper's protocols are deterministic given a schedule and a seed,
//! but the simulator historically executed every session serially. This
//! crate shards a [`BatchSpec`] — protocols × schedules × fault plans ×
//! seeds — across a hand-rolled `std::thread` worker pool and collects
//! one [`RunReport`] per session plus a merged [`MetricsSnapshot`],
//! while *provably preserving determinism*: the same batch at
//! `workers = 1` and `workers = N` yields identical per-seed traces
//! (byte-for-byte, under the canonical [`trace_codec`]) and identical
//! metrics totals. The regression suite in `tests/` asserts exactly
//! that.
//!
//! No external dependencies: the pool is a lock-free work-stealing
//! scheduler — per-worker index-range shards packed into `AtomicU64`s,
//! owners popping from the front, dry workers stealing back half-ranges
//! (rayon is unavailable under the vendored-offline constraint) —
//! metrics are `AtomicU64` counters and fixed-bucket histograms, and the
//! trace codec writes IEEE-754 bit patterns directly.
//!
//! # Example
//!
//! ```
//! use stigmergy_fleet::{BatchSpec, run_batch};
//!
//! let spec = BatchSpec {
//!     budget_cap: Some(500),
//!     ..BatchSpec::conformance_matrix(vec![0, 1])
//! };
//! let serial = run_batch(&spec, 1);
//! let parallel = run_batch(&spec, 4);
//! assert_eq!(serial.runs, parallel.runs);
//! assert_eq!(serial.metrics, parallel.metrics);
//! ```

pub mod batch;
pub mod metrics;
pub mod pool;
pub mod trace_codec;

pub use batch::{
    ring, run_batch, run_batch_with, run_session, run_session_contained, AlgoOutcome,
    BatchInterrupted, BatchReport, BatchSpec, Progress, ProtocolKind, RunReport, SessionSpec,
    CONFORMANCE, DEFAULT_PAYLOAD,
};
pub use metrics::{FleetMetrics, Histogram, HistogramSnapshot, MetricsSnapshot, SessionOutcome};
pub use pool::{run_indexed, run_indexed_observed, CancelToken, Interrupted, StealScheduler};
pub use trace_codec::{encode, encode_hex, fnv1a64, fnv1a64_update, to_hex, TraceEncoder};
