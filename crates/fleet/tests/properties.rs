//! Property tests for the metrics layer: bucket counts always sum to the
//! sample count, and merging per-worker snapshots is indistinguishable
//! from recording serially into one sink — the algebra the fleet's
//! workers-don't-matter guarantee rests on.

use proptest::prelude::*;
use stigmergy_fleet::{FleetMetrics, Histogram, MetricsSnapshot, SessionOutcome};

/// Strategy: a small strictly increasing bound vector.
fn bounds_strategy() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(1u64..500, 1..8).prop_map(|mut raw| {
        raw.sort_unstable();
        raw.dedup();
        raw
    })
}

fn outcome_strategy() -> impl Strategy<Value = SessionOutcome> {
    (
        (
            any::<bool>(),
            0u64..2_000_000,
            0u64..2_000_000,
            0u64..4_000_000,
            0u64..300,
            0u64..10,
        ),
        (0u64..2, 0u64..64, 0u64..8, 0u64..8),
        (0u64..20, 0u64..5_000, any::<bool>(), 0u64..4_000_000),
    )
        .prop_map(
            |(
                (delivered, steps_to_delivery, steps, activations, faults, retransmissions),
                (corrupt, delivered_bits, fec_corrected, fec_rejected),
                (algo_rounds, algo_bits, algo_decided, activations_to_decision),
            )| {
                SessionOutcome {
                    delivered,
                    steps_to_delivery,
                    steps,
                    activations,
                    faults,
                    retransmissions,
                    corrupt,
                    delivered_bits,
                    fec_corrected,
                    fec_rejected,
                    algo_rounds,
                    algo_bits,
                    algo_decided,
                    activations_to_decision,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn histogram_bins_sum_to_sample_count(
        bounds in bounds_strategy(),
        samples in prop::collection::vec(0u64..1_000, 0..200),
    ) {
        let h = Histogram::new(&bounds);
        for &s in &samples {
            h.record(s);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.bins.iter().sum::<u64>(), samples.len() as u64);
        prop_assert_eq!(snap.count, samples.len() as u64);
        prop_assert_eq!(snap.sum, samples.iter().sum::<u64>());
        prop_assert_eq!(snap.bins.len(), snap.bounds.len() + 1);
    }

    #[test]
    fn histogram_bucketing_is_order_independent(
        bounds in bounds_strategy(),
        samples in prop::collection::vec(0u64..1_000, 1..100),
    ) {
        let forward = Histogram::new(&bounds);
        for &s in &samples {
            forward.record(s);
        }
        let backward = Histogram::new(&bounds);
        for &s in samples.iter().rev() {
            backward.record(s);
        }
        prop_assert_eq!(forward.snapshot(), backward.snapshot());
    }

    #[test]
    fn merged_worker_snapshots_equal_serial_snapshot(
        outcomes in prop::collection::vec(outcome_strategy(), 0..120),
        workers in 1usize..6,
    ) {
        // Serial: one sink sees every outcome.
        let serial = FleetMetrics::new();
        for o in &outcomes {
            serial.record_session(o);
        }
        // Sharded: round-robin outcomes over per-worker sinks, then merge.
        let shards: Vec<FleetMetrics> = (0..workers).map(|_| FleetMetrics::new()).collect();
        for (i, o) in outcomes.iter().enumerate() {
            shards[i % workers].record_session(o);
        }
        let mut merged = MetricsSnapshot::empty();
        for shard in &shards {
            merged.merge(&shard.snapshot());
        }
        prop_assert_eq!(merged, serial.snapshot());
    }

    #[test]
    fn snapshot_invariants_hold_for_any_stream(
        outcomes in prop::collection::vec(outcome_strategy(), 0..120),
    ) {
        let sink = FleetMetrics::new();
        for o in &outcomes {
            sink.record_session(o);
        }
        let s = sink.snapshot();
        prop_assert_eq!(s.sessions, outcomes.len() as u64);
        prop_assert_eq!(s.delivered + s.timed_out, s.sessions);
        // steps-to-delivery is only recorded for delivered sessions.
        prop_assert_eq!(s.steps_to_delivery.count, s.delivered);
        // The per-session histograms see every session.
        prop_assert_eq!(s.activations_per_session.count, s.sessions);
        prop_assert_eq!(s.faults_per_session.count, s.sessions);
        prop_assert_eq!(s.retransmissions_per_session.count, s.sessions);
        // Histogram sums equal the scalar totals.
        prop_assert_eq!(s.activations_per_session.sum, s.activations);
        prop_assert_eq!(s.faults_per_session.sum, s.faults);
        prop_assert_eq!(s.retransmissions_per_session.sum, s.retransmissions);
    }

    #[test]
    fn merge_is_associative_over_three_shards(
        outcomes in prop::collection::vec(outcome_strategy(), 3..60),
    ) {
        let shards: Vec<FleetMetrics> = (0..3).map(|_| FleetMetrics::new()).collect();
        for (i, o) in outcomes.iter().enumerate() {
            shards[i % 3].record_session(o);
        }
        let [a, b, c] = [
            shards[0].snapshot(),
            shards[1].snapshot(),
            shards[2].snapshot(),
        ];
        // (a + b) + c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a + (b + c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn json_equality_mirrors_snapshot_equality(
        outcomes in prop::collection::vec(outcome_strategy(), 0..40),
    ) {
        let a = FleetMetrics::new();
        let b = FleetMetrics::new();
        for o in &outcomes {
            a.record_session(o);
            b.record_session(o);
        }
        let (sa, sb) = (a.snapshot(), b.snapshot());
        prop_assert_eq!(&sa, &sb);
        prop_assert_eq!(sa.to_json(), sb.to_json());
    }
}
