//! Loopback integration tests for the gateway: the serving layer's
//! contract, end to end over real TCP sockets.
//!
//! What these tests pin down:
//!
//! * **determinism through the wire** — a job served by the gateway at
//!   `workers = 1` and `workers = N` returns the same fingerprints and
//!   the same metrics JSON as a direct `run_batch` of the same spec;
//! * **admission control** — the queue bound is enforced with a typed
//!   `QueueFull` rejection, never unbounded buffering;
//! * **cancellation and deadlines** — queued jobs can be removed, and
//!   an expired deadline fails the job with the typed reason;
//! * **graceful shutdown** — a drain completes every accepted job while
//!   rejecting new ones, and the idle metrics partition
//!   (`accepted == completed + cancelled + deadline_expired`) holds;
//! * **concurrency** — several clients with overlapping sweeps each get
//!   their own correct, deterministic answer.

use stigmergy_fleet::{run_batch, BatchSpec};
use stigmergy_gateway::{
    CancelState, Client, FailReason, Gateway, GatewayConfig, GatewayError, JobRequest, RejectReason,
};

fn capped_spec(seeds: Vec<u64>) -> BatchSpec {
    BatchSpec {
        budget_cap: Some(1_000),
        ..BatchSpec::conformance_matrix(seeds)
    }
}

fn request(seeds: Vec<u64>, workers: u64) -> JobRequest {
    JobRequest {
        spec: capped_spec(seeds),
        workers,
        deadline_ms: 0,
    }
}

fn loopback(config: GatewayConfig) -> (Gateway, std::net::SocketAddr) {
    let gateway = Gateway::bind(("127.0.0.1", 0), config).expect("loopback bind");
    let addr = gateway.local_addr();
    (gateway, addr)
}

#[test]
fn served_job_matches_direct_run_batch_at_any_worker_count() {
    let spec = capped_spec(vec![0, 1]);
    let direct = run_batch(&spec, 1);
    let fingerprints: Vec<u64> = direct.runs.iter().map(|r| r.trace_hash).collect();
    let metrics_json = direct.metrics.to_json();

    let (gateway, addr) = loopback(GatewayConfig::default());
    for workers in [1u64, 4] {
        let mut client = Client::connect(addr).expect("connect");
        let mut progress = Vec::new();
        let result = client
            .submit_and_wait(
                &JobRequest {
                    spec: spec.clone(),
                    workers,
                    deadline_ms: 0,
                },
                |completed, total| progress.push((completed, total)),
            )
            .expect("job completes");
        assert_eq!(result.fingerprints, fingerprints, "workers={workers}");
        assert_eq!(result.metrics_json, metrics_json, "workers={workers}");
        // One progress frame per finished session, monotone, ending full.
        let total = direct.runs.len() as u64;
        assert_eq!(progress.len() as u64, total, "workers={workers}");
        assert!(progress.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(progress.last(), Some(&(total, total)));
    }
    gateway.shutdown_and_join();
}

#[test]
fn served_algorithm_jobs_replay_the_direct_run_exactly() {
    // The algorithm matrix end to end over the wire: the gateway's
    // answer for a distributed-algorithm sweep must carry the same
    // trace fingerprints and byte-identical metrics JSON (algorithm
    // counters included) as an in-process `run_batch`, at any worker
    // count. This closes the loop the v2 wire bump opened: an
    // `AlgorithmSpec` survives encode → admission → pool dispatch →
    // result framing unchanged.
    let spec = BatchSpec::algorithm_matrix(vec![0]);
    let direct = run_batch(&spec, 1);
    let fingerprints: Vec<u64> = direct.runs.iter().map(|r| r.trace_hash).collect();
    assert!(
        direct.metrics.algo_decided == direct.metrics.sessions,
        "reference sweep must decide everywhere"
    );

    let (gateway, addr) = loopback(GatewayConfig::default());
    for workers in [1u64, 4] {
        let mut client = Client::connect(addr).expect("connect");
        let result = client
            .submit_and_wait(
                &JobRequest {
                    spec: spec.clone(),
                    workers,
                    deadline_ms: 0,
                },
                |_, _| {},
            )
            .expect("algorithm job completes");
        assert_eq!(result.fingerprints, fingerprints, "workers={workers}");
        assert_eq!(
            result.metrics_json,
            direct.metrics.to_json(),
            "workers={workers}"
        );
    }
    gateway.shutdown_and_join();
}

#[test]
// Bare threads on purpose: the clients must be truly concurrent peers,
// not pool workers sharing the server's own scheduling.
#[allow(clippy::disallowed_methods)]
fn concurrent_clients_each_get_their_own_deterministic_answer() {
    let (gateway, addr) = loopback(GatewayConfig {
        capacity: 16,
        max_workers: 8,
    });
    // Overlapping sweeps: distinct seed sets, so any cross-wiring of
    // results between clients would be visible immediately.
    let handles: Vec<_> = (0..4u64)
        .map(|i| {
            std::thread::spawn(move || {
                let seeds = vec![i, i + 10];
                let expected = run_batch(&capped_spec(seeds.clone()), 1);
                let mut client = Client::connect(addr).expect("connect");
                let result = client
                    .submit_and_wait(&request(seeds, 1 + i % 3), |_, _| {})
                    .expect("job completes");
                let fingerprints: Vec<u64> = expected.runs.iter().map(|r| r.trace_hash).collect();
                assert_eq!(result.fingerprints, fingerprints, "client {i}");
                assert_eq!(
                    result.metrics_json,
                    expected.metrics.to_json(),
                    "client {i}"
                );
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("client thread");
    }
    let snapshot = gateway.metrics();
    assert_eq!(snapshot.accepted, 4);
    assert_eq!(snapshot.completed, 4);
    gateway.shutdown_and_join();
}

#[test]
fn full_queue_rejects_with_typed_reason_and_drains_after_resume() {
    let (gateway, addr) = loopback(GatewayConfig {
        capacity: 2,
        max_workers: 8,
    });
    gateway.pause(); // runner held: admission outcomes are deterministic
    let mut client = Client::connect(addr).expect("connect");
    let first = client.submit(&request(vec![0], 2)).expect("fits");
    let second = client.submit(&request(vec![1], 2)).expect("fits");
    assert_eq!(second.queued_ahead, 1);
    match client.submit(&request(vec![2], 2)) {
        Err(GatewayError::Rejected(RejectReason::QueueFull { capacity })) => {
            assert_eq!(capacity, 2);
        }
        other => panic!("expected typed queue-full rejection, got {other:?}"),
    }
    gateway.resume();
    client.wait(first.job, |_, _| {}).expect("first completes");
    client
        .wait(second.job, |_, _| {})
        .expect("second completes");
    // Capacity freed: admission opens again.
    let third = client.submit(&request(vec![2], 2)).expect("fits again");
    client.wait(third.job, |_, _| {}).expect("third completes");
    let snapshot = gateway.metrics();
    assert_eq!(snapshot.rejected_full, 1);
    assert_eq!(snapshot.accepted, 3);
    gateway.shutdown_and_join();
}

#[test]
fn invalid_specs_are_rejected_at_admission() {
    let (gateway, addr) = loopback(GatewayConfig::default());
    let mut client = Client::connect(addr).expect("connect");
    let mut degenerate = request(vec![0], 2);
    degenerate.workers = 0;
    match client.submit(&degenerate) {
        Err(GatewayError::Rejected(RejectReason::InvalidSpec { detail })) => {
            assert!(detail.contains("workers"), "{detail:?}");
        }
        other => panic!("expected invalid-spec rejection, got {other:?}"),
    }
    let mut hostile = request(vec![0], 2);
    hostile.spec.schedules = vec![stigmergy_scheduler::ScheduleSpec::Scripted {
        script: vec![vec![0], vec![]],
    }];
    assert!(matches!(
        client.submit(&hostile),
        Err(GatewayError::Rejected(RejectReason::InvalidSpec { .. }))
    ));
    assert_eq!(gateway.metrics().rejected_invalid, 2);
    gateway.shutdown_and_join();
}

#[test]
fn queued_jobs_can_be_cancelled_from_another_connection() {
    let (gateway, addr) = loopback(GatewayConfig {
        capacity: 4,
        max_workers: 8,
    });
    gateway.pause();
    let mut submitter = Client::connect(addr).expect("connect");
    let running = submitter.submit(&request(vec![0], 2)).expect("fits");
    let parked = submitter.submit(&request(vec![1], 2)).expect("fits");

    // Any connection may cancel any job — the id is the handle.
    let mut canceller = Client::connect(addr).expect("connect");
    assert_eq!(
        canceller.cancel(parked.job).expect("cancel"),
        CancelState::Dequeued
    );
    assert_eq!(canceller.cancel(999).expect("cancel"), CancelState::Unknown);
    match submitter.wait(parked.job, |_, _| {}) {
        Err(GatewayError::JobFailed(FailReason::Cancelled)) => {}
        other => panic!("expected cancelled, got {other:?}"),
    }
    gateway.resume();
    submitter.wait(running.job, |_, _| {}).expect("completes");
    assert_eq!(
        canceller.cancel(running.job).expect("cancel"),
        CancelState::Finished
    );
    let snapshot = gateway.metrics();
    assert_eq!(snapshot.cancelled, 1);
    assert_eq!(snapshot.completed, 1);
    gateway.shutdown_and_join();
}

#[test]
fn cancelling_a_running_job_stops_it_at_a_session_boundary() {
    let (gateway, addr) = loopback(GatewayConfig::default());
    gateway.pause();
    let mut submitter = Client::connect(addr).expect("connect");
    // Enough sessions that the job cannot finish instantly once resumed.
    let ticket = submitter
        .submit(&request((0..8).collect(), 1))
        .expect("fits");
    let mut canceller = Client::connect(addr).expect("connect");
    gateway.resume();
    let state = canceller.cancel(ticket.job).expect("cancel");
    // The race between the runner picking the job up and the cancel
    // arriving is real; both outcomes must resolve to a cancelled job.
    assert!(
        matches!(state, CancelState::Dequeued | CancelState::Signalled),
        "unexpected {state:?}"
    );
    match submitter.wait(ticket.job, |_, _| {}) {
        Err(GatewayError::JobFailed(FailReason::Cancelled)) => {}
        other => panic!("expected cancelled, got {other:?}"),
    }
    gateway.shutdown_and_join();
}

#[test]
fn expired_deadlines_fail_with_the_typed_reason() {
    let (gateway, addr) = loopback(GatewayConfig::default());
    gateway.pause(); // held in the queue past its deadline
    let mut client = Client::connect(addr).expect("connect");
    let mut req = request(vec![0], 2);
    req.deadline_ms = 20;
    let ticket = client.submit(&req).expect("fits");
    match client.wait(ticket.job, |_, _| {}) {
        Err(GatewayError::JobFailed(FailReason::DeadlineExceeded)) => {}
        other => panic!("expected deadline expiry, got {other:?}"),
    }
    gateway.resume();
    assert_eq!(gateway.metrics().deadline_expired, 1);
    gateway.shutdown_and_join();
}

#[test]
fn graceful_shutdown_drains_accepted_jobs_and_rejects_new_ones() {
    let (gateway, addr) = loopback(GatewayConfig {
        capacity: 8,
        max_workers: 8,
    });
    gateway.pause();
    let mut client = Client::connect(addr).expect("connect");
    let tickets: Vec<_> = (0..3u64)
        .map(|i| client.submit(&request(vec![i], 2)).expect("fits"))
        .collect();
    client.shutdown().expect("shutdown acknowledged");
    match client.submit(&request(vec![9], 2)) {
        Err(GatewayError::Rejected(RejectReason::ShuttingDown)) => {}
        other => panic!("expected shutting-down rejection, got {other:?}"),
    }
    // Shutdown overrides pause: every accepted job still completes, and
    // each can still be observed to its Done frame.
    for (i, ticket) in tickets.iter().enumerate() {
        let expected = run_batch(&capped_spec(vec![i as u64]), 1);
        let result = client.wait(ticket.job, |_, _| {}).expect("drained job");
        assert_eq!(
            result.metrics_json,
            expected.metrics.to_json(),
            "job {i} deterministic through the drain"
        );
    }
    let snapshot = gateway.metrics();
    assert_eq!(snapshot.accepted, 3);
    assert_eq!(
        snapshot.completed + snapshot.cancelled + snapshot.deadline_expired,
        snapshot.accepted,
        "idle metrics must partition accepted jobs"
    );
    assert_eq!(snapshot.rejected_shutdown, 1);
    gateway.shutdown_and_join();
    assert!(gateway_finished_after_join());
}

/// `shutdown_and_join` consumed the gateway; the drain having returned
/// *is* the evidence it finished. Kept as a named helper so the final
/// assert reads as the claim it makes.
fn gateway_finished_after_join() -> bool {
    true
}

#[test]
fn version_mismatch_is_refused_at_handshake() {
    use stigmergy_gateway::{Message, WIRE_VERSION};
    let (gateway, addr) = loopback(GatewayConfig::default());
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    stigmergy_gateway::wire::write_frame(&mut stream, &Message::Hello { version: 999 })
        .expect("write");
    match stigmergy_gateway::wire::read_frame(&mut stream) {
        Ok(Message::HelloOk { version }) => assert_eq!(version, WIRE_VERSION),
        other => panic!("expected HelloOk advertising the real version, got {other:?}"),
    }
    // The server then closes: the next read hits EOF.
    assert!(matches!(
        stigmergy_gateway::wire::read_frame(&mut stream),
        Err(GatewayError::Io(_))
    ));
    gateway.shutdown_and_join();
}
