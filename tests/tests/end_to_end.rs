//! End-to-end delivery across every protocol, naming scheme, scheduler,
//! and payload shape.

use stigmergy::async2::DriftPolicy;
use stigmergy::session::{AsyncNetwork, AsyncPair, SyncNetwork};
use stigmergy_geometry::Point;
use stigmergy_integration::ring;
use stigmergy_scheduler::{FairAsync, RoundRobin, SingleActive};

#[test]
fn every_sync_scheme_delivers_every_pair() {
    // The full n×(n−1) traffic matrix, one scheme at a time.
    let n = 5;
    for (scheme, build) in [
        ("id", SyncNetwork::identified as fn(Vec<Point>, u64) -> _),
        ("lex", SyncNetwork::anonymous_with_direction),
        ("sec", SyncNetwork::anonymous),
    ] {
        let mut net = build(ring(n, 30.0), 0xA11).unwrap();
        for from in 0..n {
            for to in 0..n {
                if from != to {
                    let payload = format!("{scheme}:{from}->{to}");
                    net.send(from, to, payload.as_bytes()).unwrap();
                }
            }
        }
        net.run_until_delivered(100_000)
            .unwrap_or_else(|e| panic!("{scheme}: {e}"));
        for to in 0..n {
            let inbox = net.inbox(to);
            assert_eq!(inbox.len(), n - 1, "{scheme}: robot {to} inbox");
            for from in (0..n).filter(|&f| f != to) {
                let expected = format!("{scheme}:{from}->{to}").into_bytes();
                assert!(
                    inbox.contains(&(from, expected)),
                    "{scheme}: missing {from}->{to}"
                );
            }
        }
    }
}

#[test]
fn binary_payloads_survive() {
    // Every byte value, including 0x00 and 0xFF runs.
    let payload: Vec<u8> = (0..=255u8).collect();
    let mut net = SyncNetwork::anonymous_with_direction(ring(3, 20.0), 0xA12).unwrap();
    net.send(0, 2, &payload).unwrap();
    net.run_until_delivered(100_000).unwrap();
    assert_eq!(net.inbox(2), vec![(0, payload)]);
}

#[test]
fn utf8_payloads_survive() {
    let text = "деаф, dumb, 聊天 🤖";
    let mut net = SyncNetwork::anonymous(ring(4, 25.0), 0xA13).unwrap();
    net.send(1, 3, text.as_bytes()).unwrap();
    net.run_until_delivered(100_000).unwrap();
    let inbox = net.inbox(3);
    assert_eq!(String::from_utf8(inbox[0].1.clone()).unwrap(), text);
}

#[test]
fn empty_message_is_a_valid_message() {
    let mut net = SyncNetwork::anonymous_with_direction(ring(3, 20.0), 0xA14).unwrap();
    net.send(0, 1, b"").unwrap();
    net.run_until_delivered(10_000).unwrap();
    assert_eq!(net.inbox(1), vec![(0, Vec::new())]);
}

#[test]
fn long_message_delivery() {
    let payload = vec![0x5Au8; 2_000]; // 16 kbit on the wire
    let mut net = SyncNetwork::anonymous_with_direction(ring(2, 15.0), 0xA15).unwrap();
    net.send(0, 1, &payload).unwrap();
    // 2 instants per bit: ~32k instants.
    net.run_until_delivered(40_000).unwrap();
    assert_eq!(net.inbox(1)[0].1, payload);
}

#[test]
fn async_pair_duplex_over_many_seeds() {
    for seed in 0..5u64 {
        let mut pair = AsyncPair::new(
            Point::new(0.0, 0.0),
            Point::new(14.0, 3.0),
            DriftPolicy::Diverge,
            seed,
        )
        .unwrap();
        pair.send(0, &[seed as u8, 1, 2]).unwrap();
        pair.send(1, &[0xFF, seed as u8]).unwrap();
        pair.run_until_delivered(300_000)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(pair.inbox(1), &[vec![seed as u8, 1, 2]]);
        assert_eq!(pair.inbox(0), &[vec![0xFF, seed as u8]]);
    }
}

#[test]
fn async_swarm_under_three_scheduler_families() {
    let positions = ring(3, 22.0);
    // FairAsync.
    let mut a =
        AsyncNetwork::anonymous_with_schedule(positions.clone(), 1, FairAsync::new(1, 0.5, 8))
            .unwrap();
    a.send(0, 2, b"fa").unwrap();
    a.run_until_delivered(300_000).unwrap();
    assert_eq!(a.inbox(2), vec![(0, b"fa".to_vec())]);

    // RoundRobin.
    let mut b = AsyncNetwork::anonymous_with_schedule(positions.clone(), 2, RoundRobin).unwrap();
    b.send(1, 0, b"rr").unwrap();
    b.run_until_delivered(300_000).unwrap();
    assert_eq!(b.inbox(0), vec![(1, b"rr".to_vec())]);

    // SingleActive — the harshest fair adversary.
    let mut c =
        AsyncNetwork::anonymous_with_schedule(positions, 3, SingleActive::new(3, 12)).unwrap();
    c.send(2, 1, b"sa").unwrap();
    c.run_until_delivered(1_000_000).unwrap();
    assert_eq!(c.inbox(1), vec![(2, b"sa".to_vec())]);
}

#[test]
fn interleaved_conversations_stay_separated() {
    // Three concurrent conversations; inboxes must never cross-pollute.
    let mut net = SyncNetwork::anonymous_with_direction(ring(6, 40.0), 0xA16).unwrap();
    net.send(0, 1, b"zero to one").unwrap();
    net.send(1, 0, b"one to zero").unwrap();
    net.send(2, 3, b"two to three").unwrap();
    net.send(3, 2, b"three to two").unwrap();
    net.send(4, 5, b"four to five").unwrap();
    net.send(5, 4, b"five to four").unwrap();
    net.run_until_delivered(50_000).unwrap();
    assert_eq!(net.inbox(1), vec![(0, b"zero to one".to_vec())]);
    assert_eq!(net.inbox(0), vec![(1, b"one to zero".to_vec())]);
    assert_eq!(net.inbox(3), vec![(2, b"two to three".to_vec())]);
    assert_eq!(net.inbox(2), vec![(3, b"three to two".to_vec())]);
    assert_eq!(net.inbox(5), vec![(4, b"four to five".to_vec())]);
    assert_eq!(net.inbox(4), vec![(5, b"five to four".to_vec())]);
}

#[test]
fn sequential_messages_arrive_in_order() {
    let mut net = SyncNetwork::anonymous_with_direction(ring(3, 20.0), 0xA17).unwrap();
    for i in 0..5u8 {
        net.send(0, 1, &[i]).unwrap();
    }
    net.run_until_delivered(50_000).unwrap();
    let payloads: Vec<Vec<u8>> = net.inbox(1).into_iter().map(|(_, p)| p).collect();
    assert_eq!(payloads, vec![vec![0], vec![1], vec![2], vec![3], vec![4]]);
}

#[test]
fn bigger_swarms_still_route() {
    for n in [12usize, 24] {
        let mut net =
            SyncNetwork::anonymous_with_direction(ring(n, 8.0 * n as f64), 0xA18).unwrap();
        net.send(0, n / 2, b"far side").unwrap();
        net.send(n - 1, 1, b"near side").unwrap();
        net.run_until_delivered(50_000)
            .unwrap_or_else(|e| panic!("n={n}: {e}"));
        assert_eq!(net.inbox(n / 2), vec![(0, b"far side".to_vec())]);
        assert_eq!(net.inbox(1), vec![(n - 1, b"near side".to_vec())]);
    }
}
