//! Model-conformance tests: the simulated runs must satisfy the SSM's
//! physical and logical invariants end-to-end, and protocol outcomes must
//! be invariant under the robots' private frames.

use stigmergy::session::{AsyncNetwork, SyncNetwork};
use stigmergy_geometry::voronoi::granular_radii;
use stigmergy_integration::ring;
use stigmergy_scheduler::audit_fairness;

#[test]
fn sync_runs_are_collision_free_and_granular_confined() {
    let positions = ring(6, 30.0);
    let radii = granular_radii(&positions).unwrap();
    let mut net = SyncNetwork::anonymous_with_direction(positions.clone(), 0xB01).unwrap();
    for i in 0..6 {
        net.send(i, (i + 1) % 6, format!("m{i}").as_bytes())
            .unwrap();
    }
    net.run_until_delivered(50_000).unwrap();

    let trace = net.engine().trace();
    // Collision freedom (engine would also have errored).
    assert!(trace.min_pairwise_distance() > 1.0);
    // Granular confinement: every recorded position within its granular.
    for step in trace.steps() {
        for (i, p) in step.positions.iter().enumerate() {
            assert!(
                positions[i].distance(*p) <= radii[i] + 1e-9,
                "robot {i} outside granular at t={}",
                step.time
            );
        }
    }
}

#[test]
fn sync_protocols_are_silent() {
    // No queued messages ⇒ no movement, ever (§3's silence property).
    let mut net = SyncNetwork::anonymous(ring(5, 25.0), 0xB02).unwrap();
    net.run(200).unwrap();
    for i in 0..5 {
        assert_eq!(net.engine().trace().path_length(i), 0.0, "robot {i} moved");
    }
}

#[test]
fn async_robots_always_move_and_scheduler_is_fair() {
    let mut net = AsyncNetwork::anonymous(ring(4, 25.0), 0xB03).unwrap();
    net.run(500).unwrap();
    let trace = net.engine().trace();
    // Remark 4.3: every activation moves. So move_count ≈ activation count.
    let log = trace.activation_log();
    let report = audit_fairness(&log, 4);
    assert!(report.is_valid_ssm());
    for i in 0..4 {
        assert_eq!(
            trace.move_count(i) as u64,
            report.activations[i],
            "robot {i}: activations without movement"
        );
    }
}

#[test]
fn outcome_is_invariant_under_private_frames() {
    // The same scenario under ten different frame assignments (rotations
    // and scales) must produce identical inbox contents.
    let mut reference: Option<Vec<(usize, Vec<u8>)>> = None;
    for seed in 0..10u64 {
        let mut net = SyncNetwork::anonymous(ring(5, 30.0), seed).unwrap();
        net.send(0, 3, b"frame test").unwrap();
        net.send(2, 4, b"second").unwrap();
        net.run_until_delivered(50_000)
            .unwrap_or_else(|e| panic!("frame seed {seed}: {e}"));
        let mut inbox3 = net.inbox(3);
        inbox3.extend(net.inbox(4));
        match &reference {
            None => reference = Some(inbox3),
            Some(r) => assert_eq!(&inbox3, r, "frame seed {seed} changed the outcome"),
        }
    }
}

#[test]
fn world_trajectories_are_frame_invariant() {
    // Stronger than delivery invariance: every protocol move is a
    // fraction of a world-geometric quantity (granular radius, initial
    // separation), so the *world* trajectory is bit-identical no matter
    // how the private frames are rotated and scaled. This is the
    // machine-checkable form of "the protocol only uses
    // similarity-invariant constructions".
    let run = |seed: u64| {
        let mut net = SyncNetwork::anonymous(ring(4, 25.0), seed).unwrap();
        net.send(1, 2, b"x").unwrap();
        net.run_until_delivered(50_000).unwrap();
        (
            format!(
                "{:?}",
                net.engine().trace().steps().last().unwrap().positions
            ),
            net.inbox(2),
        )
    };
    let (pos_a, inbox_a) = run(100);
    let (pos_b, inbox_b) = run(200);
    assert_eq!(inbox_a, inbox_b);
    // Frames genuinely differ between the two seeds…
    let net_a = SyncNetwork::anonymous(ring(4, 25.0), 100).unwrap();
    let net_b = SyncNetwork::anonymous(ring(4, 25.0), 200).unwrap();
    assert_ne!(
        net_a.engine().frames()[0].rotation(),
        net_b.engine().frames()[0].rotation()
    );
    // …yet the world-space trajectories agree exactly.
    assert_eq!(pos_a, pos_b);
}

#[test]
fn sync_runs_are_deterministic() {
    let run = |_: ()| {
        let mut net = SyncNetwork::anonymous_with_direction(ring(4, 22.0), 7).unwrap();
        net.send(0, 3, b"det").unwrap();
        net.run_until_delivered(20_000).unwrap();
        format!("{:?}", net.engine().trace().steps().last().unwrap())
    };
    assert_eq!(run(()), run(()));
}

#[test]
fn async_runs_are_deterministic_per_seed() {
    let run = |seed: u64| {
        let mut net = AsyncNetwork::anonymous(ring(3, 20.0), seed).unwrap();
        net.send(0, 2, b"det").unwrap();
        let steps = net.run_until_delivered(300_000).unwrap();
        (steps, format!("{:?}", net.engine().positions()))
    };
    assert_eq!(run(11), run(11));
    assert_ne!(run(11).0, run(12).0);
}

#[test]
fn overhearing_matches_the_direct_inbox() {
    // A third party's overheard copy equals the addressee's received copy
    // (the redundancy/fault-tolerance property).
    let mut net = SyncNetwork::anonymous_with_direction(ring(4, 25.0), 0xB04).unwrap();
    net.send(0, 1, b"the record").unwrap();
    net.run_until_delivered(20_000).unwrap();
    let direct = net.inbox(1)[0].1.clone();
    for observer in [2usize, 3] {
        let heard = net
            .engine()
            .protocol(observer)
            .overheard()
            .iter()
            .find(|m| m.payload == direct)
            .unwrap_or_else(|| panic!("robot {observer} missed the message"));
        assert_eq!(heard.payload, direct);
    }
}

#[test]
fn async_trace_fairness_audit_under_custom_scheduler() {
    use stigmergy_scheduler::FairAsync;
    let mut net =
        AsyncNetwork::anonymous_with_schedule(ring(3, 20.0), 0xB05, FairAsync::new(0xB05, 0.3, 10))
            .unwrap();
    net.send(0, 1, b"audit").unwrap();
    net.run_until_delivered(500_000).unwrap();
    let report = audit_fairness(&net.engine().trace().activation_log(), 3);
    assert!(report.is_valid_ssm());
    // Gap bound: max_gap plus the wake-all-first instant.
    assert!(report.is_fair(11), "worst gap {}", report.worst_gap());
}

/// The adversarial schedule roster shared by the conformance tests below:
/// the harshest legal scheduler plus the three adversaries from the
/// fault-injection subsystem.
fn conformance_schedules(n: usize) -> Vec<(&'static str, Box<dyn stigmergy_scheduler::Schedule>)> {
    use stigmergy_scheduler::{Bursty, LaggingRobot, SingleActive, WorstCaseFair};
    vec![
        ("single-active", Box::new(SingleActive::new(0x51, 8))),
        ("lagging-robot", Box::new(LaggingRobot::new(n - 1, 8))),
        ("bursty", Box::new(Bursty::new(0x52, 3, 5))),
        ("worst-case-fair", Box::new(WorstCaseFair::new(6))),
    ]
}

#[test]
fn sigma_cap_holds_under_single_active_and_adversarial_schedules() {
    // The physical contract: no robot ever travels more than its σ in one
    // instant, no matter how adversarially it is scheduled, and no two
    // robots ever come within the collision tolerance of each other.
    use stigmergy::async_n::AsyncSwarm;
    use stigmergy_robots::engine::DEFAULT_COLLISION_EPS;
    use stigmergy_robots::{Capabilities, Engine};
    use stigmergy_scheduler::WakeAllFirst;

    let n = 3;
    let sigma = 0.9;
    for (name, schedule) in conformance_schedules(n) {
        let mut e = Engine::builder()
            .positions(ring(n, 20.0))
            .protocols((0..n).map(|_| AsyncSwarm::anonymous()))
            .capabilities(Capabilities::anonymous())
            .schedule(WakeAllFirst::new(schedule))
            .sigma(sigma)
            .frame_seed(0x5161)
            .build()
            .unwrap();
        e.step().unwrap();
        // Queue traffic so excursion moves actually press against σ.
        e.protocol_mut(0).send_broadcast(b"press");
        e.run_until(3_000, |_| false).unwrap();

        let trace = e.trace();
        let mut prev = trace.initial().to_vec();
        for step in trace.steps() {
            for (i, p) in step.positions.iter().enumerate() {
                assert!(
                    prev[i].distance(*p) <= sigma + 1e-9,
                    "robot {i} overshot σ under {name} at t={}",
                    step.time
                );
            }
            prev.clone_from(&step.positions);
        }
        assert!(
            trace.min_pairwise_distance() >= DEFAULT_COLLISION_EPS,
            "collision tolerance violated under {name}"
        );
    }
}

#[test]
fn collision_tolerance_holds_under_faulted_adversarial_runs() {
    // Same physical contract with the full fault plan armed: shortened
    // moves stay inside the mover's granule (the lerp never leaves the
    // segment), a crashed body is an obstacle others must still clear,
    // and dropouts must not push anyone onto a collision course.
    use stigmergy::sync_swarm::SyncSwarm;
    use stigmergy_robots::engine::DEFAULT_COLLISION_EPS;
    use stigmergy_robots::{Capabilities, Engine, FaultEvent};
    use stigmergy_scheduler::{FaultPlan, WakeAllFirst};

    let n = 3;
    for (name, schedule) in conformance_schedules(n) {
        let mut e = Engine::builder()
            .positions(ring(n, 20.0))
            .protocols((0..n).map(|_| SyncSwarm::anonymous_with_direction()))
            .capabilities(Capabilities::anonymous_with_direction())
            .schedule(WakeAllFirst::new(schedule))
            .frame_seed(0x5162)
            .build()
            .unwrap();
        e.step().unwrap();
        e.set_fault_plan(
            FaultPlan::new(0x77)
                .non_rigid(0.3, 0.6)
                .observation_dropout(0.2)
                .crash_stop(1, 50),
        );
        e.protocol_mut(0).send_broadcast(b"faulted");
        e.run_until(5_000, |_| false)
            .unwrap_or_else(|err| panic!("{name}: {err}"));

        let trace = e.trace();
        assert!(
            trace.min_pairwise_distance() >= DEFAULT_COLLISION_EPS,
            "collision tolerance violated under faulted {name}"
        );
        // The recorded fault stream must itself conform: every non-rigid
        // fraction honours the δ floor, and the crash fired on time.
        let mut saw_non_rigid = false;
        let mut crash_time = None;
        for f in trace.faults() {
            match *f {
                FaultEvent::NonRigidMotion { fraction, .. } => {
                    saw_non_rigid = true;
                    assert!((0.3..1.0).contains(&fraction), "{name}: δ floor broken");
                }
                FaultEvent::CrashStop { time, robot } => {
                    assert_eq!(robot, 1);
                    crash_time = Some(time);
                }
                FaultEvent::ObservationDropout { .. } => {}
            }
        }
        assert!(saw_non_rigid, "{name}: non-rigid plan never fired");
        assert_eq!(crash_time, Some(50), "{name}: crash-stop misfired");
        // A crashed body freezes: its position never changes after t=50.
        let frozen: Vec<_> = trace
            .steps()
            .iter()
            .filter(|s| s.time >= 50)
            .map(|s| s.positions[1])
            .collect();
        assert!(
            frozen.windows(2).all(|w| w[0] == w[1]),
            "{name}: crashed robot moved"
        );
    }
}

#[test]
fn async_swarm_survives_corda_decoupling() {
    // The e14 finding generalized to n > 2: with atomic movement, Look→Move
    // decoupling does not break the κ-keyboard protocol either.
    use stigmergy::async_n::AsyncSwarm;
    use stigmergy_robots::CordaEngine;
    let positions = ring(3, 22.0);
    let mut e = CordaEngine::new(
        positions,
        (0..3).map(|_| AsyncSwarm::anonymous()).collect(),
        8,
        0xD01,
    )
    .unwrap();
    // CordaEngine has no WakeAllFirst; its first instant Looks everyone
    // (nobody has a pending move), which is the same t0 guarantee.
    e.step().unwrap();
    let label = stigmergy::label_by_sec(e.trace().initial(), 0)
        .unwrap()
        .label_of(2)
        .unwrap();
    e.protocol_mut(0).send_label(label, b"corda-n");
    let ok = e
        .run_until(400_000, |e| {
            e.protocol(2)
                .inbox()
                .iter()
                .any(|m| m.payload == b"corda-n")
        })
        .unwrap();
    assert!(ok, "AsyncSwarm should survive atomic-move CORDA");
}
