//! Hostile-stealer stress tests for the work-stealing fleet pool.
//!
//! The scheduler's claim path is lock-free CAS over packed index
//! ranges, so the dangerous schedules are the ones a fair benchmark
//! never produces: one worker owning all the heavy work while everyone
//! else steals from it, a single long job pinning its owner while the
//! rest of the pool drains, and seeded-random skew in between. Each
//! test asserts the full contract — no deadlock (the test completes),
//! no lost or duplicated session, index-ordered results identical to a
//! serial map — plus panic containment: one poisoned session fails its
//! own `RunReport` without wedging the pool.

use std::sync::mpsc;
use std::thread;

use stigmergy_fleet::{
    run_batch, run_indexed, BatchSpec, ProtocolKind, StealScheduler, DEFAULT_PAYLOAD,
};
use stigmergy_scheduler::{CodingSpec, FaultSpec, ScheduleSpec};

/// SplitMix64: the seeded PRNG behind the hostile distributions — tiny,
/// deterministic, and independent of `std`'s unstable hasher.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Burns `units` of deterministic CPU work and returns a value that
/// encodes both the input and the work done — a lost or duplicated job
/// can't hide behind a constant result.
fn burn(units: u64) -> u64 {
    let mut acc = units.wrapping_mul(0x2545_F491_4F6C_DD1D) | 1;
    for _ in 0..units {
        acc = acc.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(7);
    }
    acc
}

/// Runs `items` through the pool at `workers` and asserts the result is
/// exactly the serial map, index-ordered.
fn assert_matches_serial(items: &[u64], workers: usize, label: &str) {
    let expected: Vec<u64> = items.iter().map(|&w| burn(w)).collect();
    let got = run_indexed(items.to_vec(), workers, |&w| burn(w));
    assert_eq!(expected, got, "{label}: workers={workers}");
}

#[test]
fn one_long_session_plus_many_trivial_ones() {
    // Index 0 is a single long job; everything else is near-free. The
    // long job pins its owner, so the rest of the pool must drain the
    // trivial work and exit without it — and the result must still land
    // in slot 0.
    let mut items = vec![0u64; 512];
    items[0] = 400_000;
    for workers in [1, 2, 4, 8] {
        assert_matches_serial(&items, workers, "one-long");
    }
}

#[test]
fn all_heavy_work_in_one_victims_shard() {
    // `StealScheduler::new` hands worker 0 the leading contiguous run
    // of indices. Concentrating every heavy job there forces workers
    // 1..N to finish instantly and live entirely off steals from the
    // same victim — the maximum-contention steal schedule.
    let workers = 4;
    let n = 256;
    let mut items = vec![0u64; n];
    for slot in items.iter_mut().take(n / workers) {
        *slot = 6_000;
    }
    assert_matches_serial(&items, workers, "one-victim");
    assert_matches_serial(&items, 8, "one-victim");
}

#[test]
fn seeded_hostile_distributions_preserve_order_and_count() {
    // Pseudo-random skew: most jobs trivial, a seeded minority heavy,
    // across several seeds and worker counts. Each element's result
    // encodes its input, so the equality check proves no session was
    // lost, duplicated, or delivered out of order.
    for seed in [0x5EED_0001u64, 0x5EED_0002, 0x5EED_0003] {
        let mut rng = SplitMix64(seed);
        let items: Vec<u64> = (0..300)
            .map(|_| {
                let r = rng.next();
                if r.is_multiple_of(16) {
                    2_000 + (r % 8_000)
                } else {
                    r % 8
                }
            })
            .collect();
        for workers in [2, 4, 8] {
            assert_matches_serial(&items, workers, "seeded-skew");
        }
    }
}

#[test]
fn steal_heavy_thieves_claim_every_index_exactly_once() {
    // Four workers hammer the raw scheduler with the pool's canonical
    // pop-then-steal claim loop, the thieves yielding after every claim
    // so their shards — including ranges another thief just installed —
    // are stolen from under them mid-drain. The pop-first order is not
    // an optimization but the scheduler's contract: `steal_for`
    // installs the stolen remainder into the caller's shard with a
    // plain store, which is only safe while that shard is empty. (A
    // steal-first loop overwrites — and silently loses — the range it
    // installed one claim earlier; `steal_for` now debug-asserts the
    // precondition so that misuse fails loudly instead of dropping
    // jobs.) The union of claims must be exactly {0, …, n-1}.
    let n = 10_000usize;
    let thieves = 3usize;
    let scheduler = StealScheduler::new(n, 1 + thieves);
    let (tx, rx) = mpsc::channel::<usize>();
    thread::scope(|scope| {
        for me in 0..=thieves {
            let tx = tx.clone();
            let scheduler = &scheduler;
            scope.spawn(move || loop {
                match scheduler.pop_local(me).or_else(|| scheduler.steal_for(me)) {
                    Some(index) => {
                        tx.send(index).expect("collector outlives workers");
                        if me != 0 {
                            // Linger between claims: a slow thief's
                            // half-drained shard is the juiciest victim.
                            thread::yield_now();
                        }
                    }
                    None => return,
                }
            });
        }
        drop(tx);
        let mut seen = vec![false; n];
        let mut count = 0usize;
        for index in rx {
            assert!(!seen[index], "index {index} claimed twice");
            seen[index] = true;
            count += 1;
        }
        assert_eq!(count, n, "every index claimed exactly once");
        assert_eq!(scheduler.remaining(), 0);
    });
}

#[test]
fn poisoned_session_fails_its_report_without_wedging_the_pool() {
    // cohort = 0 makes every swarm constructor panic while the pair
    // protocols run normally. The batch must complete, the poisoned
    // sessions must carry their own errors, and the healthy sessions
    // must be byte-identical to a pool that never saw a panic.
    let spec = BatchSpec {
        protocols: vec![ProtocolKind::Sync2, ProtocolKind::SyncSwarmSec],
        algorithms: vec![],
        schedules: vec![ScheduleSpec::Synchronous],
        plans: vec![FaultSpec::Benign],
        seeds: vec![0, 1, 2, 3],
        cohort: 0,
        payload: DEFAULT_PAYLOAD.to_vec(),
        budget_cap: Some(2_000),
        keep_traces: false,
        coding: CodingSpec::Binary,
    };
    let reference = run_batch(&spec, 1);
    assert_eq!(reference.runs.len(), 8);
    for run in &reference.runs {
        if run.protocol == "sync-swarm-sec" {
            let error = run.error.as_deref().expect("swarm session is poisoned");
            assert!(error.starts_with("session panicked:"), "{error}");
            assert_eq!(run.steps, 0, "poisoned report carries no work");
        } else {
            assert!(run.error.is_none(), "pair session unaffected: {run:?}");
            assert!(run.delivered, "pair session still delivers");
        }
    }
    for workers in [2, 4, 8] {
        let parallel = run_batch(&spec, workers);
        assert_eq!(reference.runs, parallel.runs, "workers={workers}");
        assert_eq!(
            reference.metrics.to_json(),
            parallel.metrics.to_json(),
            "workers={workers}"
        );
    }
}
