//! The fleet's headline guarantee, as a regression test: dispatching the
//! full 6-protocol conformance matrix at `workers = 1` and `workers = 8`
//! yields **byte-identical** serialized traces per seed and identical
//! merged metrics. Sessions are pure functions of their `SessionSpec`;
//! the worker pool only changes *when* they run, never *what* they
//! compute — this file is what keeps that true as the engine evolves.

use stigmergy_fleet::{fnv1a64, fnv1a64_update, run_batch, BatchReport, BatchSpec};

/// The full matrix at a budget small enough to keep every whole trace in
/// memory (the byte-level comparison) but large enough for every fault
/// kind to fire and several frames to decode.
fn capped_spec(seeds: Vec<u64>) -> BatchSpec {
    BatchSpec {
        budget_cap: Some(2_000),
        keep_traces: true,
        ..BatchSpec::conformance_matrix(seeds)
    }
}

#[test]
fn workers_1_and_8_produce_byte_identical_traces_per_seed() {
    let spec = capped_spec(vec![0, 1, 2, 3]);
    let serial = run_batch(&spec, 1);
    let parallel = run_batch(&spec, 8);

    assert_eq!(serial.runs.len(), 6 * 3 * 3 * 4, "matrix shape");
    assert_eq!(serial.runs.len(), parallel.runs.len());
    for (a, b) in serial.runs.iter().zip(&parallel.runs) {
        let cell = format!("{}/{}/{}/seed={}", a.protocol, a.schedule, a.plan, a.seed);
        // Same session lands in the same output slot regardless of which
        // worker ran it.
        assert_eq!(
            (a.protocol, a.schedule, a.plan, a.seed),
            (b.protocol, b.schedule, b.plan, b.seed),
            "report order diverged at {cell}"
        );
        let ta = a.trace.as_deref().expect("keep_traces retains bytes");
        let tb = b.trace.as_deref().expect("keep_traces retains bytes");
        assert!(ta == tb, "trace bytes diverged for {cell}");
        assert_eq!(a.trace_hash, fnv1a64(ta), "hash is of the bytes");
        assert_eq!(a, b, "full report diverged for {cell}");
    }
    assert_eq!(serial.metrics, parallel.metrics, "merged metrics diverged");
}

/// Folds every run's trace hash and length, report order included — the
/// same fingerprint the stigbench suites gate on.
fn fingerprint(report: &BatchReport) -> u64 {
    report.runs.iter().fold(0xCBF2_9CE4_8422_2325u64, |acc, r| {
        let acc = fnv1a64_update(acc, &r.trace_hash.to_le_bytes());
        fnv1a64_update(acc, &(r.trace_len as u64).to_le_bytes())
    })
}

#[test]
fn determinism_matrix_workers_1_2_4_8() {
    // The work-stealing pool's acceptance gate: every worker count in
    // the matrix produces the same trace fingerprint and byte-identical
    // merged-metrics JSON — including the crash cells, which route
    // through `CrashFiltered` schedule wrappers.
    let spec = capped_spec(vec![0, 1]);
    let reference = run_batch(&spec, 1);
    let reference_json = reference.metrics.to_json();
    let crash_hashes = |report: &BatchReport| -> Vec<u64> {
        report
            .runs
            .iter()
            .filter(|r| r.plan == "crash")
            .map(|r| r.trace_hash)
            .collect()
    };
    assert!(
        !crash_hashes(&reference).is_empty(),
        "matrix must exercise CrashFiltered plans"
    );
    for workers in [2, 4, 8] {
        let other = run_batch(&spec, workers);
        assert_eq!(
            fingerprint(&reference),
            fingerprint(&other),
            "trace fingerprint diverged at workers={workers}"
        );
        assert_eq!(
            reference_json,
            other.metrics.to_json(),
            "merged-metrics JSON diverged at workers={workers}"
        );
        assert_eq!(
            crash_hashes(&reference),
            crash_hashes(&other),
            "CrashFiltered cells diverged at workers={workers}"
        );
    }
}

#[test]
fn repeated_runs_are_reproducible_at_any_worker_count() {
    // Not just 1-vs-N: every worker count replays the same batch.
    let spec = capped_spec(vec![7]);
    let reference = run_batch(&spec, 1);
    for workers in [2, 3, 5] {
        let other = run_batch(&spec, workers);
        assert_eq!(reference.runs, other.runs, "workers={workers}");
        assert_eq!(reference.metrics, other.metrics, "workers={workers}");
    }
}

#[test]
fn hash_only_mode_agrees_with_kept_traces() {
    // The full-budget conformance path stores only hashes; they must be
    // hashes of exactly the bytes the capped path retains.
    let kept = run_batch(&capped_spec(vec![5]), 2);
    let hashed = run_batch(
        &BatchSpec {
            keep_traces: false,
            ..capped_spec(vec![5])
        },
        2,
    );
    for (a, b) in kept.runs.iter().zip(&hashed.runs) {
        assert!(b.trace.is_none(), "hash-only mode must not retain bytes");
        assert_eq!(a.trace_hash, b.trace_hash);
        assert_eq!(a.trace_len, b.trace_len);
    }
}

#[test]
fn distinct_seeds_actually_perturb_the_runs() {
    // The guarantee would be vacuous if every seed produced the same
    // trace: check the matrix content varies across seeds.
    let report: BatchReport = run_batch(&capped_spec(vec![0, 1]), 2);
    let per_seed = |seed: u64| -> Vec<u64> {
        report
            .runs
            .iter()
            .filter(|r| r.seed == seed)
            .map(|r| r.trace_hash)
            .collect()
    };
    assert_ne!(per_seed(0), per_seed(1), "seeds must differentiate runs");
}
