//! Property test: every `ScheduleSpec` and `FaultSpec` the factories can
//! express survives the wire codec unchanged — and so does every
//! `BatchSpec` composed from them plus a gateway `Message::Submit`
//! wrapping that. The gateway's determinism guarantee rests on this:
//! what the server decodes must be `==` to what the client held.

use proptest::prelude::*;
use stigmergy_fleet::{BatchSpec, ProtocolKind};
use stigmergy_gateway::{JobRequest, Message};
use stigmergy_scheduler::wire::Reader;
use stigmergy_scheduler::{AlgorithmSpec, CodingSpec, FaultSpec, ScheduleSpec};

/// A strategy over every `ScheduleSpec` variant. The shim has no
/// `prop_oneof`, so one tuple of parameters is drawn and a variant
/// index selects which constructor consumes them.
fn schedule_spec() -> impl Strategy<Value = ScheduleSpec> {
    (
        0usize..10,
        any::<u64>(),
        0.01f64..1.0,
        1u64..100,
        0usize..64,
        (1u64..20, 1u64..20),
        prop::collection::vec(prop::collection::vec(0usize..8, 1..4), 1..5),
    )
        .prop_map(
            |(variant, seed, p, max_gap, victim, (burst_len, lull_len), script)| match variant {
                0 => ScheduleSpec::Synchronous,
                1 => ScheduleSpec::RoundRobin,
                2 => ScheduleSpec::FairAsync { seed, p, max_gap },
                3 => ScheduleSpec::SingleActive { seed, max_gap },
                4 => ScheduleSpec::LaggingReceiver { max_gap },
                5 => ScheduleSpec::Lagging { victim, max_gap },
                6 => ScheduleSpec::Bursty {
                    seed,
                    burst_len,
                    lull_len,
                },
                7 => ScheduleSpec::WorstCaseFair { max_gap },
                8 => ScheduleSpec::CrashFiltered {
                    inner: Box::new(ScheduleSpec::WorstCaseFair { max_gap }),
                },
                _ => ScheduleSpec::Scripted { script },
            },
        )
}

/// A strategy over every `AlgorithmSpec` variant.
fn algorithm_spec() -> impl Strategy<Value = AlgorithmSpec> {
    (0usize..3, 0usize..64, any::<u64>()).prop_map(|(variant, initiator, inputs)| match variant {
        0 => AlgorithmSpec::Flood { initiator },
        1 => AlgorithmSpec::Election,
        _ => AlgorithmSpec::Agreement { inputs },
    })
}

/// A strategy over every `CodingSpec` variant.
fn coding_spec() -> impl Strategy<Value = CodingSpec> {
    (0usize..3, 0u32..4, 1u8..60).prop_map(|(variant, log2_levels, dwell)| {
        let levels = 2u8 << log2_levels;
        match variant {
            0 => CodingSpec::Binary,
            1 => CodingSpec::MultiLevel { levels, dwell },
            _ => CodingSpec::Fec { levels, dwell },
        }
    })
}

/// A strategy over every `FaultSpec` variant.
fn fault_spec() -> impl Strategy<Value = FaultSpec> {
    (
        0usize..4,
        0.0f64..1.0,
        0.0f64..1.0,
        0usize..64,
        0u64..10_000,
    )
        .prop_map(|(variant, delta, prob, robot, time)| match variant {
            0 => FaultSpec::Benign,
            1 => FaultSpec::NonRigid { delta, prob },
            2 => FaultSpec::Dropout { prob },
            _ => FaultSpec::Crash {
                robot,
                time,
                delta,
                prob,
            },
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn schedule_specs_round_trip(spec in schedule_spec()) {
        let back = ScheduleSpec::from_wire(&spec.to_wire())
            .expect("own encoding must decode");
        prop_assert_eq!(back, spec);
    }

    #[test]
    fn fault_specs_round_trip(spec in fault_spec()) {
        let back = FaultSpec::from_wire(&spec.to_wire())
            .expect("own encoding must decode");
        prop_assert_eq!(back, spec);
    }

    #[test]
    fn algorithm_specs_round_trip(spec in algorithm_spec()) {
        let back = AlgorithmSpec::from_wire(&spec.to_wire())
            .expect("own encoding must decode");
        prop_assert_eq!(back, spec);
    }

    #[test]
    fn batch_specs_round_trip_through_the_gateway_frame(
        algorithms in prop::collection::vec(algorithm_spec(), 0..4),
        schedules in prop::collection::vec(schedule_spec(), 1..4),
        plans in prop::collection::vec(fault_spec(), 1..4),
        seeds in prop::collection::vec(any::<u64>(), 1..6),
        cohort in 2usize..16,
        payload in prop::collection::vec(any::<u8>(), 1..32),
        cap in 1u64..100_000,
        with_cap in any::<bool>(),
        workers in 1u64..16,
        deadline_ms in 0u64..100_000,
        coding in coding_spec(),
    ) {
        let spec = BatchSpec {
            protocols: vec![
                ProtocolKind::Sync2,
                ProtocolKind::AsyncSwarm,
                ProtocolKind::Hardened,
            ],
            algorithms,
            schedules,
            plans,
            seeds,
            cohort,
            payload,
            budget_cap: with_cap.then_some(cap),
            keep_traces: false,
            coding,
        };
        let request = JobRequest { spec, workers, deadline_ms };
        let msg = Message::Submit { request: request.clone() };
        let decoded = Message::decode(&msg.encode()).expect("own encoding must decode");
        prop_assert_eq!(decoded, msg);
    }
}

/// Every `ScheduleSpec` × `FaultSpec` variant pair, exhaustively: the
/// proptest above samples the parameter space; this pins the full
/// variant cross-product so a new variant without a codec arm cannot
/// slip through.
#[test]
fn every_variant_pair_round_trips() {
    let schedules = [
        ScheduleSpec::Synchronous,
        ScheduleSpec::RoundRobin,
        ScheduleSpec::FairAsync {
            seed: 9,
            p: 0.5,
            max_gap: 6,
        },
        ScheduleSpec::SingleActive {
            seed: 3,
            max_gap: 4,
        },
        ScheduleSpec::LaggingReceiver { max_gap: 8 },
        ScheduleSpec::Lagging {
            victim: 1,
            max_gap: 5,
        },
        ScheduleSpec::Bursty {
            seed: 2,
            burst_len: 3,
            lull_len: 7,
        },
        ScheduleSpec::WorstCaseFair { max_gap: 2 },
        ScheduleSpec::CrashFiltered {
            inner: Box::new(ScheduleSpec::WorstCaseFair { max_gap: 2 }),
        },
        ScheduleSpec::Scripted {
            script: vec![vec![0, 1], vec![2]],
        },
    ];
    let plans = [
        FaultSpec::Benign,
        FaultSpec::NonRigid {
            delta: 0.25,
            prob: 0.75,
        },
        FaultSpec::Dropout { prob: 0.1 },
        FaultSpec::Crash {
            robot: 2,
            time: 40,
            delta: 0.5,
            prob: 0.2,
        },
    ];
    let algorithms = [
        AlgorithmSpec::Flood { initiator: 1 },
        AlgorithmSpec::Election,
        AlgorithmSpec::Agreement { inputs: 0b101 },
    ];
    for schedule in &schedules {
        for plan in &plans {
            for algorithm in &algorithms {
                let mut buf = Vec::new();
                schedule.encode_wire(&mut buf);
                plan.encode_wire(&mut buf);
                algorithm.encode_wire(&mut buf);
                let mut r = Reader::new(&buf);
                assert_eq!(&ScheduleSpec::decode_wire(&mut r).unwrap(), schedule);
                assert_eq!(&FaultSpec::decode_wire(&mut r).unwrap(), plan);
                assert_eq!(&AlgorithmSpec::decode_wire(&mut r).unwrap(), algorithm);
                r.finish().unwrap();
            }
        }
    }
}
