//! Golden-trace tests: one representative session per conformance
//! protocol, its canonical trace encoding pinned as a hex file under
//! `tests/golden/`. Any drift — a changed activation order, a perturbed
//! position bit, a reordered fault event — fails the test with the first
//! differing line.
//!
//! To regenerate after an *intentional* engine or codec change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p stigmergy-integration --test golden_traces
//! ```
//!
//! then review the diff like any other source change.

use std::path::PathBuf;

use stigmergy_fleet::{fnv1a64, run_session, to_hex, ProtocolKind, SessionSpec, CONFORMANCE};
use stigmergy_scheduler::{AlgorithmSpec, CodingSpec, FaultSpec, ScheduleSpec};

/// One golden scenario per distributed algorithm, over the §4 swarm
/// channel under the worst-case-fair schedule with non-rigid motion.
/// The budget cap keeps the pinned prefix a few hundred instants — far
/// short of a decision, which is fine: the golden guards *trace* drift
/// (activation order, excursion geometry, fault events); decision
/// values are pinned by the adversarial matrix and the bench suite.
const GOLDEN_ALGORITHMS: [AlgorithmSpec; 3] = [
    AlgorithmSpec::Flood { initiator: 0 },
    AlgorithmSpec::Election,
    AlgorithmSpec::Agreement { inputs: 0b101 },
];

/// The pinned scenario: bursty activations with non-rigid motion, one
/// seed per protocol, a budget small enough that the hex files stay a
/// few KB but large enough for faults to fire and frames to decode.
///
/// Sync protocols run the conformance matrix's coding (8-level paced
/// signalling with FEC); async and hardened sessions ignore the coding
/// field, so their pinned traces are untouched by it. The separate
/// `sync2-binary` scenario pins the legacy uncoded sync path — its hex
/// file is the pre-coding `sync2.hex` byte for byte, proving the coding
/// layer never leaks into `CodingSpec::Binary` runs.
fn golden_spec(protocol: ProtocolKind) -> SessionSpec {
    SessionSpec {
        protocol,
        algorithm: None,
        schedule: ScheduleSpec::Bursty {
            seed: 0x0AD5_CEDD,
            burst_len: 3,
            lull_len: 5,
        },
        plan: FaultSpec::NonRigid {
            delta: 0.35,
            prob: 0.5,
        },
        seed: 1,
        cohort: 3,
        payload: b"adv".to_vec(),
        budget_cap: Some(256),
        keep_trace: true,
        coding: CodingSpec::Fec {
            levels: 8,
            dwell: 10,
        },
    }
}

fn golden_algo_spec(algorithm: AlgorithmSpec) -> SessionSpec {
    SessionSpec {
        protocol: ProtocolKind::AsyncSwarm,
        algorithm: Some(algorithm),
        schedule: ScheduleSpec::WorstCaseFair { max_gap: 6 },
        plan: FaultSpec::NonRigid {
            delta: 0.35,
            prob: 0.5,
        },
        seed: 1,
        cohort: 3,
        payload: b"adv".to_vec(),
        budget_cap: Some(256),
        keep_trace: true,
        coding: CodingSpec::Binary,
    }
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("golden")
        .join(format!("{name}.hex"))
}

fn trace_of(spec: &SessionSpec, name: &str) -> Vec<u8> {
    let report = run_session(spec);
    assert!(
        report.error.is_none(),
        "{name}: golden run failed: {:?}",
        report.error
    );
    report.trace.expect("keep_trace retains bytes")
}

/// Every pinned scenario as `(file stem, session spec)`.
fn golden_scenarios() -> Vec<(String, SessionSpec)> {
    let mut out: Vec<(String, SessionSpec)> = CONFORMANCE
        .iter()
        .map(|&p| (p.name().to_string(), golden_spec(p)))
        .collect();
    // The legacy uncoded sync pair: byte-pinned to the pre-coding
    // `sync2.hex` content.
    out.push((
        "sync2-binary".to_string(),
        SessionSpec {
            coding: CodingSpec::Binary,
            ..golden_spec(ProtocolKind::Sync2)
        },
    ));
    out.extend(
        GOLDEN_ALGORITHMS
            .iter()
            .map(|&a| (format!("algo-{}", a.name()), golden_algo_spec(a))),
    );
    out
}

/// Every pinned scenario as `(file stem, trace bytes)`.
fn all_golden() -> Vec<(String, Vec<u8>)> {
    golden_scenarios()
        .into_iter()
        .map(|(name, spec)| {
            let bytes = trace_of(&spec, &name);
            (name, bytes)
        })
        .collect()
}

#[test]
fn golden_traces_have_not_drifted() {
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let mut drifted = Vec::new();
    for (name, bytes) in all_golden() {
        let actual = to_hex(&bytes);
        let path = golden_path(&name);
        if update {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &actual).unwrap();
            continue;
        }
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{name}: cannot read golden file {} ({e}); run with UPDATE_GOLDEN=1 to create it",
                path.display()
            )
        });
        if actual != expected {
            let line = actual
                .lines()
                .zip(expected.lines())
                .position(|(a, b)| a != b)
                .map_or_else(|| "length".to_string(), |i| format!("line {}", i + 1));
            drifted.push(format!("{name} (first diff: {line})"));
        }
    }
    assert!(
        drifted.is_empty(),
        "golden traces drifted: {}. If intentional, regenerate with \
         UPDATE_GOLDEN=1 and review the diff.",
        drifted.join(", ")
    );
}

#[test]
fn golden_runs_are_reproducible_in_process() {
    // The drift test is only meaningful if the pinned scenario replays
    // exactly; a flaky golden run would blame the codec for engine
    // nondeterminism.
    for (name, spec) in golden_scenarios() {
        let a = trace_of(&spec, &name);
        let b = trace_of(&spec, &name);
        assert_eq!(
            fnv1a64(&a),
            fnv1a64(&b),
            "{name}: golden scenario not reproducible"
        );
        assert_eq!(a, b);
    }
}

#[test]
fn golden_scenarios_differ_across_protocols() {
    // Six distinct protocols (plus the uncoded sync2 variant) and three
    // algorithms must pin ten distinct traces — identical files would
    // mean the spec ignores its protocol, coding, or algorithm field.
    let golden = all_golden();
    let expected = golden.len();
    let mut hashes: Vec<u64> = golden.into_iter().map(|(_, b)| fnv1a64(&b)).collect();
    hashes.sort_unstable();
    hashes.dedup();
    assert_eq!(hashes.len(), expected);
}
