//! Golden-trace tests: one representative session per conformance
//! protocol, its canonical trace encoding pinned as a hex file under
//! `tests/golden/`. Any drift — a changed activation order, a perturbed
//! position bit, a reordered fault event — fails the test with the first
//! differing line.
//!
//! To regenerate after an *intentional* engine or codec change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p stigmergy-integration --test golden_traces
//! ```
//!
//! then review the diff like any other source change.

use std::path::PathBuf;

use stigmergy_fleet::{fnv1a64, run_session, to_hex, ProtocolKind, SessionSpec, CONFORMANCE};
use stigmergy_scheduler::{FaultSpec, ScheduleSpec};

/// The pinned scenario: bursty activations with non-rigid motion, one
/// seed per protocol, a budget small enough that the hex files stay a
/// few KB but large enough for faults to fire and frames to decode.
fn golden_spec(protocol: ProtocolKind) -> SessionSpec {
    SessionSpec {
        protocol,
        schedule: ScheduleSpec::Bursty {
            seed: 0x0AD5_CEDD,
            burst_len: 3,
            lull_len: 5,
        },
        plan: FaultSpec::NonRigid {
            delta: 0.35,
            prob: 0.5,
        },
        seed: 1,
        cohort: 3,
        payload: b"adv".to_vec(),
        budget_cap: Some(256),
        keep_trace: true,
    }
}

fn golden_path(protocol: ProtocolKind) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("golden")
        .join(format!("{}.hex", protocol.name()))
}

fn golden_bytes(protocol: ProtocolKind) -> Vec<u8> {
    let report = run_session(&golden_spec(protocol));
    assert!(
        report.error.is_none(),
        "{}: golden run failed: {:?}",
        protocol.name(),
        report.error
    );
    report.trace.expect("keep_trace retains bytes")
}

#[test]
fn golden_traces_have_not_drifted() {
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let mut drifted = Vec::new();
    for protocol in CONFORMANCE {
        let actual = to_hex(&golden_bytes(protocol));
        let path = golden_path(protocol);
        if update {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &actual).unwrap();
            continue;
        }
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{}: cannot read golden file {} ({e}); run with UPDATE_GOLDEN=1 to create it",
                protocol.name(),
                path.display()
            )
        });
        if actual != expected {
            let line = actual
                .lines()
                .zip(expected.lines())
                .position(|(a, b)| a != b)
                .map_or_else(|| "length".to_string(), |i| format!("line {}", i + 1));
            drifted.push(format!("{} (first diff: {line})", protocol.name()));
        }
    }
    assert!(
        drifted.is_empty(),
        "golden traces drifted: {}. If intentional, regenerate with \
         UPDATE_GOLDEN=1 and review the diff.",
        drifted.join(", ")
    );
}

#[test]
fn golden_runs_are_reproducible_in_process() {
    // The drift test is only meaningful if the pinned scenario replays
    // exactly; a flaky golden run would blame the codec for engine
    // nondeterminism.
    for protocol in CONFORMANCE {
        let a = golden_bytes(protocol);
        let b = golden_bytes(protocol);
        assert_eq!(
            fnv1a64(&a),
            fnv1a64(&b),
            "{}: golden scenario not reproducible",
            protocol.name()
        );
        assert_eq!(a, b);
    }
}

#[test]
fn golden_scenarios_differ_across_protocols() {
    // Six distinct protocols must pin six distinct traces — identical
    // files would mean the spec ignores its protocol field.
    let mut hashes: Vec<u64> = CONFORMANCE
        .iter()
        .map(|&p| fnv1a64(&golden_bytes(p)))
        .collect();
    hashes.sort_unstable();
    hashes.dedup();
    assert_eq!(hashes.len(), CONFORMANCE.len());
}
