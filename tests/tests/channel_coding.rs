//! Channel-coding conformance: the seeded-corruption fixture matrix
//! behind CI's `channel-coding` job.
//!
//! The FEC layer's contract is *corrected or rejected, never silently
//! accepted*: whatever a noisy channel does to a protected frame, the
//! receiver either recovers the exact payload (counting the symbols it
//! healed) or refuses the frame — a wrong payload must never decode
//! cleanly. The matrix below drives that contract from three layers:
//! the raw `protect_bytes`/`recover_bytes` framing, the hardened
//! session's wireless secondary, and the paced movement channel under
//! the fleet's adversarial cells.

use stigmergy::ack::RetransmitPolicy;
use stigmergy::backup::{Channel, Delivery, Wireless};
use stigmergy::session::HardenedSession;
use stigmergy_coding::fec::{protect_bytes, recover_bytes};
use stigmergy_fleet::{run_session, ProtocolKind, SessionSpec};
use stigmergy_geometry::Point;
use stigmergy_scheduler::{CodingSpec, FaultPlan, FaultSpec, ScheduleSpec};

/// Payloads spanning the framing edge cases: single byte, the sweep's
/// payload, a block-filling run, and one spilling into a second block.
const PAYLOADS: [&[u8]; 4] = [b"x", b"adv", b"sixchr", b"spills-over"];

/// The seeded corruption matrix: every (payload, burst, seed) cell
/// pushes a protected frame through a always-corrupting wireless device
/// and demands the decode be exact or refused.
#[test]
fn corrupted_frames_are_corrected_or_rejected_never_mangled() {
    let mut corrected_cells = 0u64;
    let mut rejected_cells = 0u64;
    for payload in PAYLOADS {
        let framed = protect_bytes(payload).expect("payloads fit the frame");
        for burst in [1usize, 2, 4, 8] {
            for seed in 0..32u64 {
                let mut wireless = Wireless::noisy(seed, 0.0, 1.0, burst, None);
                let Delivery::Arrived(data) = wireless.transmit(0, 1, &framed) else {
                    panic!("lossless device must deliver");
                };
                match recover_bytes(&data) {
                    Ok((recovered, corrected)) => {
                        assert_eq!(
                            recovered, payload,
                            "seed {seed} burst {burst}: FEC accepted a mangled payload"
                        );
                        if corrected > 0 {
                            corrected_cells += 1;
                        }
                    }
                    Err(_) => rejected_cells += 1,
                }
            }
        }
    }
    // The matrix must exercise both outcomes, or the property is vacuous.
    assert!(corrected_cells > 0, "no cell was corrected");
    assert!(rejected_cells > 0, "no cell was rejected");
    // A single flipped byte always lands in one Hamming block: burst = 1
    // must be corrected in every cell, which the totals above imply only
    // if nothing was rejected at burst 1 — check it directly.
    for payload in PAYLOADS {
        let framed = protect_bytes(payload).expect("payloads fit the frame");
        for seed in 0..32u64 {
            let mut wireless = Wireless::noisy(seed, 0.0, 1.0, 1, None);
            let Delivery::Arrived(data) = wireless.transmit(0, 1, &framed) else {
                panic!("lossless device must deliver");
            };
            let (recovered, corrected) =
                recover_bytes(&data).expect("single-byte corruption is always correctable");
            assert_eq!(recovered, payload);
            assert!(corrected > 0, "seed {seed}: the flip must be counted");
        }
    }
}

/// Session-level closure of the same contract: a hardened session over a
/// corrupting secondary never places a wrong payload in any inbox, for
/// any burst width or seed.
#[test]
fn hardened_inboxes_never_hold_mangled_payloads() {
    let positions = vec![
        Point::new(0.0, 0.0),
        Point::new(18.0, 0.0),
        Point::new(9.0, 15.0),
    ];
    for burst in [1usize, 4, 8] {
        for seed in 0..8u64 {
            let mut session = HardenedSession::with_faults(
                positions.clone(),
                seed,
                RetransmitPolicy::new(2, 4, 2),
                Wireless::noisy(seed, 0.0, 1.0, burst, None),
                FaultPlan::new(seed).crash_stop(2, 0),
            )
            .expect("triangle is a valid configuration");
            // Timeout is acceptable (movement budget is tiny and the
            // wireless may reject every attempt); mangled delivery is not.
            let _ = session.send(0, 1, b"adv");
            for robot in 0..positions.len() {
                for (_, payload) in session.inbox(robot) {
                    assert_eq!(
                        payload,
                        b"adv".to_vec(),
                        "burst {burst} seed {seed}: inbox holds a mangled payload"
                    );
                }
            }
        }
    }
}

/// The movement channel under fleet adversarial cells: every multi-level
/// coding the factory can express keeps detect-or-reject (`corrupt` = 0)
/// across seeds, and the paced runs replay exactly.
#[test]
fn paced_fleet_cells_keep_detect_or_reject_across_codings() {
    let codings = [
        CodingSpec::MultiLevel {
            levels: 4,
            dwell: 10,
        },
        CodingSpec::Fec {
            levels: 8,
            dwell: 10,
        },
    ];
    for coding in codings {
        for seed in 0..4u64 {
            let spec = SessionSpec {
                protocol: ProtocolKind::Sync2,
                algorithm: None,
                schedule: ScheduleSpec::Bursty {
                    seed: 0x0AD5_CEDD,
                    burst_len: 3,
                    lull_len: 5,
                },
                plan: FaultSpec::Dropout { prob: 0.1 },
                seed,
                cohort: 3,
                payload: b"adv".to_vec(),
                budget_cap: None,
                keep_trace: false,
                coding,
            };
            let report = run_session(&spec);
            assert!(report.error.is_none(), "{coding:?} seed {seed} errored");
            assert_eq!(
                report.corrupt, 0,
                "{coding:?} seed {seed}: a corrupted frame was accepted"
            );
            assert_eq!(run_session(&spec), report, "{coding:?} seed {seed} replay");
        }
    }
}
