//! Property-based integration tests: random valid configurations and
//! payloads through the full stack.

use proptest::prelude::*;
use stigmergy::naming::label_by_sec;
use stigmergy::session::SyncNetwork;
use stigmergy_fleet::{FleetMetrics, MetricsSnapshot, SessionOutcome};
use stigmergy_geometry::Point;

/// Random well-separated configurations with no robot at the SEC centre —
/// the configurations the paper's protocols are defined on.
fn configuration(min_n: usize, max_n: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec((0.0f64..300.0, 0.0f64..300.0), min_n..=max_n)
        .prop_map(|raw| {
            raw.into_iter()
                .map(|(x, y)| Point::new(x, y))
                .collect::<Vec<Point>>()
        })
        .prop_filter("separated", |pts| {
            for i in 0..pts.len() {
                for j in (i + 1)..pts.len() {
                    if pts[i].distance(pts[j]) < 10.0 {
                        return false;
                    }
                }
            }
            true
        })
        .prop_filter("no robot at SEC centre", |pts| {
            let sec = stigmergy_geometry::smallest_enclosing_circle(pts).unwrap();
            pts.iter().all(|p| p.distance(sec.center) > 1.0)
        })
}

/// Random per-session outcomes for the metrics-merge property.
fn outcome() -> impl Strategy<Value = SessionOutcome> {
    (
        any::<bool>(),
        0u64..5_000,
        0u64..50_000,
        0u64..20_000,
        0u64..100,
        0u64..50,
        (0u64..3, 0u64..64, 0u64..8, 0u64..8),
        (0u64..20, 0u64..2_000, any::<bool>(), 0u64..20_000),
    )
        .prop_map(
            |(
                delivered,
                steps_to_delivery,
                steps,
                activations,
                faults,
                retransmissions,
                (corrupt, delivered_bits, fec_corrected, fec_rejected),
                (algo_rounds, algo_bits, algo_decided, activations_to_decision),
            )| {
                SessionOutcome {
                    delivered,
                    steps_to_delivery,
                    steps,
                    activations,
                    faults,
                    retransmissions,
                    corrupt,
                    delivered_bits,
                    fec_corrected,
                    fec_rejected,
                    algo_rounds,
                    algo_bits,
                    algo_decided,
                    activations_to_decision,
                }
            },
        )
}

/// SplitMix64 step — drives the Fisher–Yates shuffle deterministically
/// from a proptest-chosen seed.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fleet_metrics_merge_is_permutation_invariant(
        outcomes in prop::collection::vec(outcome(), 1..40),
        perm_seed in any::<u64>(),
        shard_size in 1usize..8,
    ) {
        // Reference: every outcome recorded in submission order into one
        // sink — what workers=1 observes.
        let serial = FleetMetrics::new();
        for o in &outcomes {
            serial.record_session(o);
        }
        let reference = serial.snapshot();

        // Adversarial steal order: a seeded Fisher–Yates permutation,
        // recorded into shards of arbitrary size and merged — what any
        // steal schedule at any worker count observes.
        let mut permuted = outcomes.clone();
        let mut state = perm_seed;
        for i in (1..permuted.len()).rev() {
            let j = (splitmix(&mut state) % (i as u64 + 1)) as usize;
            permuted.swap(i, j);
        }
        let parts: Vec<MetricsSnapshot> = permuted
            .chunks(shard_size)
            .map(|chunk| {
                let shard = FleetMetrics::new();
                for o in chunk {
                    shard.record_session(o);
                }
                shard.snapshot()
            })
            .collect();
        let merged = MetricsSnapshot::merge_all(&parts);

        prop_assert_eq!(&reference, &merged, "snapshot diverged under permutation");
        prop_assert_eq!(
            reference.to_json(),
            merged.to_json(),
            "JSON must be byte-identical, not just logically equal"
        );
    }

    #[test]
    fn random_configurations_route_with_lex_naming(
        pts in configuration(2, 8),
        payload in prop::collection::vec(any::<u8>(), 0..12),
        seed in any::<u64>(),
    ) {
        let n = pts.len();
        let mut net = SyncNetwork::anonymous_with_direction(pts, seed).unwrap();
        net.send(0, n - 1, &payload).unwrap();
        net.run_until_delivered(200_000).unwrap();
        prop_assert_eq!(net.inbox(n - 1), vec![(0usize, payload)]);
    }

    #[test]
    fn random_configurations_route_with_sec_naming(
        pts in configuration(3, 7),
        payload in prop::collection::vec(any::<u8>(), 1..8),
        seed in any::<u64>(),
    ) {
        let n = pts.len();
        let mut net = SyncNetwork::anonymous(pts, seed).unwrap();
        net.send(1, n - 1, &payload).unwrap();
        net.run_until_delivered(200_000).unwrap();
        prop_assert_eq!(net.inbox(n - 1), vec![(1usize, payload)]);
    }

    #[test]
    fn sec_labelings_are_bijections_everywhere(pts in configuration(2, 12)) {
        for obs in 0..pts.len() {
            let l = label_by_sec(&pts, obs).unwrap();
            let mut seen = vec![false; pts.len()];
            for i in 0..pts.len() {
                let label = l.label_of(i).unwrap();
                prop_assert!(!seen[label], "duplicate label");
                seen[label] = true;
                prop_assert_eq!(l.index_of(label), Some(i));
            }
        }
    }

    #[test]
    fn collision_margin_on_random_configurations(pts in configuration(3, 6)) {
        let n = pts.len();
        let mut net = SyncNetwork::anonymous_with_direction(pts.clone(), 5).unwrap();
        for i in 0..n {
            net.send(i, (i + 1) % n, &[i as u8]).unwrap();
        }
        net.run_until_delivered(200_000).unwrap();
        // Robots never get closer than half their initial min distance
        // (signal excursions reach only half the granular radius).
        let min_initial = (0..n)
            .flat_map(|i| {
                let pts = &pts;
                ((i + 1)..n).map(move |j| pts[i].distance(pts[j]))
            })
            .fold(f64::INFINITY, f64::min);
        prop_assert!(
            net.engine().trace().min_pairwise_distance() >= min_initial / 2.0 - 1e-9
        );
    }
}
