//! Adversarial and degenerate-input tests: scripted worst-case schedules,
//! configurations the paper excludes, and resource-bound behaviour.

use stigmergy::session::{AsyncNetwork, SyncNetwork};
use stigmergy::CoreError;
use stigmergy_geometry::Point;
use stigmergy_integration::ring;
use stigmergy_scheduler::Scripted;

#[test]
fn async_survives_starvation_bursts() {
    // Robot 2 (the receiver) wakes once every 12 instants; the others
    // churn. Delivery must still happen (fairness is all that's needed).
    let script: Vec<Vec<usize>> = (0..12)
        .map(|k| if k == 11 { vec![2] } else { vec![0, 1] })
        .collect();
    let mut net =
        AsyncNetwork::anonymous_with_schedule(ring(3, 20.0), 0xC01, Scripted::new(script))
            .unwrap();
    net.send(0, 2, b"burst-proof").unwrap();
    net.run_until_delivered(2_000_000).unwrap();
    assert_eq!(net.inbox(2), vec![(0, b"burst-proof".to_vec())]);
}

#[test]
fn async_survives_alternating_halves() {
    // The swarm is split into two halves that are never awake together
    // (except t0) — observations across the halves are maximally stale.
    let script: Vec<Vec<usize>> = vec![vec![0, 1], vec![2, 3]];
    let mut net =
        AsyncNetwork::anonymous_with_schedule(ring(4, 25.0), 0xC02, Scripted::new(script))
            .unwrap();
    net.send(0, 3, b"cross-half").unwrap();
    net.run_until_delivered(2_000_000).unwrap();
    assert_eq!(net.inbox(3), vec![(0, b"cross-half".to_vec())]);
}

#[test]
fn coincident_robots_rejected_at_build() {
    let positions = vec![Point::new(0.0, 0.0), Point::new(0.0, 0.0)];
    assert!(matches!(
        SyncNetwork::anonymous_with_direction(positions, 1),
        Err(CoreError::Model(_))
    ));
}

#[test]
fn robot_at_sec_center_rejected_for_sec_naming_only() {
    let positions = vec![
        Point::new(0.0, 10.0),
        Point::new(0.0, -10.0),
        Point::new(0.0, 0.0), // dead centre of the SEC
    ];
    // BySec: the horizon of robot 2 is undefined → send fails eagerly.
    let mut sec = SyncNetwork::anonymous(positions.clone(), 2).unwrap();
    assert!(matches!(sec.send(0, 1, b"x"), Err(CoreError::Naming(_))));
    // ByLex tolerates the same configuration.
    let mut lex = SyncNetwork::anonymous_with_direction(positions, 2).unwrap();
    lex.send(0, 1, b"x").unwrap();
    lex.run_until_delivered(10_000).unwrap();
    assert_eq!(lex.inbox(1), vec![(0, b"x".to_vec())]);
}

#[test]
fn collinear_configurations_work() {
    // All robots on one line: Voronoi cells are slabs, SEC is pinned by
    // the extremes — everything still routes.
    let positions: Vec<Point> = (0..5)
        .map(|i| Point::new(f64::from(i) * 10.0, 0.0))
        .collect();
    let mut net = SyncNetwork::anonymous_with_direction(positions, 0xC03).unwrap();
    net.send(0, 4, b"end to end").unwrap();
    net.run_until_delivered(20_000).unwrap();
    assert_eq!(net.inbox(4), vec![(0, b"end to end".to_vec())]);
}

#[test]
fn very_close_and_very_far_robots() {
    // Granular radii differing by orders of magnitude.
    let positions = vec![
        Point::new(0.0, 0.0),
        Point::new(0.5, 0.0),    // tiny granulars here
        Point::new(500.0, 0.0),  // huge granular there
    ];
    let mut net = SyncNetwork::anonymous_with_direction(positions, 0xC04).unwrap();
    net.send(0, 2, b"far").unwrap();
    net.send(2, 1, b"near").unwrap();
    net.run_until_delivered(20_000).unwrap();
    assert_eq!(net.inbox(2), vec![(0, b"far".to_vec())]);
    assert_eq!(net.inbox(1), vec![(2, b"near".to_vec())]);
}

#[test]
fn timeout_is_clean_and_resumable() {
    let mut net = SyncNetwork::anonymous_with_direction(ring(3, 20.0), 0xC05).unwrap();
    net.send(0, 1, b"slow boat").unwrap();
    // Far too few steps.
    assert!(matches!(
        net.run_until_delivered(3),
        Err(CoreError::Timeout { steps: 3 })
    ));
    // …but the run can simply continue.
    net.run_until_delivered(20_000).unwrap();
    assert_eq!(net.inbox(1), vec![(0, b"slow boat".to_vec())]);
}

#[test]
fn tiny_sigma_still_delivers_sync() {
    // A motion cap far below the natural step size: the engine clamps
    // every move; the synchronous protocol's excursions shrink but decode
    // fine because magnitude does not carry information in bit coding.
    use stigmergy::sync_swarm::SyncSwarm;
    use stigmergy_robots::{Capabilities, Engine};
    let positions = ring(3, 20.0);
    let mut e = Engine::builder()
        .positions(positions)
        .protocols((0..3).map(|_| SyncSwarm::anonymous_with_direction()))
        .capabilities(Capabilities::anonymous_with_direction())
        .sigma(0.8)
        .build()
        .unwrap();
    e.step().unwrap();
    let label = stigmergy::label_by_lex(e.trace().initial())
        .unwrap()
        .label_of(2)
        .unwrap();
    e.protocol_mut(0).send_label(label, b"capped");
    let out = e
        .run_until(20_000, |e| {
            e.protocol(2).inbox().iter().any(|m| m.payload == b"capped")
        })
        .unwrap();
    assert!(out.satisfied);
}

#[test]
fn self_send_and_bad_indices_rejected() {
    let mut net = SyncNetwork::anonymous_with_direction(ring(3, 20.0), 0xC06).unwrap();
    assert!(matches!(net.send(1, 1, b"me"), Err(CoreError::SelfAddressed)));
    assert!(matches!(
        net.send(0, 3, b"x"),
        Err(CoreError::UnknownDestination { dest: 3, cohort: 3 })
    ));
    assert!(matches!(
        net.send(9, 0, b"x"),
        Err(CoreError::UnknownDestination { .. })
    ));
}

#[test]
fn limited_visibility_breaks_the_keyboard_protocols() {
    // §5 poses limited visibility as an open problem. This is the negative
    // half: with a sensing radius smaller than the swarm's diameter,
    // robots disagree on the cohort (their granular keyboards have
    // different slice counts and labels), so routing fails — exactly why
    // the paper's protocols assume unbounded visibility.
    use stigmergy::sync_swarm::SyncSwarm;
    use stigmergy_robots::{Capabilities, Engine};

    // A line of robots where the ends cannot see each other.
    let positions: Vec<Point> = (0..4)
        .map(|i| Point::new(f64::from(i) * 10.0, 0.0))
        .collect();
    let mut e = Engine::builder()
        .positions(positions)
        .protocols((0..4).map(|_| SyncSwarm::anonymous_with_direction()))
        .capabilities(Capabilities::anonymous_with_direction())
        .visibility(15.0) // sees only immediate neighbours
        .build()
        .unwrap();
    e.step().unwrap();
    // Robot 0 sees {0,1}: a 2-robot cohort. Robot 1 sees {0,1,2}: 3.
    assert_eq!(e.protocol(0).geometry().unwrap().cohort(), 2);
    assert_eq!(e.protocol(1).geometry().unwrap().cohort(), 3);
    // A message from 0 addressed by its (wrong) naming never reaches 3 —
    // robot 3 is not even in robot 0's world.
    e.protocol_mut(0).send_label(1, b"doomed");
    let out = e
        .run_until(2_000, |e| {
            (1..4).any(|i| e.protocol(i).inbox().iter().any(|m| m.payload == b"doomed"))
        })
        .unwrap();
    // The bit excursions still happen, but whoever decodes them maps them
    // onto a different labelling — robot 3 can never be addressed, and
    // cross-cohort decodes disagree. The strongest guaranteed statement:
    // robot 3 receives nothing.
    let _ = out;
    assert!(e.protocol(3).inbox().is_empty(), "robot 3 is unreachable");
}

#[test]
fn full_visibility_radius_behaves_like_unbounded() {
    use stigmergy_robots::{Capabilities, Engine};
    use stigmergy::sync_swarm::SyncSwarm;
    let positions = ring(4, 20.0);
    let mut e = Engine::builder()
        .positions(positions)
        .protocols((0..4).map(|_| SyncSwarm::anonymous_with_direction()))
        .capabilities(Capabilities::anonymous_with_direction())
        .visibility(1_000.0) // larger than the diameter: no effect
        .build()
        .unwrap();
    e.step().unwrap();
    assert_eq!(e.protocol(0).geometry().unwrap().cohort(), 4);
    let label = stigmergy::label_by_lex(e.trace().initial())
        .unwrap()
        .label_of(2)
        .unwrap();
    e.protocol_mut(0).send_label(label, b"fine");
    let out = e
        .run_until(2_000, |e| {
            e.protocol(2).inbox().iter().any(|m| m.payload == b"fine")
        })
        .unwrap();
    assert!(out.satisfied);
}
