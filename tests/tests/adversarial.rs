//! Adversarial and degenerate-input tests: scripted worst-case schedules,
//! configurations the paper excludes, and resource-bound behaviour.

use stigmergy::session::{AsyncNetwork, SyncNetwork};
use stigmergy::CoreError;
use stigmergy_geometry::Point;
use stigmergy_integration::ring;
use stigmergy_scheduler::Scripted;

#[test]
fn async_survives_starvation_bursts() {
    // Robot 2 (the receiver) wakes once every 12 instants; the others
    // churn. Delivery must still happen (fairness is all that's needed).
    let script: Vec<Vec<usize>> = (0..12)
        .map(|k| if k == 11 { vec![2] } else { vec![0, 1] })
        .collect();
    let mut net =
        AsyncNetwork::anonymous_with_schedule(ring(3, 20.0), 0xC01, Scripted::new(script)).unwrap();
    net.send(0, 2, b"burst-proof").unwrap();
    net.run_until_delivered(2_000_000).unwrap();
    assert_eq!(net.inbox(2), vec![(0, b"burst-proof".to_vec())]);
}

#[test]
fn async_survives_alternating_halves() {
    // The swarm is split into two halves that are never awake together
    // (except t0) — observations across the halves are maximally stale.
    let script: Vec<Vec<usize>> = vec![vec![0, 1], vec![2, 3]];
    let mut net =
        AsyncNetwork::anonymous_with_schedule(ring(4, 25.0), 0xC02, Scripted::new(script)).unwrap();
    net.send(0, 3, b"cross-half").unwrap();
    net.run_until_delivered(2_000_000).unwrap();
    assert_eq!(net.inbox(3), vec![(0, b"cross-half".to_vec())]);
}

#[test]
fn coincident_robots_rejected_at_build() {
    let positions = vec![Point::new(0.0, 0.0), Point::new(0.0, 0.0)];
    assert!(matches!(
        SyncNetwork::anonymous_with_direction(positions, 1),
        Err(CoreError::Model(_))
    ));
}

#[test]
fn robot_at_sec_center_rejected_for_sec_naming_only() {
    let positions = vec![
        Point::new(0.0, 10.0),
        Point::new(0.0, -10.0),
        Point::new(0.0, 0.0), // dead centre of the SEC
    ];
    // BySec: the horizon of robot 2 is undefined → send fails eagerly.
    let mut sec = SyncNetwork::anonymous(positions.clone(), 2).unwrap();
    assert!(matches!(sec.send(0, 1, b"x"), Err(CoreError::Naming(_))));
    // ByLex tolerates the same configuration.
    let mut lex = SyncNetwork::anonymous_with_direction(positions, 2).unwrap();
    lex.send(0, 1, b"x").unwrap();
    lex.run_until_delivered(10_000).unwrap();
    assert_eq!(lex.inbox(1), vec![(0, b"x".to_vec())]);
}

#[test]
fn collinear_configurations_work() {
    // All robots on one line: Voronoi cells are slabs, SEC is pinned by
    // the extremes — everything still routes.
    let positions: Vec<Point> = (0..5)
        .map(|i| Point::new(f64::from(i) * 10.0, 0.0))
        .collect();
    let mut net = SyncNetwork::anonymous_with_direction(positions, 0xC03).unwrap();
    net.send(0, 4, b"end to end").unwrap();
    net.run_until_delivered(20_000).unwrap();
    assert_eq!(net.inbox(4), vec![(0, b"end to end".to_vec())]);
}

#[test]
fn very_close_and_very_far_robots() {
    // Granular radii differing by orders of magnitude.
    let positions = vec![
        Point::new(0.0, 0.0),
        Point::new(0.5, 0.0),   // tiny granulars here
        Point::new(500.0, 0.0), // huge granular there
    ];
    let mut net = SyncNetwork::anonymous_with_direction(positions, 0xC04).unwrap();
    net.send(0, 2, b"far").unwrap();
    net.send(2, 1, b"near").unwrap();
    net.run_until_delivered(20_000).unwrap();
    assert_eq!(net.inbox(2), vec![(0, b"far".to_vec())]);
    assert_eq!(net.inbox(1), vec![(2, b"near".to_vec())]);
}

#[test]
fn timeout_is_clean_and_resumable() {
    let mut net = SyncNetwork::anonymous_with_direction(ring(3, 20.0), 0xC05).unwrap();
    net.send(0, 1, b"slow boat").unwrap();
    // Far too few steps.
    assert!(matches!(
        net.run_until_delivered(3),
        Err(CoreError::Timeout { steps: 3 })
    ));
    // …but the run can simply continue.
    net.run_until_delivered(20_000).unwrap();
    assert_eq!(net.inbox(1), vec![(0, b"slow boat".to_vec())]);
}

#[test]
fn tiny_sigma_still_delivers_sync() {
    // A motion cap far below the natural step size: the engine clamps
    // every move; the synchronous protocol's excursions shrink but decode
    // fine because magnitude does not carry information in bit coding.
    use stigmergy::sync_swarm::SyncSwarm;
    use stigmergy_robots::{Capabilities, Engine};
    let positions = ring(3, 20.0);
    let mut e = Engine::builder()
        .positions(positions)
        .protocols((0..3).map(|_| SyncSwarm::anonymous_with_direction()))
        .capabilities(Capabilities::anonymous_with_direction())
        .sigma(0.8)
        .build()
        .unwrap();
    e.step().unwrap();
    let label = stigmergy::label_by_lex(e.trace().initial())
        .unwrap()
        .label_of(2)
        .unwrap();
    e.protocol_mut(0).send_label(label, b"capped");
    let out = e
        .run_until(20_000, |e| {
            e.protocol(2).inbox().iter().any(|m| m.payload == b"capped")
        })
        .unwrap();
    assert!(out.satisfied);
}

#[test]
fn self_send_and_bad_indices_rejected() {
    let mut net = SyncNetwork::anonymous_with_direction(ring(3, 20.0), 0xC06).unwrap();
    assert!(matches!(
        net.send(1, 1, b"me"),
        Err(CoreError::SelfAddressed)
    ));
    assert!(matches!(
        net.send(0, 3, b"x"),
        Err(CoreError::UnknownDestination { dest: 3, cohort: 3 })
    ));
    assert!(matches!(
        net.send(9, 0, b"x"),
        Err(CoreError::UnknownDestination { .. })
    ));
}

#[test]
fn limited_visibility_breaks_the_keyboard_protocols() {
    // §5 poses limited visibility as an open problem. This is the negative
    // half: with a sensing radius smaller than the swarm's diameter,
    // robots disagree on the cohort (their granular keyboards have
    // different slice counts and labels), so routing fails — exactly why
    // the paper's protocols assume unbounded visibility.
    use stigmergy::sync_swarm::SyncSwarm;
    use stigmergy_robots::{Capabilities, Engine};

    // A line of robots where the ends cannot see each other.
    let positions: Vec<Point> = (0..4)
        .map(|i| Point::new(f64::from(i) * 10.0, 0.0))
        .collect();
    let mut e = Engine::builder()
        .positions(positions)
        .protocols((0..4).map(|_| SyncSwarm::anonymous_with_direction()))
        .capabilities(Capabilities::anonymous_with_direction())
        .visibility(15.0) // sees only immediate neighbours
        .build()
        .unwrap();
    e.step().unwrap();
    // Robot 0 sees {0,1}: a 2-robot cohort. Robot 1 sees {0,1,2}: 3.
    assert_eq!(e.protocol(0).geometry().unwrap().cohort(), 2);
    assert_eq!(e.protocol(1).geometry().unwrap().cohort(), 3);
    // A message from 0 addressed by its (wrong) naming never reaches 3 —
    // robot 3 is not even in robot 0's world.
    e.protocol_mut(0).send_label(1, b"doomed");
    let out = e
        .run_until(2_000, |e| {
            (1..4).any(|i| e.protocol(i).inbox().iter().any(|m| m.payload == b"doomed"))
        })
        .unwrap();
    // The bit excursions still happen, but whoever decodes them maps them
    // onto a different labelling — robot 3 can never be addressed, and
    // cross-cohort decodes disagree. The strongest guaranteed statement:
    // robot 3 receives nothing.
    let _ = out;
    assert!(e.protocol(3).inbox().is_empty(), "robot 3 is unreachable");
}

// ---------------------------------------------------------------------------
// Fault-injection matrix: every protocol of the paper's capability table
// (§3 pair + §3 swarm ×3 namings, §4 pair + §4 swarm) under every
// adversarial-but-legal schedule × every fault plan. The matrix is built
// and dispatched by the fleet runtime (`BatchSpec::conformance_matrix`),
// which reproduces the historical scenario parameters exactly at seed 0
// (frame seeds 0xFA01/0xFA02/0xB0_01…04, plan seeds 0xA1/0xA2/frame ^
// 0x5EED). The invariants, asserted per `RunReport`:
//
//   1. the collision invariant is never violated — injected faults may
//      starve, shorten, or hide moves, but robots never meet;
//   2. every run ends cleanly — the message is either delivered intact or
//      the budget expires without a panic or a model error;
//   3. no corrupted payload is ever delivered (detect-or-reject end to
//      end: a garbled excursion sequence fails the frame CRC and is
//      dropped, never surfaced as a different message);
//   4. asynchronous protocols, whose only model assumption is fairness,
//      must still *deliver* under every crash-free plan — the adversarial
//      schedules are all fair, so §4's guarantees hold.
//
// Synchronous protocols are outside their regime here (the schedules are
// not synchronous), so for them delivery is not required — only clean
// behaviour. A crash-stop removes a robot the §4 protocols need to keep
// observing, so crash plans must end in a clean timeout. Observation
// dropout breaks Lemma 4.1's premise — a robot whose *view* was dropped
// still *moves*, so "you changed twice" no longer implies "you saw me" —
// so delivery there is best-effort (recovering it is the hardened session
// layer's job).

use stigmergy::sync_swarm::SyncSwarm;
use stigmergy_fleet::{run_batch, BatchSpec, RunReport};
use stigmergy_robots::engine::DEFAULT_COLLISION_EPS;
use stigmergy_robots::{Capabilities, Engine, Trace};
use stigmergy_scheduler::{FaultPlan, ScheduleSpec, WakeAllFirst};

const ADV_PAYLOAD: &[u8] = b"adv";

/// The §4 invariants, keyed by plan kind. Only asynchronous protocols
/// carry a delivery obligation; for synchronous ones any clean outcome
/// passes (clean-ness itself is checked for every run).
fn assert_async_invariants(run: &RunReport) {
    let cell = format!("{}/{}/{}", run.protocol, run.schedule, run.plan);
    match run.plan {
        // The crashed robot is load-bearing in every cohort used here
        // (receiver in a pair, essential bystander in a swarm): only a
        // clean timeout is acceptable.
        "crash" => assert!(!run.delivered, "delivery past a crash in {cell}"),
        // Motion faults never break Lemma 4.1 — any movement, however
        // short, still counts as a change — so §4's delivery guarantee
        // must survive non-rigid motion.
        "non-rigid" => assert!(run.delivered, "async delivery failed in {cell}"),
        _ => {}
    }
}

#[test]
fn fault_matrix_via_fleet() {
    let spec = BatchSpec::conformance_matrix(vec![0]);
    let report = run_batch(&spec, 2);
    // 6 protocols × 3 schedules × 3 plans.
    assert_eq!(report.runs.len(), 54, "matrix shape");
    for run in &report.runs {
        let cell = format!("{}/{}/{}", run.protocol, run.schedule, run.plan);
        // Invariant 2: clean completion (collisions and model errors are
        // reported as `error`).
        assert!(run.error.is_none(), "{cell}: {:?}", run.error);
        // Invariant 1: the recorded trace never brings robots together.
        assert!(
            run.min_distance >= DEFAULT_COLLISION_EPS,
            "collision invariant violated in {cell}"
        );
        // Invariant 3: detect-or-reject — nothing *different* decodes.
        assert_eq!(run.corrupt, 0, "corrupted payload surfaced in {cell}");
        // Invariant 4.
        if matches!(run.protocol, "async2" | "async-swarm") {
            assert_async_invariants(run);
        }
    }
    // The matrix must actually exercise every cell kind.
    for protocol in ["sync2", "async2", "sync-swarm-routed", "async-swarm"] {
        assert!(report.runs.iter().any(|r| r.protocol == protocol));
    }
    assert_eq!(report.metrics.sessions, 54);
    assert_eq!(
        report.metrics.delivered + report.metrics.timed_out,
        report.metrics.sessions
    );
}

// ---------------------------------------------------------------------------
// Algorithm axis of the conformance matrix: the three distributed
// algorithms (flooding broadcast, leader election, binary agreement)
// over the §4 anonymous-swarm channel, each under the worst-case-fair
// schedule with and without the crash-filtering wrapper, under a
// motion-fault plan and a crash-stop plan. The obligations are stronger
// than the transport matrix's: algorithms must *terminate with a
// decision* even past a crash (the perfect-failure-detector regime —
// survivors suspect the crashed robot and exclude it), not merely time
// out cleanly.

#[test]
fn algorithm_matrix_via_fleet() {
    let spec = BatchSpec::algorithm_matrix(vec![0]);
    let report = run_batch(&spec, 2);
    // 3 algorithms × 2 schedules × 2 plans.
    assert_eq!(report.runs.len(), 12, "algorithm matrix shape");
    for run in &report.runs {
        let algorithm = run.algorithm.expect("algorithm sessions only");
        let cell = format!("{algorithm}/{}/{}", run.schedule, run.plan);
        // The transport invariants carry over unchanged.
        assert!(run.error.is_none(), "{cell}: {:?}", run.error);
        assert!(
            run.min_distance >= DEFAULT_COLLISION_EPS,
            "collision invariant violated in {cell}"
        );
        assert_eq!(run.corrupt, 0, "unroutable frame surfaced in {cell}");
        // The algorithm obligations: terminate in budget, decide, and
        // agree — crash plans included.
        let algo = run.algo.expect("algorithm counters recorded");
        assert!(
            algo.activations_to_decision.is_some(),
            "{cell}: timed out instead of terminating"
        );
        assert!(!algo.rejected, "{cell}: rejected a decidable configuration");
        assert!(
            algo.decision.is_some(),
            "{cell}: terminated without deciding"
        );
        assert!(algo.bits > 0, "{cell}: decided without using the channel");
        assert!(algo.rounds >= 1, "{cell}: decided in zero rounds");
        assert!(run.delivered, "{cell}: decision not counted as delivery");
    }
    // Every algorithm appears, and the crash cells really decide among
    // the survivors: flooding covers only the two live robots, and
    // agreement (inputs 0b101, robot 1's `0` crashed away) decides 1.
    for algorithm in ["flood", "election", "agreement"] {
        assert!(report.runs.iter().any(|r| r.algorithm == Some(algorithm)));
    }
    for run in &report.runs {
        if run.plan != "crash" {
            continue;
        }
        match run.algorithm {
            Some("flood") => assert_eq!(run.algo.unwrap().decision, Some(2)),
            Some("agreement") => assert_eq!(run.algo.unwrap().decision, Some(1)),
            _ => {}
        }
    }
    assert_eq!(report.metrics.sessions, 12);
    assert_eq!(report.metrics.algo_decided, 12);
}

/// The workers-don't-matter guarantee, extended to the algorithm axis:
/// the full algorithm matrix at `workers = 1` and `workers = 4` yields
/// byte-identical per-session reports (trace fingerprints included) and
/// byte-identical merged metrics JSON.
#[test]
fn algorithm_matrix_is_worker_count_invariant() {
    let spec = BatchSpec::algorithm_matrix(vec![0]);
    let serial = run_batch(&spec, 1);
    let pooled = run_batch(&spec, 4);
    assert_eq!(serial.runs.len(), pooled.runs.len());
    for (a, b) in serial.runs.iter().zip(&pooled.runs) {
        assert_eq!(
            a.trace_hash,
            b.trace_hash,
            "trace fingerprint diverged across worker counts in {}/{}/{}",
            a.algorithm.unwrap_or(a.protocol),
            a.schedule,
            a.plan
        );
        assert_eq!(a, b, "run report diverged across worker counts");
    }
    assert_eq!(serial.metrics, pooled.metrics);
    assert_eq!(serial.metrics.to_json(), pooled.metrics.to_json());
}

/// The acceptance criterion of the fault subsystem: the same `FaultPlan`
/// seed yields a bit-identical `Trace` (positions, activations, *and*
/// fault events), and a different seed yields a different one.
#[test]
fn fault_runs_replay_deterministically_end_to_end() {
    fn faulted_trace(plan_seed: u64) -> Trace {
        let n = 3;
        let mut e = Engine::builder()
            .positions(ring(n, 18.0))
            .protocols((0..n).map(|_| SyncSwarm::anonymous_with_direction()))
            .capabilities(Capabilities::anonymous_with_direction())
            .schedule(WakeAllFirst::new(
                ScheduleSpec::Bursty {
                    seed: 0x0AD5_CEDD,
                    burst_len: 3,
                    lull_len: 5,
                }
                .build(n),
            ))
            .frame_seed(0xDE7)
            .build()
            .unwrap();
        e.step().unwrap();
        e.set_fault_plan(
            FaultPlan::new(plan_seed)
                .non_rigid(0.4, 0.5)
                .observation_dropout(0.2)
                .crash_stop(1, 300),
        );
        let label = stigmergy::label_by_lex(e.trace().initial())
            .unwrap()
            .label_of(2)
            .unwrap();
        e.protocol_mut(0).send_label(label, ADV_PAYLOAD);
        e.run_until(2_000, |_| false).unwrap();
        e.trace().clone()
    }

    let a = faulted_trace(0xCAFE);
    let b = faulted_trace(0xCAFE);
    assert_eq!(a, b, "same fault seed must replay identically");
    assert!(
        !a.faults().is_empty(),
        "the plan must actually have fired faults"
    );
    let c = faulted_trace(0xCAFE + 1);
    assert_ne!(a, c, "a different fault seed must perturb the run");
}

#[test]
fn full_visibility_radius_behaves_like_unbounded() {
    use stigmergy::sync_swarm::SyncSwarm;
    use stigmergy_robots::{Capabilities, Engine};
    let positions = ring(4, 20.0);
    let mut e = Engine::builder()
        .positions(positions)
        .protocols((0..4).map(|_| SyncSwarm::anonymous_with_direction()))
        .capabilities(Capabilities::anonymous_with_direction())
        .visibility(1_000.0) // larger than the diameter: no effect
        .build()
        .unwrap();
    e.step().unwrap();
    assert_eq!(e.protocol(0).geometry().unwrap().cohort(), 4);
    let label = stigmergy::label_by_lex(e.trace().initial())
        .unwrap()
        .label_of(2)
        .unwrap();
    e.protocol_mut(0).send_label(label, b"fine");
    let out = e
        .run_until(2_000, |e| {
            e.protocol(2).inbox().iter().any(|m| m.payload == b"fine")
        })
        .unwrap();
    assert!(out.satisfied);
}
