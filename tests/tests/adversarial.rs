//! Adversarial and degenerate-input tests: scripted worst-case schedules,
//! configurations the paper excludes, and resource-bound behaviour.

use stigmergy::session::{AsyncNetwork, SyncNetwork};
use stigmergy::CoreError;
use stigmergy_geometry::Point;
use stigmergy_integration::ring;
use stigmergy_scheduler::Scripted;

#[test]
fn async_survives_starvation_bursts() {
    // Robot 2 (the receiver) wakes once every 12 instants; the others
    // churn. Delivery must still happen (fairness is all that's needed).
    let script: Vec<Vec<usize>> = (0..12)
        .map(|k| if k == 11 { vec![2] } else { vec![0, 1] })
        .collect();
    let mut net =
        AsyncNetwork::anonymous_with_schedule(ring(3, 20.0), 0xC01, Scripted::new(script)).unwrap();
    net.send(0, 2, b"burst-proof").unwrap();
    net.run_until_delivered(2_000_000).unwrap();
    assert_eq!(net.inbox(2), vec![(0, b"burst-proof".to_vec())]);
}

#[test]
fn async_survives_alternating_halves() {
    // The swarm is split into two halves that are never awake together
    // (except t0) — observations across the halves are maximally stale.
    let script: Vec<Vec<usize>> = vec![vec![0, 1], vec![2, 3]];
    let mut net =
        AsyncNetwork::anonymous_with_schedule(ring(4, 25.0), 0xC02, Scripted::new(script)).unwrap();
    net.send(0, 3, b"cross-half").unwrap();
    net.run_until_delivered(2_000_000).unwrap();
    assert_eq!(net.inbox(3), vec![(0, b"cross-half".to_vec())]);
}

#[test]
fn coincident_robots_rejected_at_build() {
    let positions = vec![Point::new(0.0, 0.0), Point::new(0.0, 0.0)];
    assert!(matches!(
        SyncNetwork::anonymous_with_direction(positions, 1),
        Err(CoreError::Model(_))
    ));
}

#[test]
fn robot_at_sec_center_rejected_for_sec_naming_only() {
    let positions = vec![
        Point::new(0.0, 10.0),
        Point::new(0.0, -10.0),
        Point::new(0.0, 0.0), // dead centre of the SEC
    ];
    // BySec: the horizon of robot 2 is undefined → send fails eagerly.
    let mut sec = SyncNetwork::anonymous(positions.clone(), 2).unwrap();
    assert!(matches!(sec.send(0, 1, b"x"), Err(CoreError::Naming(_))));
    // ByLex tolerates the same configuration.
    let mut lex = SyncNetwork::anonymous_with_direction(positions, 2).unwrap();
    lex.send(0, 1, b"x").unwrap();
    lex.run_until_delivered(10_000).unwrap();
    assert_eq!(lex.inbox(1), vec![(0, b"x".to_vec())]);
}

#[test]
fn collinear_configurations_work() {
    // All robots on one line: Voronoi cells are slabs, SEC is pinned by
    // the extremes — everything still routes.
    let positions: Vec<Point> = (0..5)
        .map(|i| Point::new(f64::from(i) * 10.0, 0.0))
        .collect();
    let mut net = SyncNetwork::anonymous_with_direction(positions, 0xC03).unwrap();
    net.send(0, 4, b"end to end").unwrap();
    net.run_until_delivered(20_000).unwrap();
    assert_eq!(net.inbox(4), vec![(0, b"end to end".to_vec())]);
}

#[test]
fn very_close_and_very_far_robots() {
    // Granular radii differing by orders of magnitude.
    let positions = vec![
        Point::new(0.0, 0.0),
        Point::new(0.5, 0.0),   // tiny granulars here
        Point::new(500.0, 0.0), // huge granular there
    ];
    let mut net = SyncNetwork::anonymous_with_direction(positions, 0xC04).unwrap();
    net.send(0, 2, b"far").unwrap();
    net.send(2, 1, b"near").unwrap();
    net.run_until_delivered(20_000).unwrap();
    assert_eq!(net.inbox(2), vec![(0, b"far".to_vec())]);
    assert_eq!(net.inbox(1), vec![(2, b"near".to_vec())]);
}

#[test]
fn timeout_is_clean_and_resumable() {
    let mut net = SyncNetwork::anonymous_with_direction(ring(3, 20.0), 0xC05).unwrap();
    net.send(0, 1, b"slow boat").unwrap();
    // Far too few steps.
    assert!(matches!(
        net.run_until_delivered(3),
        Err(CoreError::Timeout { steps: 3 })
    ));
    // …but the run can simply continue.
    net.run_until_delivered(20_000).unwrap();
    assert_eq!(net.inbox(1), vec![(0, b"slow boat".to_vec())]);
}

#[test]
fn tiny_sigma_still_delivers_sync() {
    // A motion cap far below the natural step size: the engine clamps
    // every move; the synchronous protocol's excursions shrink but decode
    // fine because magnitude does not carry information in bit coding.
    use stigmergy::sync_swarm::SyncSwarm;
    use stigmergy_robots::{Capabilities, Engine};
    let positions = ring(3, 20.0);
    let mut e = Engine::builder()
        .positions(positions)
        .protocols((0..3).map(|_| SyncSwarm::anonymous_with_direction()))
        .capabilities(Capabilities::anonymous_with_direction())
        .sigma(0.8)
        .build()
        .unwrap();
    e.step().unwrap();
    let label = stigmergy::label_by_lex(e.trace().initial())
        .unwrap()
        .label_of(2)
        .unwrap();
    e.protocol_mut(0).send_label(label, b"capped");
    let out = e
        .run_until(20_000, |e| {
            e.protocol(2).inbox().iter().any(|m| m.payload == b"capped")
        })
        .unwrap();
    assert!(out.satisfied);
}

#[test]
fn self_send_and_bad_indices_rejected() {
    let mut net = SyncNetwork::anonymous_with_direction(ring(3, 20.0), 0xC06).unwrap();
    assert!(matches!(
        net.send(1, 1, b"me"),
        Err(CoreError::SelfAddressed)
    ));
    assert!(matches!(
        net.send(0, 3, b"x"),
        Err(CoreError::UnknownDestination { dest: 3, cohort: 3 })
    ));
    assert!(matches!(
        net.send(9, 0, b"x"),
        Err(CoreError::UnknownDestination { .. })
    ));
}

#[test]
fn limited_visibility_breaks_the_keyboard_protocols() {
    // §5 poses limited visibility as an open problem. This is the negative
    // half: with a sensing radius smaller than the swarm's diameter,
    // robots disagree on the cohort (their granular keyboards have
    // different slice counts and labels), so routing fails — exactly why
    // the paper's protocols assume unbounded visibility.
    use stigmergy::sync_swarm::SyncSwarm;
    use stigmergy_robots::{Capabilities, Engine};

    // A line of robots where the ends cannot see each other.
    let positions: Vec<Point> = (0..4)
        .map(|i| Point::new(f64::from(i) * 10.0, 0.0))
        .collect();
    let mut e = Engine::builder()
        .positions(positions)
        .protocols((0..4).map(|_| SyncSwarm::anonymous_with_direction()))
        .capabilities(Capabilities::anonymous_with_direction())
        .visibility(15.0) // sees only immediate neighbours
        .build()
        .unwrap();
    e.step().unwrap();
    // Robot 0 sees {0,1}: a 2-robot cohort. Robot 1 sees {0,1,2}: 3.
    assert_eq!(e.protocol(0).geometry().unwrap().cohort(), 2);
    assert_eq!(e.protocol(1).geometry().unwrap().cohort(), 3);
    // A message from 0 addressed by its (wrong) naming never reaches 3 —
    // robot 3 is not even in robot 0's world.
    e.protocol_mut(0).send_label(1, b"doomed");
    let out = e
        .run_until(2_000, |e| {
            (1..4).any(|i| e.protocol(i).inbox().iter().any(|m| m.payload == b"doomed"))
        })
        .unwrap();
    // The bit excursions still happen, but whoever decodes them maps them
    // onto a different labelling — robot 3 can never be addressed, and
    // cross-cohort decodes disagree. The strongest guaranteed statement:
    // robot 3 receives nothing.
    let _ = out;
    assert!(e.protocol(3).inbox().is_empty(), "robot 3 is unreachable");
}

// ---------------------------------------------------------------------------
// Fault-injection matrix: every protocol of the paper's capability table
// (§3 pair + §3 swarm ×3 namings, §4 pair + §4 swarm) under every
// adversarial-but-legal schedule × every fault plan. The invariants:
//
//   1. the collision invariant is never violated — injected faults may
//      starve, shorten, or hide moves, but robots never meet;
//   2. every run ends cleanly — the message is either delivered intact or
//      the budget expires without a panic or a model error;
//   3. no corrupted payload is ever delivered (detect-or-reject end to
//      end: a garbled excursion sequence fails the frame CRC and is
//      dropped, never surfaced as a different message);
//   4. asynchronous protocols, whose only model assumption is fairness,
//      must still *deliver* under every crash-free plan — the adversarial
//      schedules are all fair, so §4's guarantees hold.
//
// Synchronous protocols are outside their regime here (the schedules are
// not synchronous), so for them delivery is not required — only clean
// behaviour. A crash-stop removes a robot the §4 protocols need to keep
// observing, so crash plans must end in a clean timeout for pairs.

use stigmergy::async2::{Async2, DriftPolicy};
use stigmergy::async_n::AsyncSwarm;
use stigmergy::sync2::Sync2;
use stigmergy::sync_swarm::SyncSwarm;
use stigmergy_robots::engine::DEFAULT_COLLISION_EPS;
use stigmergy_robots::{Capabilities, Engine, MovementProtocol, Trace};
use stigmergy_scheduler::{Bursty, FaultPlan, LaggingRobot, Schedule, WakeAllFirst, WorstCaseFair};

const ADV_PAYLOAD: &[u8] = b"adv";
const ADV_SCHEDULES: [&str; 3] = ["lagging-robot", "bursty", "worst-case-fair"];
const ADV_PLANS: [&str; 3] = ["non-rigid", "dropout", "crash"];

/// An adversarial-but-legal schedule. `WakeAllFirst` keeps the engine's
/// preprocessing instant (t=0, everyone observes the initial configuration)
/// intact; from t=1 on the adversary rules.
fn adv_schedule(kind: &str, n: usize) -> WakeAllFirst<Box<dyn Schedule>> {
    let inner: Box<dyn Schedule> = match kind {
        // The message's receiver is the starved victim.
        "lagging-robot" => Box::new(LaggingRobot::new(n - 1, 8)),
        "bursty" => Box::new(Bursty::new(0x0AD5_CEDD, 3, 5)),
        "worst-case-fair" => Box::new(WorstCaseFair::new(6)),
        other => panic!("unknown schedule kind {other}"),
    };
    WakeAllFirst::new(inner)
}

fn adv_plan(kind: &str, seed: u64) -> FaultPlan {
    match kind {
        "non-rigid" => FaultPlan::new(seed).non_rigid(0.35, 0.5),
        "dropout" => FaultPlan::new(seed).observation_dropout(0.1),
        // Robot 1 crash-stops mid-run: the receiver in a pair, an
        // essential bystander in a swarm (§4.2 senders wait for *every*
        // robot to keep changing), so senders stall and must time out.
        "crash" => FaultPlan::new(seed).crash_stop(1, 35).non_rigid(0.5, 0.25),
        other => panic!("unknown plan kind {other}"),
    }
}

/// Crash plans cannot deliver (the crashed robot is load-bearing in every
/// cohort used here), so burning a full delivery budget on them is waste:
/// a shorter budget proves the clean timeout just as well.
fn adv_budget(plan_kind: &str, full: u64) -> u64 {
    if plan_kind == "crash" {
        full.min(20_000)
    } else {
        full
    }
}

/// Runs one faulted engine to completion: one benign preprocessing instant
/// (geometry is frozen from a clean full view), then the fault plan is
/// armed, one message is queued, and the run continues until delivery or
/// budget exhaustion. Panics on any collision or model error; checks the
/// recorded trace against the collision invariant. Returns whether the
/// message arrived.
fn drive<P, Q, D>(mut e: Engine<P>, plan: FaultPlan, queue: Q, delivered: D, budget: u64) -> bool
where
    P: MovementProtocol,
    Q: FnOnce(&mut Engine<P>),
    D: Fn(&Engine<P>) -> bool,
{
    e.step().expect("benign preprocessing instant must succeed");
    e.set_fault_plan(plan);
    queue(&mut e);
    let out = e
        .run_until(budget, |e| delivered(e))
        .expect("injected faults must never induce a collision");
    assert!(
        e.trace().min_pairwise_distance() >= DEFAULT_COLLISION_EPS,
        "collision invariant violated in recorded trace"
    );
    out.satisfied
}

fn pair_positions() -> [Point; 2] {
    [Point::new(0.0, 0.0), Point::new(14.0, 0.0)]
}

fn run_sync2(schedule_kind: &str, plan_kind: &str) -> bool {
    let e = Engine::builder()
        .positions(pair_positions())
        .protocols([Sync2::new(), Sync2::new()])
        .schedule(adv_schedule(schedule_kind, 2))
        .frame_seed(0xFA01)
        .build()
        .unwrap();
    drive(
        e,
        adv_plan(plan_kind, 0xA1),
        |e| e.protocol_mut(0).send(ADV_PAYLOAD),
        |e| {
            let inbox = e.protocol(1).inbox();
            // Detect-or-reject: nothing *different* ever decodes.
            assert!(inbox.iter().all(|m| m.as_slice() == ADV_PAYLOAD));
            !inbox.is_empty()
        },
        adv_budget(plan_kind, 40_000),
    )
}

fn run_async2(schedule_kind: &str, plan_kind: &str) -> bool {
    let e = Engine::builder()
        .positions(pair_positions())
        .protocols([
            Async2::new(DriftPolicy::Diverge),
            Async2::new(DriftPolicy::Diverge),
        ])
        .schedule(adv_schedule(schedule_kind, 2))
        .frame_seed(0xFA02)
        .build()
        .unwrap();
    drive(
        e,
        adv_plan(plan_kind, 0xA2),
        |e| e.protocol_mut(0).send(ADV_PAYLOAD),
        |e| {
            let inbox = e.protocol(1).inbox();
            assert!(inbox.iter().all(|m| m.as_slice() == ADV_PAYLOAD));
            !inbox.is_empty()
        },
        adv_budget(plan_kind, 600_000),
    )
}

/// The three swarm cohorts share a shape: robot 0 sends to robot n−1 by
/// the naming the capability set affords; robot 1 is the crash victim.
fn run_swarm<P, F, L>(
    make: F,
    caps: Capabilities,
    label_of_receiver: L,
    schedule_kind: &str,
    plan_kind: &str,
    seed: u64,
    budget: u64,
) -> bool
where
    P: MovementProtocol + SwarmProto + 'static,
    F: Fn() -> P,
    L: Fn(&Engine<P>) -> usize,
{
    let n = 3;
    let e = Engine::builder()
        .positions(ring(n, 18.0))
        .protocols((0..n).map(|_| make()))
        .capabilities(caps)
        .schedule(adv_schedule(schedule_kind, n))
        .frame_seed(seed)
        .build()
        .unwrap();
    drive(
        e,
        adv_plan(plan_kind, seed ^ 0x5EED),
        |e| {
            let label = label_of_receiver(e);
            e.protocol_mut(0).send_to(label, ADV_PAYLOAD);
        },
        |e| {
            let inbox = e.protocol(n - 1).payloads();
            assert!(inbox.iter().all(|p| p.as_slice() == ADV_PAYLOAD));
            !inbox.is_empty()
        },
        adv_budget(plan_kind, budget),
    )
}

/// Uniform access to the two swarm protocol types' queues and inboxes.
trait SwarmProto {
    fn send_to(&mut self, label: usize, payload: &[u8]);
    fn payloads(&self) -> Vec<Vec<u8>>;
}

impl SwarmProto for SyncSwarm {
    fn send_to(&mut self, label: usize, payload: &[u8]) {
        self.send_label(label, payload);
    }

    fn payloads(&self) -> Vec<Vec<u8>> {
        self.inbox().iter().map(|m| m.payload.clone()).collect()
    }
}

impl SwarmProto for AsyncSwarm {
    fn send_to(&mut self, label: usize, payload: &[u8]) {
        self.send_label(label, payload);
    }

    fn payloads(&self) -> Vec<Vec<u8>> {
        self.inbox().iter().map(|m| m.payload.clone()).collect()
    }
}

#[test]
fn fault_matrix_sync_pair() {
    for schedule in ADV_SCHEDULES {
        for plan in ADV_PLANS {
            // Synchronous protocol outside its regime: any clean outcome.
            let _delivered = run_sync2(schedule, plan);
        }
    }
}

#[test]
fn fault_matrix_async_pair() {
    for schedule in ADV_SCHEDULES {
        for plan in ADV_PLANS {
            let delivered = run_async2(schedule, plan);
            match plan {
                // The peer is gone: only a clean timeout is acceptable
                // (reaching here at all proves no panic / collision).
                "crash" => {
                    assert!(!delivered, "delivery to a crashed peer under {schedule}");
                }
                // Motion faults never break Lemma 4.1 — any movement,
                // however short, still counts as a change — so §4's
                // delivery guarantee must survive non-rigid motion.
                "non-rigid" => {
                    assert!(delivered, "async pair failed under {schedule}/{plan}");
                }
                // Observation dropout breaks the lemma's premise: a robot
                // whose *view* was dropped still *moves*, so "you changed
                // twice" no longer implies "you saw me". A missed zone
                // transition loses a bit and the frame CRC rejects the
                // rest — delivery is best-effort here, and recovering it
                // is the hardened session layer's job (retransmission).
                _ => {}
            }
        }
    }
}

#[test]
fn fault_matrix_sync_swarm_routed() {
    for schedule in ADV_SCHEDULES {
        for plan in ADV_PLANS {
            let _ = run_swarm(
                SyncSwarm::routed,
                Capabilities::identified_with_direction(),
                |e| {
                    stigmergy::label_by_id(e.ids().unwrap())
                        .unwrap()
                        .label_of(2)
                        .unwrap()
                },
                schedule,
                plan,
                0xB0_01,
                40_000,
            );
        }
    }
}

#[test]
fn fault_matrix_sync_swarm_lex() {
    for schedule in ADV_SCHEDULES {
        for plan in ADV_PLANS {
            let _ = run_swarm(
                SyncSwarm::anonymous_with_direction,
                Capabilities::anonymous_with_direction(),
                |e| {
                    stigmergy::label_by_lex(e.trace().initial())
                        .unwrap()
                        .label_of(2)
                        .unwrap()
                },
                schedule,
                plan,
                0xB0_02,
                40_000,
            );
        }
    }
}

#[test]
fn fault_matrix_sync_swarm_sec() {
    for schedule in ADV_SCHEDULES {
        for plan in ADV_PLANS {
            let _ = run_swarm(
                SyncSwarm::anonymous,
                Capabilities::anonymous(),
                |e| {
                    stigmergy::label_by_sec(e.trace().initial(), 0)
                        .unwrap()
                        .label_of(2)
                        .unwrap()
                },
                schedule,
                plan,
                0xB0_03,
                40_000,
            );
        }
    }
}

#[test]
fn fault_matrix_async_swarm() {
    for schedule in ADV_SCHEDULES {
        for plan in ADV_PLANS {
            let delivered = run_swarm(
                AsyncSwarm::anonymous,
                Capabilities::anonymous(),
                |e| {
                    stigmergy::label_by_sec(e.trace().initial(), 0)
                        .unwrap()
                        .label_of(2)
                        .unwrap()
                },
                schedule,
                plan,
                0xB0_04,
                800_000,
            );
            match plan {
                // §4.2 senders wait on the crashed bystander forever.
                "crash" => {
                    assert!(!delivered, "delivery past a crashed swarm under {schedule}");
                }
                // Fairness + intact observation: §4's guarantee holds.
                // (Dropout is excluded for the same Lemma 4.1 reason as
                // in `fault_matrix_async_pair`.)
                "non-rigid" => {
                    assert!(delivered, "async swarm failed under {schedule}/{plan}");
                }
                _ => {}
            }
        }
    }
}

/// The acceptance criterion of the fault subsystem: the same `FaultPlan`
/// seed yields a bit-identical `Trace` (positions, activations, *and*
/// fault events), and a different seed yields a different one.
#[test]
fn fault_runs_replay_deterministically_end_to_end() {
    fn faulted_trace(plan_seed: u64) -> Trace {
        let n = 3;
        let mut e = Engine::builder()
            .positions(ring(n, 18.0))
            .protocols((0..n).map(|_| SyncSwarm::anonymous_with_direction()))
            .capabilities(Capabilities::anonymous_with_direction())
            .schedule(adv_schedule("bursty", n))
            .frame_seed(0xDE7)
            .build()
            .unwrap();
        e.step().unwrap();
        e.set_fault_plan(
            FaultPlan::new(plan_seed)
                .non_rigid(0.4, 0.5)
                .observation_dropout(0.2)
                .crash_stop(1, 300),
        );
        let label = stigmergy::label_by_lex(e.trace().initial())
            .unwrap()
            .label_of(2)
            .unwrap();
        e.protocol_mut(0).send_label(label, ADV_PAYLOAD);
        e.run_until(2_000, |_| false).unwrap();
        e.trace().clone()
    }

    let a = faulted_trace(0xCAFE);
    let b = faulted_trace(0xCAFE);
    assert_eq!(a, b, "same fault seed must replay identically");
    assert!(
        !a.faults().is_empty(),
        "the plan must actually have fired faults"
    );
    let c = faulted_trace(0xCAFE + 1);
    assert_ne!(a, c, "a different fault seed must perturb the run");
}

#[test]
fn full_visibility_radius_behaves_like_unbounded() {
    use stigmergy::sync_swarm::SyncSwarm;
    use stigmergy_robots::{Capabilities, Engine};
    let positions = ring(4, 20.0);
    let mut e = Engine::builder()
        .positions(positions)
        .protocols((0..4).map(|_| SyncSwarm::anonymous_with_direction()))
        .capabilities(Capabilities::anonymous_with_direction())
        .visibility(1_000.0) // larger than the diameter: no effect
        .build()
        .unwrap();
    e.step().unwrap();
    assert_eq!(e.protocol(0).geometry().unwrap().cohort(), 4);
    let label = stigmergy::label_by_lex(e.trace().initial())
        .unwrap()
        .label_of(2)
        .unwrap();
    e.protocol_mut(0).send_label(label, b"fine");
    let out = e
        .run_until(2_000, |e| {
            e.protocol(2).inbox().iter().any(|m| m.payload == b"fine")
        })
        .unwrap();
    assert!(out.satisfied);
}
