//! Shared helpers for the cross-crate integration tests (the tests live
//! in `tests/`).

use stigmergy_geometry::Point;

/// An irregular ring: the workhorse valid configuration.
#[must_use]
pub fn ring(n: usize, radius: f64) -> Vec<Point> {
    (0..n)
        .map(|k| {
            let theta = std::f64::consts::TAU * (k as f64) / (n as f64);
            let r = radius * (1.0 + 0.03 * (k as f64 + 1.0) / (n as f64));
            Point::new(r * theta.sin(), r * theta.cos())
        })
        .collect()
}
