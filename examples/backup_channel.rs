//! Movement signals as a communication backup for failing radios.
//!
//! ```text
//! cargo run -p stigmergy-examples --bin backup_channel
//! ```
//!
//! The paper's fault-tolerance pitch: robots that normally use wireless
//! keep chatting when the device degrades, by falling back to
//! movement-signals. Here a four-robot survey team's radio progressively
//! fails — first corrupting frames (caught by CRC-8), then dying outright
//! — and every telemetry report still arrives.

use stigmergy::backup::{BackupChannel, Route, Wireless};
use stigmergy_geometry::Point;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let positions = vec![
        Point::new(0.0, 0.0),
        Point::new(15.0, 0.0),
        Point::new(15.0, 15.0),
        Point::new(0.0, 15.0),
    ];
    // A radio that corrupts 30% of frames and dies after 12 transmissions.
    let wireless = Wireless::new(2024, 0.0, 0.3, Some(12));
    let mut channel = BackupChannel::new(wireless, positions, 2024, 200_000)?;

    println!("sending 20 telemetry reports from robot 0 to robot 2…\n");
    for i in 0..20u8 {
        let report = format!("reading #{i}: {}ppm", 380 + u32::from(i));
        let route = channel.send(0, 2, report.as_bytes())?;
        let how = match route {
            Route::Wireless => "radio",
            Route::MovementAfterCorruption => "MOVEMENT (radio frame corrupted)",
            Route::MovementAfterLoss => "MOVEMENT (radio dead)",
        };
        println!("  report {i:2} delivered via {how}");
    }

    let stats = channel.stats();
    println!("\nsummary:");
    println!("  over the radio:           {}", stats.wireless_ok);
    println!("  rescued after corruption: {}", stats.fallback_corruption);
    println!("  rescued after loss:       {}", stats.fallback_loss);
    println!(
        "  movement instants per rescue: {:.0}",
        stats.movement_steps as f64 / stats.fallbacks().max(1) as f64
    );
    println!(
        "  radio is {} after {} transmissions",
        if channel.wireless().is_dead() {
            "dead"
        } else {
            "alive"
        },
        channel.wireless().transmissions()
    );
    Ok(())
}
