//! A convoy that chats while it flies.
//!
//! ```text
//! cargo run -p stigmergy-examples --bin flocking_convoy
//! ```
//!
//! §5 of the paper: "the robots may decide to flock in a certain
//! direction, subtracting the agreed upon global flocking movement in
//! order to preserve the relative movements used for communication." A
//! five-robot convoy translates steadily north-east while its leader
//! broadcasts course corrections; each robot superimposes its
//! communication excursions on the common drift, and observers subtract
//! the drift before decoding.

use stigmergy::flocking::Flocking;
use stigmergy::sync_swarm::SyncSwarm;
use stigmergy_geometry::{Point, Vec2};
use stigmergy_robots::{Capabilities, Engine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let velocity = Vec2::new(0.08, 0.05); // per-instant convoy drift
    let positions: Vec<Point> = (0..5)
        .map(|k| {
            let theta = std::f64::consts::TAU * f64::from(k) / 5.0;
            Point::new(18.0 * theta.cos(), 18.0 * theta.sin() + f64::from(k) * 0.1)
        })
        .collect();

    let mut engine = Engine::builder()
        .positions(positions.clone())
        .protocols((0..5).map(|_| Flocking::new(SyncSwarm::anonymous_with_direction(), velocity)))
        .capabilities(Capabilities::anonymous_with_direction())
        .unit_frames()
        .build()?;

    engine.step()?; // preprocessing instant
    engine
        .protocol_mut(0)
        .inner_mut()
        .send_broadcast(b"bear 045, hold formation");

    let out = engine.run_until(10_000, |e| {
        (1..5).all(|i| !e.protocol(i).inner().inbox().is_empty())
    })?;
    assert!(out.satisfied, "broadcast not delivered");

    let elapsed = engine.trace().len() as f64;
    println!("convoy flew {elapsed} instants while chatting\n");
    for robot in 1..5 {
        let msg = &engine.protocol(robot).inner().inbox()[0];
        println!(
            "  robot {robot} decoded mid-flight: {:?}",
            String::from_utf8_lossy(&msg.payload)
        );
    }

    println!("\nformation integrity (actual vs ideal drifted position):");
    for (i, start) in positions.iter().enumerate() {
        let ideal = *start + velocity * elapsed;
        let actual = engine.positions()[i];
        println!(
            "  robot {i}: off by {:.2e} units after travelling {:.1}",
            actual.distance(ideal),
            start.distance(actual)
        );
    }
    Ok(())
}
