//! Quickstart: three deaf and dumb robots exchange messages by moving.
//!
//! ```text
//! cargo run -p stigmergy-examples --bin quickstart
//! ```
//!
//! Three robots sit in a plane. They have no radios — only eyes (they see
//! each other's instantaneous positions) and wheels. Each robot privately
//! uses its own coordinate system; they share only handedness and, in this
//! example, a compass ("sense of direction"). Messages travel as tiny,
//! carefully-aimed excursions: which *diameter* of a robot's private disc
//! it darts along names the addressee, and which *half* of the diameter
//! carries the bit.

use stigmergy::session::SyncNetwork;
use stigmergy_geometry::Point;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // P(t0): where the robots start. Positions are all a robot ever needs
    // to know about its peers.
    let positions = vec![
        Point::new(0.0, 0.0),
        Point::new(12.0, 0.0),
        Point::new(6.0, 10.0),
    ];
    let mut net = SyncNetwork::anonymous_with_direction(positions, 42)?;

    net.send(0, 2, b"status report?")?;
    net.send(2, 0, b"all sensors nominal")?;
    net.send(1, 2, b"low battery")?;

    let instants = net.run_until_delivered(10_000)?;
    println!("all messages delivered after {instants} time instants\n");

    for robot in 0..net.cohort() {
        println!("robot {robot} inbox:");
        for (sender, payload) in net.inbox(robot) {
            println!(
                "  from robot {sender}: {:?}",
                String::from_utf8_lossy(&payload)
            );
        }
    }

    // Nothing was transmitted except movement: the trace records every
    // excursion.
    let trace = net.engine().trace();
    println!("\nmovement totals (the only \"medium\" used):");
    for robot in 0..net.cohort() {
        println!(
            "  robot {robot}: {} moves, {:.2} distance units travelled",
            trace.move_count(robot),
            trace.path_length(robot),
        );
    }
    Ok(())
}
