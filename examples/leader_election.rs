//! Distributed leader election where every message is a dance.
//!
//! ```text
//! cargo run -p stigmergy-examples --bin leader_election
//! ```
//!
//! The paper's point is not chatting for its own sake: once deaf and dumb
//! robots can exchange messages, **any** message-passing distributed
//! algorithm runs on top. Here six anonymous robots elect a leader by
//! flooding the maximum nonce — with every single protocol message
//! travelling as granular excursions.

use stigmergy::apps::{run_app, LeaderElection};
use stigmergy::session::SyncNetwork;
use stigmergy_geometry::Point;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 6;
    let positions: Vec<Point> = (0..n)
        .map(|k| {
            let theta = std::f64::consts::TAU * k as f64 / n as f64;
            Point::new(40.0 * theta.cos(), 40.0 * theta.sin() + k as f64 * 0.1)
        })
        .collect();
    let mut net = SyncNetwork::anonymous_with_direction(positions, 2026)?;

    // Anonymous robots draw nonces (in practice: seeded hardware RNG).
    let nonces = [831u64, 119, 407, 995, 223, 640];
    println!("nonces: {nonces:?}\n");
    let mut apps: Vec<LeaderElection> = nonces.iter().map(|&v| LeaderElection::new(v)).collect();

    let rounds = run_app(&mut net, &mut apps, 20, 400_000)?;

    println!("quiescence after {rounds} message rounds");
    println!("movement instants consumed: {}", net.engine().time());
    for (i, app) in apps.iter().enumerate() {
        println!(
            "  robot {i}: leader = robot {:?} (nonce {})",
            app.leader().expect("settled"),
            app.best_nonce()
        );
    }
    let leader = apps[0].leader().expect("settled");
    assert!(
        apps.iter().all(|a| a.leader() == Some(leader)),
        "agreement violated"
    );
    println!("\nagreement: all {n} robots elected robot {leader} — without a single radio packet");
    Ok(())
}
