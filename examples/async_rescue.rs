//! Asynchronous communication under an adversarial scheduler.
//!
//! ```text
//! cargo run -p stigmergy-examples --bin async_rescue
//! ```
//!
//! Two scenarios from §4 of the paper. First, a pair of robots whose duty
//! cycles never align — the scheduler wakes robots at random — chat via
//! the implicit-acknowledgement protocol: a robot holds each signal until
//! it has *seen the peer move twice*, which proves the peer saw the
//! signal. Second, a five-robot swarm delivers a message while the
//! harshest fair adversary wakes exactly one robot per instant.

use stigmergy::async2::DriftPolicy;
use stigmergy::session::{AsyncNetwork, AsyncPair};
use stigmergy_geometry::Point;
use stigmergy_scheduler::SingleActive;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Scenario 1: a drifting pair -----------------------------------
    let mut pair = AsyncPair::new(
        Point::new(0.0, 0.0),
        Point::new(20.0, 0.0),
        DriftPolicy::Diverge,
        1234,
    )?;
    pair.send(0, b"found survivor, grid C4")?;
    pair.send(1, b"medkit en route")?;
    let instants = pair.run_until_delivered(200_000)?;
    println!("pair chat complete after {instants} asynchronous instants");
    println!("  robot 1 received: {:?}", text(pair.inbox(1)));
    println!("  robot 0 received: {:?}", text(pair.inbox(0)));
    println!(
        "  drift while chatting (the §4.1 drawback): {:.1} units",
        pair.engine().trace().max_drift()
    );

    // The bounded-drift variant trades drift for ever-smaller steps.
    let mut bounded = AsyncPair::new(
        Point::new(0.0, 0.0),
        Point::new(20.0, 0.0),
        DriftPolicy::AlternateContract { x: 2.0 },
        1234,
    )?;
    bounded.send(0, b"found survivor, grid C4")?;
    bounded.run_until_delivered(200_000)?;
    println!(
        "  with AlternateContract: drift only {:.2} units\n",
        bounded.engine().trace().max_drift()
    );

    // --- Scenario 2: a swarm against the harshest fair adversary -------
    let positions: Vec<Point> = (0..5)
        .map(|k| {
            let theta = std::f64::consts::TAU * f64::from(k) / 5.0;
            Point::new(25.0 * theta.cos(), 25.0 * theta.sin() + f64::from(k) * 0.2)
        })
        .collect();
    let mut swarm =
        AsyncNetwork::anonymous_with_schedule(positions, 99, SingleActive::new(99, 16))?;
    swarm.send(2, 4, b"rally")?;
    let instants = swarm.run_until_delivered(2_000_000)?;
    println!("swarm delivery under SingleActive took {instants} instants");
    println!("  robot 4 received: {:?}", {
        swarm
            .inbox(4)
            .into_iter()
            .map(|(s, p)| (s, String::from_utf8_lossy(&p).into_owned()))
            .collect::<Vec<_>>()
    });

    // Fairness audit: the trace proves the scheduler honoured the model.
    let log = swarm.engine().trace().activation_log();
    let report = stigmergy_scheduler::audit_fairness(&log, 5);
    println!(
        "  fairness audit: worst inactivity gap {} instants, SSM valid: {}",
        report.worst_gap(),
        report.is_valid_ssm()
    );
    Ok(())
}

fn text(msgs: &[Vec<u8>]) -> Vec<String> {
    msgs.iter()
        .map(|m| String::from_utf8_lossy(m).into_owned())
        .collect()
}
