//! A twelve-robot surveillance swarm coordinating without radios.
//!
//! ```text
//! cargo run -p stigmergy-examples --bin swarm_chat
//! ```
//!
//! The paper's motivating scenario: a swarm monitoring a hostile zone
//! where wireless is jammed. Robots are *anonymous* (no visible IDs) and
//! share only chirality — the weakest §3.4 setting — yet they route
//! point-to-point traffic by the smallest-enclosing-circle naming, every
//! robot overhears everything (free fault-tolerance by redundancy), and a
//! single excursion stream can broadcast to the whole swarm.

use stigmergy::session::SyncNetwork;
use stigmergy_geometry::Point;

fn layout() -> Vec<Point> {
    (0..12)
        .map(|k| {
            let theta = std::f64::consts::TAU * f64::from(k) / 12.0;
            let r = 30.0 + f64::from(k) * 0.3;
            Point::new(r * theta.cos(), r * theta.sin())
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut net = SyncNetwork::anonymous(layout(), 7)?;

    // A scout reports to an analyst; the analyst tasks two others; the
    // coordinator broadcasts an alert.
    net.send(3, 0, b"movement at sector 7")?;
    net.send(0, 5, b"reposition north")?;
    net.send(0, 9, b"hold position")?;
    net.broadcast(11, b"ALERT: regroup")?;

    let instants = net.run_until_delivered(30_000)?;
    println!("delivered in {instants} instants (anonymous, chirality-only robots)\n");

    for robot in [0usize, 5, 9] {
        println!("robot {robot} inbox: {:?}", pretty(&net.inbox(robot)));
    }

    // The broadcast reached everyone.
    let got_alert = (0..12)
        .filter(|&i| i != 11)
        .filter(|&i| {
            net.inbox(i)
                .iter()
                .any(|(s, p)| *s == 11 && p == b"ALERT: regroup")
        })
        .count();
    println!("\nbroadcast reached {got_alert}/11 peers");

    // Redundancy: robot 7 was not addressed at all, yet decoded the
    // scout's report too — any robot can replay lost traffic.
    let overheard = net
        .engine()
        .protocol(7)
        .overheard()
        .iter()
        .map(|m| String::from_utf8_lossy(&m.payload).into_owned())
        .collect::<Vec<_>>();
    println!("robot 7 overheard (not addressed to it): {overheard:?}");
    Ok(())
}

fn pretty(inbox: &[(usize, Vec<u8>)]) -> Vec<(usize, String)> {
    inbox
        .iter()
        .map(|(s, p)| (*s, String::from_utf8_lossy(p).into_owned()))
        .collect()
}
