//! A full coordination task enabled by movement-signal communication.
//!
//! ```text
//! cargo run -p stigmergy-examples --bin rendezvous
//! ```
//!
//! The paper's motivation is not chat but *coordination*: once deaf and
//! dumb robots can exchange messages, classical swarm tasks follow. This
//! example runs a complete mission with zero radio packets:
//!
//! 1. **Elect** a leader by max-nonce flooding over the movement channel.
//! 2. **Agree on a point**: the leader broadcasts a rendezvous target
//!    encoded in the only shared coordinate system anonymous robots have —
//!    offsets from the smallest-enclosing-circle centre, in units of its
//!    radius. Every robot decodes it into its *own* frame.
//! 3. **Converge**: robots approach the target, each stopping on its own
//!    ring (ranked by the leader's SEC naming) so nobody collides.

use stigmergy::apps::{run_app, LeaderElection};
use stigmergy::naming::label_by_sec;
use stigmergy::session::SyncNetwork;
use stigmergy_geometry::{smallest_enclosing_circle, Point};
use stigmergy_robots::{Engine, MovementProtocol, View};

/// Phase-3 protocol: walk toward a (locally computed) target, stop on
/// your assigned ring.
struct Approach {
    target: Point,
    stop_radius: f64,
    step: f64,
}

impl MovementProtocol for Approach {
    fn on_activate(&mut self, view: &View) -> Point {
        let own = view.own_position();
        let dist = own.distance(self.target);
        if dist <= self.stop_radius {
            return own; // parked on my ring
        }
        let advance = (dist - self.stop_radius).min(self.step);
        own.lerp(self.target, advance / dist)
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 5usize;
    let seed = 4242u64;
    let positions: Vec<Point> = (0..n)
        .map(|k| {
            let theta = std::f64::consts::TAU * k as f64 / n as f64;
            Point::new(45.0 * theta.cos() + k as f64 * 0.3, 45.0 * theta.sin())
        })
        .collect();

    // ---- Phase 1: leader election over movement signals --------------
    let mut net = SyncNetwork::anonymous_with_direction(positions.clone(), seed)?;
    let nonces = [512u64, 77, 903, 268, 431];
    let mut apps: Vec<LeaderElection> = nonces.iter().map(|&v| LeaderElection::new(v)).collect();
    run_app(&mut net, &mut apps, 20, 400_000)?;
    let leader = apps[0].leader().expect("settled");
    assert!(apps.iter().all(|a| a.leader() == Some(leader)));
    println!(
        "phase 1: elected robot {leader} (nonce {})",
        apps[0].best_nonce()
    );

    // ---- Phase 2: leader broadcasts the rendezvous point --------------
    // Encoded as (dx, dy) from the SEC centre in milli-radii — the shared
    // frame anonymous robots with a compass can all reconstruct.
    let (dx_milli, dy_milli) = (250i16, -150i16);
    let mut payload = Vec::new();
    payload.extend_from_slice(&dx_milli.to_be_bytes());
    payload.extend_from_slice(&dy_milli.to_be_bytes());
    net.broadcast(leader, &payload)?;
    net.run_until_delivered(100_000)?;
    println!(
        "phase 2: leader broadcast target ({}, {}) milli-radii from the SEC centre",
        dx_milli, dy_milli
    );

    // ---- Phase 3: decode locally and converge --------------------------
    // Each robot reconstructs the target from ITS OWN local geometry (its
    // preprocessed homes) plus the received bytes — no world data leaks.
    let chat_engine = net.engine();
    let mut approaches = Vec::with_capacity(n);
    for i in 0..n {
        let g = chat_engine.protocol(i).geometry().expect("preprocessed");
        let homes = g.homes().to_vec();
        let sec = smallest_enclosing_circle(&homes)?;
        let bytes: Vec<u8> = if i == leader {
            payload.clone()
        } else {
            net.inbox(i)
                .into_iter()
                .find(|(s, _)| *s == leader)
                .map(|(_, p)| p)
                .expect("broadcast received")
        };
        let dx = f64::from(i16::from_be_bytes([bytes[0], bytes[1]])) / 1000.0;
        let dy = f64::from(i16::from_be_bytes([bytes[2], bytes[3]])) / 1000.0;
        let target = Point::new(
            sec.center.x + dx * sec.radius,
            sec.center.y + dy * sec.radius,
        );
        // Parking ring: ranked by the leader's SEC-relative naming —
        // computable by every robot from positions alone, so all robots
        // agree on who parks where without any extra messages.
        let my_rank = rank_under_leader(&net, i, leader);
        let spacing = sec.radius * 0.08;
        approaches.push(Approach {
            target,
            stop_radius: spacing * (1.0 + my_rank as f64),
            step: sec.radius * 0.05,
        });
    }

    // Same frames (same seed AND same capabilities), same world
    // positions: the motion phase continues where the chat phase stood.
    let mut motion = Engine::builder()
        .positions(positions.clone())
        .protocols(approaches)
        .capabilities(stigmergy_robots::Capabilities::anonymous_with_direction())
        .frame_seed(seed)
        .build()?;
    let out = motion.run_until(5_000, |e| {
        // Everyone parked: the last two instants saw no movement.
        let steps = e.trace().steps();
        steps.len() > 10 && steps[steps.len() - 1].positions == steps[steps.len() - 2].positions
    })?;
    assert!(out.satisfied);

    let world_sec = smallest_enclosing_circle(&positions)?;
    let world_target = Point::new(
        world_sec.center.x + 0.25 * world_sec.radius,
        world_sec.center.y - 0.15 * world_sec.radius,
    );
    println!("phase 3: converged after {} instants", motion.trace().len());
    for i in 0..n {
        println!(
            "  robot {i}: {:.1} units from the rendezvous point",
            motion.positions()[i].distance(world_target)
        );
    }
    let max_d = (0..n)
        .map(|i| motion.positions()[i].distance(world_target))
        .fold(0.0f64, f64::max);
    assert!(
        max_d < world_sec.radius * 0.6,
        "swarm failed to gather (worst {max_d:.1})"
    );
    println!("\nmission complete: elected, agreed, converged — all by dancing");
    Ok(())
}

/// Robot `i`'s parking rank: its label in the leader's SEC-relative
/// naming. Computed here from world positions for brevity; the naming is
/// similarity-invariant, so it equals what each robot derives from its
/// own local homes.
fn rank_under_leader(net: &SyncNetwork, i: usize, leader: usize) -> usize {
    label_by_sec(net.engine().trace().initial(), leader)
        .expect("valid configuration")
        .label_of(i)
        .expect("in range")
}
